//! Integration tests for the v3 multi-tenant setting registry: uploads,
//! content-addressed reuse, per-request setting selection with
//! byte-for-byte parity against a per-setting `BatchEngine`, eviction that
//! keeps bindings and stored documents alive, concurrent clients across
//! distinct settings under eviction churn, and the deterministic
//! multi-document fan-out path (gated on configured — not live —
//! parallelism, so `workers: 4` forces it in any CI environment).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use xdx_server::wire::ErrorCode;
use xdx_server::{Client, ClientError, Server, ServerConfig, FEATURE_SETTINGS};
use xml_data_exchange::core::settext::{parse_setting, setting_to_text};
use xml_data_exchange::core::setting::books_to_writers_setting;
use xml_data_exchange::patterns::{parse_pattern, ConjunctiveTreeQuery, UnionQuery};
use xml_data_exchange::xmltree::tree_to_text;
use xml_data_exchange::{BatchEngine, DataExchangeSetting, XmlTree};

static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

/// A second, structurally different exchange setting: flat `db/item(@k)`
/// sources copied into flat `out/rec(@k)` targets.
const ITEMS_TEXT: &str = "source { root db; rule db = item*; rule item = eps; \
                          attrs item = @k; } target { root out; rule out = rec*; \
                          rule rec = eps; attrs rec = @k; } \
                          std out[rec(@k=$x)] :- db[item(@k=$x)];";

fn items_setting() -> DataExchangeSetting {
    parse_setting(ITEMS_TEXT).expect("ITEMS_TEXT parses")
}

/// Documents conforming to the `items` source DTD.
fn item_docs(n: usize) -> Vec<XmlTree> {
    (0..n)
        .map(|i| {
            let mut t = XmlTree::new("db");
            for k in 0..=i {
                let item = t.add_child(t.root(), "item");
                t.set_attr(item, "@k", format!("K{i}-{k}"));
            }
            t
        })
        .collect()
}

/// Documents conforming to the default books source DTD; book `i` has `i`
/// authors, so earlier documents are cheap and later ones heavy.
fn book_docs(n: usize) -> Vec<XmlTree> {
    (0..n)
        .map(|i| {
            let mut t = XmlTree::new("db");
            for b in 0..=i {
                let book = t.add_child(t.root(), "book");
                t.set_attr(book, "@title", format!("T{b}"));
                for a in 0..b {
                    let author = t.add_child(book, "author");
                    t.set_attr(author, "@name", format!("N{a}"));
                    t.set_attr(author, "@aff", format!("U{a}"));
                }
            }
            t
        })
        .collect()
}

fn with_server(
    setting: &DataExchangeSetting,
    config: ServerConfig,
    f: impl FnOnce(std::net::SocketAddr, &Path),
) {
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "xdx-registry-test-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::SeqCst)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("xdx.sock");
    std::thread::scope(|scope| {
        let server =
            Server::bind(setting, Some("127.0.0.1:0"), Some(&sock), config).expect("bind server");
        let addr = server.tcp_addr().expect("tcp bound");
        let control = server.control();
        let handle = scope.spawn(move || server.run());
        // Shut the server down even when `f` panics: `thread::scope` joins
        // its threads before propagating the panic, so a still-running
        // server would turn an assertion failure into a silent hang.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(addr, &sock)));
        control.shutdown();
        handle.join().expect("server thread").expect("clean run");
        if let Err(panic) = result {
            std::panic::resume_unwind(panic);
        }
    });
    let _ = std::fs::remove_dir_all(&dir);
}

fn settings_client(addr: std::net::SocketAddr) -> Client {
    let mut client = Client::connect_tcp(&addr.to_string()).unwrap();
    let accepted = client.negotiate(FEATURE_SETTINGS).unwrap();
    assert_ne!(accepted & FEATURE_SETTINGS, 0, "server must accept v3");
    client
}

fn expect_texts(setting: &DataExchangeSetting, docs: &[XmlTree]) -> Vec<String> {
    BatchEngine::new(setting)
        .parallelism(1)
        .canonical_solutions_batch(docs)
        .into_iter()
        .map(|r| tree_to_text(&r.expect("consistent doc")))
        .collect()
}

#[test]
fn registry_ops_require_feature_negotiation() {
    let setting = books_to_writers_setting();
    with_server(&setting, ServerConfig::default(), |addr, _| {
        // A v1 client never sent Hello: registry ops must be rejected, and
        // exchange ops must keep working exactly as before.
        let mut legacy = Client::connect_tcp(&addr.to_string()).unwrap();
        match legacy.put_setting(1, ITEMS_TEXT) {
            Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::UnknownOp),
            other => panic!("expected UnknownOp for a v1 registry op, got {other:?}"),
        }
        legacy.ping().unwrap();

        // Addressing an unbound setting id fails with a structured code.
        let mut client = settings_client(addr);
        client.set_setting(7);
        match client.canonical_solution_texts(&book_docs(1)) {
            Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::UnknownSetting),
            other => panic!("expected UnknownSetting, got {other:?}"),
        }

        // Malformed setting text fails with SettingParse, not a hangup.
        match client.put_setting(1, "source { nonsense") {
            Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::SettingParse),
            other => panic!("expected SettingParse, got {other:?}"),
        }
        client.ping().unwrap();
    });
}

#[test]
fn identical_text_reuploads_share_one_compiled_artifact() {
    let setting = books_to_writers_setting();
    with_server(&setting, ServerConfig::default(), |addr, _| {
        let mut client = settings_client(addr);

        let (hash_a, reused_a) = client.put_setting(1, ITEMS_TEXT).unwrap();
        assert!(!reused_a, "first upload compiles");

        // Same setting, different whitespace: canonicalization makes the
        // re-upload free.
        let spaced = ITEMS_TEXT.replace("; ", ";\n\t ");
        let (hash_b, reused_b) = client.put_setting(2, &spaced).unwrap();
        assert_eq!(hash_b, hash_a, "content hash is over the canonical text");
        assert!(reused_b, "identical-text re-upload reuses the artifact");

        // Uploading the default setting's own text shares the pinned
        // artifact too.
        let (_, reused_default) = client.put_setting(3, &setting_to_text(&setting)).unwrap();
        assert!(reused_default);

        let entries = client.list_settings().unwrap();
        let ids: Vec<u64> = entries.iter().map(|e| e.bind_id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert!(entries.iter().all(|e| e.compiled));
        assert_eq!(entries[1].content_hash, entries[2].content_hash);
        assert_ne!(entries[0].content_hash, entries[1].content_hash);
    });
}

#[test]
fn concurrent_clients_on_distinct_settings_match_their_engines() {
    let setting = books_to_writers_setting();
    let books = book_docs(4);
    let items = item_docs(4);
    let expect_books = expect_texts(&setting, &books);
    let expect_items = expect_texts(&items_setting(), &items);
    let query = UnionQuery::single(
        ConjunctiveTreeQuery::new(["k"], vec![parse_pattern("rec(@k=$k)").unwrap()]).unwrap(),
    );
    let expect_tuples: Vec<Vec<Vec<String>>> = BatchEngine::new(&items_setting())
        .certain_answers_batch(&items, &query)
        .into_iter()
        .map(|r| r.unwrap().tuples.into_iter().collect())
        .collect();

    let config = ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    };
    with_server(&setting, config, |addr, _| {
        settings_client(addr).put_setting(1, ITEMS_TEXT).unwrap();
        std::thread::scope(|scope| {
            // Clients alternate between the default books setting and the
            // uploaded items setting while a churn thread keeps evicting
            // and re-uploading the items artifact underneath them.
            for t in 0..4 {
                let (books, items) = (&books, &items);
                let (expect_books, expect_items) = (&expect_books, &expect_items);
                let (query, expect_tuples) = (&query, &expect_tuples);
                scope.spawn(move || {
                    let mut client = settings_client(addr);
                    for round in 0..8 {
                        if (t + round) % 2 == 0 {
                            client.set_setting(0);
                            let got: Vec<String> = client
                                .canonical_solution_texts(books)
                                .unwrap()
                                .into_iter()
                                .map(|r| r.unwrap())
                                .collect();
                            assert_eq!(&got, expect_books, "thread {t} round {round}");
                        } else {
                            client.set_setting(1);
                            let got: Vec<String> = client
                                .canonical_solution_texts(items)
                                .unwrap()
                                .into_iter()
                                .map(|r| r.unwrap())
                                .collect();
                            assert_eq!(&got, expect_items, "thread {t} round {round}");
                            let tuples: Vec<Vec<Vec<String>>> = client
                                .certain_answers(query, items)
                                .unwrap()
                                .into_iter()
                                .map(|r| r.unwrap())
                                .collect();
                            assert_eq!(&tuples, expect_tuples, "thread {t} round {round}");
                        }
                    }
                });
            }
            scope.spawn(move || {
                let mut churn = settings_client(addr);
                for _ in 0..8 {
                    let _ = churn.evict_setting(1).unwrap();
                    let (_, _) = churn.put_setting(1, ITEMS_TEXT).unwrap();
                }
            });
        });
    });
}

#[test]
fn eviction_keeps_stored_documents_and_recompiles_on_demand() {
    let setting = books_to_writers_setting();
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "xdx-registry-store-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::SeqCst)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let config = ServerConfig {
        store_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };
    let items = item_docs(3);
    let expect_items = expect_texts(&items_setting(), &items);
    with_server(&setting, config, |addr, _| {
        let mut client = settings_client(addr);
        client.put_setting(1, ITEMS_TEXT).unwrap();
        client.set_setting(1);
        // Versions come from the store-wide mutation sequence, so the
        // receipts are strictly increasing — remember them to prove the
        // documents survive eviction untouched.
        let versions: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, doc)| client.put_doc(i as u64, doc).unwrap())
            .collect();
        assert!(versions.windows(2).all(|w| w[0] < w[1]));

        // Evicting the compiled artifact must not touch the binding or the
        // stored documents.
        assert!(client.evict_setting(1).unwrap(), "artifact was resident");
        let entries = client.list_settings().unwrap();
        let entry = entries.iter().find(|e| e.bind_id == 1).unwrap();
        assert!(!entry.compiled, "artifact dropped, binding kept");

        for (i, doc) in items.iter().enumerate() {
            let (got, version) = client.get_doc(i as u64).unwrap();
            assert_eq!(version, versions[i], "versions survive eviction");
            assert_eq!(tree_to_text(&got), tree_to_text(doc));
        }

        // Stored-query ops recompile from the retained text on demand …
        let got = client
            .canonical_solution_stored(0)
            .unwrap()
            .expect("doc 0 is consistent")
            .to_tree()
            .unwrap();
        assert_eq!(tree_to_text(&got), expect_items[0]);
        let entries = client.list_settings().unwrap();
        assert!(
            entries.iter().find(|e| e.bind_id == 1).unwrap().compiled,
            "resolve recompiled the artifact"
        );

        // … and a byte-identical re-upload is free (shares the recompiled
        // artifact) while keeping every stored document.
        let (_, reused) = client.put_setting(1, ITEMS_TEXT).unwrap();
        assert!(reused, "identical re-upload after eviction is a cache hit");
        for (i, _) in items.iter().enumerate() {
            let (got, version) = client.get_doc(i as u64).unwrap();
            assert_eq!(version, versions[i], "versions survive re-upload");
            assert_eq!(tree_to_text(&got), tree_to_text(&items[i]));
        }
        for (i, want) in expect_items.iter().enumerate() {
            let got = client
                .canonical_solution_stored(i as u64)
                .unwrap()
                .expect("stored doc is consistent")
                .to_tree()
                .unwrap();
            assert_eq!(&tree_to_text(&got), want);
        }

        // Default-setting documents were never affected: ids are
        // setting-scoped, so id 0 under setting 0 does not exist.
        client.set_setting(0);
        match client.get_doc(0) {
            Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::UnknownDoc),
            other => panic!("expected UnknownDoc under setting 0, got {other:?}"),
        }
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn forced_fanout_answers_in_request_order_byte_for_byte() {
    let setting = books_to_writers_setting();
    // The heaviest document first: if the parallel fan-out reassembled
    // completions naively, the cheap tail would overtake it.
    let mut docs = book_docs(7);
    docs.reverse();
    let expect = expect_texts(&setting, &docs);

    // `workers: 4` makes the engine's configured parallelism 4, which is
    // the *only* gate on the multi-document fan-out path — the live
    // `available_parallelism()` no longer factors in, so this branch runs
    // deterministically even on a single-CPU CI runner.
    let config = ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    };
    with_server(&setting, config, |addr, sock| {
        let mut tcp = Client::connect_tcp(&addr.to_string()).unwrap();
        let mut unix = Client::connect_unix(sock).unwrap();
        for client in [&mut tcp, &mut unix] {
            for _ in 0..4 {
                let got: Vec<String> = client
                    .canonical_solution_texts(&docs)
                    .unwrap()
                    .into_iter()
                    .map(|r| r.unwrap())
                    .collect();
                assert_eq!(got, expect, "fan-out must preserve request order");
            }
        }
    });
}
