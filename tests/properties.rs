//! Property-based tests (proptest) for the core invariants.

use proptest::prelude::*;
use std::collections::BTreeMap;
use xml_data_exchange::core::setting::DataExchangeSetting;
use xml_data_exchange::core::is_solution;
use xml_data_exchange::patterns::homomorphism::find_homomorphism;
use xml_data_exchange::relang::parikh::{parikh_image, perm_accepts, AlphabetMap};
use xml_data_exchange::relang::{parse_regex, Nfa, Regex};
use xml_data_exchange::{canonical_solution, impose_sibling_order, Dtd, Std, XmlTree};

/// A small pool of regular expressions over {a, b, c} used by the Parikh
/// properties (mixing all the paper's shapes: simple, nested-relational,
/// starred groups, unions, non-univocal ones).
fn regex_pool() -> Vec<Regex<String>> {
    [
        "(a|b|c)*",
        "a b* c?",
        "(a b)*",
        "(a b c)*",
        "(a b)* (c)*",
        "a | a a b*",
        "(a b)|(a c)",
        "a+ b+",
        "(a|b) c*",
        "eps",
    ]
    .into_iter()
    .map(|s| parse_regex(s).unwrap())
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The semilinear (Pilling normal form) representation of π(r) and the
    /// counting NFA simulation agree on membership.
    #[test]
    fn semilinear_and_nfa_simulation_agree(
        regex_idx in 0usize..10,
        ca in 0u64..4,
        cb in 0u64..4,
        cc in 0u64..4,
    ) {
        let regex = regex_pool()[regex_idx].clone();
        let alphabet = AlphabetMap::new(["a".to_string(), "b".to_string(), "c".to_string()]);
        let image = parikh_image(&regex, &alphabet);
        let nfa = Nfa::from_regex(&regex);
        let counts: BTreeMap<String, u64> =
            [("a".to_string(), ca), ("b".to_string(), cb), ("c".to_string(), cc)]
                .into_iter()
                .filter(|(_, c)| *c > 0)
                .collect();
        let vector = alphabet.counts_of_map(&counts).unwrap();
        prop_assert_eq!(image.contains(&vector), perm_accepts(&nfa, &counts));
    }

    /// Ordered acceptance implies unordered (permutation-language) acceptance:
    /// every word of L(r) is in π(r).
    #[test]
    fn language_words_are_in_the_permutation_language(
        regex_idx in 0usize..10,
        word_idx in 0usize..20,
    ) {
        let regex = regex_pool()[regex_idx].clone();
        let nfa = Nfa::from_regex(&regex);
        let words = nfa.enumerate_words(25, 5);
        prop_assume!(!words.is_empty());
        let word = &words[word_idx % words.len()];
        let mut counts: BTreeMap<String, u64> = BTreeMap::new();
        for s in word {
            *counts.entry(s.clone()).or_insert(0) += 1;
        }
        prop_assert!(nfa.matches(word));
        prop_assert!(perm_accepts(&nfa, &counts));
    }

    /// Proposition 5.2: any shuffled multiset drawn from π((a b)* (c d)*) can
    /// be re-ordered into an ordered conforming tree.
    #[test]
    fn shuffled_children_can_always_be_reordered(
        ab_pairs in 0usize..6,
        cd_pairs in 0usize..6,
        seed in 0u64..1000,
    ) {
        use rand::rngs::StdRng;
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let dtd = Dtd::builder("r").rule("r", "(a b)* (c d)*").build().unwrap();
        let mut labels: Vec<&str> = Vec::new();
        for _ in 0..ab_pairs {
            labels.extend(["a", "b"]);
        }
        for _ in 0..cd_pairs {
            labels.extend(["c", "d"]);
        }
        labels.shuffle(&mut StdRng::seed_from_u64(seed));
        let mut tree = XmlTree::new("r");
        for l in labels {
            tree.add_child(tree.root(), l);
        }
        prop_assert!(dtd.conforms_unordered(&tree));
        impose_sibling_order(&mut tree, &dtd).unwrap();
        prop_assert!(dtd.conforms(&tree));
        tree.validate().unwrap();
    }

    /// For random source documents of a Clio-class setting, the canonical
    /// solution (a) exists, (b) weakly conforms, (c) satisfies the STDs, and
    /// (d) maps homomorphically into an enlarged solution (soundness of
    /// certain answers).
    #[test]
    fn canonical_solutions_are_solutions_and_embed_into_larger_ones(
        values in proptest::collection::vec((0usize..3, 0u32..5), 0..12),
    ) {
        let source_dtd = Dtd::builder("src")
            .rule("src", "f0* f1* f2*")
            .attributes("f0", ["@v"])
            .attributes("f1", ["@v"])
            .attributes("f2", ["@v"])
            .build()
            .unwrap();
        let target_dtd = Dtd::builder("tgt")
            .rule("tgt", "g0* g1* g2*")
            .attributes("g0", ["@v", "@extra"])
            .attributes("g1", ["@v", "@extra"])
            .attributes("g2", ["@v", "@extra"])
            .build()
            .unwrap();
        let stds = (0..3)
            .map(|i| Std::parse(&format!("tgt[g{i}(@v=$x, @extra=$z)] :- src[f{i}(@v=$x)]")).unwrap())
            .collect();
        let setting = DataExchangeSetting::new(source_dtd, target_dtd, stds);

        // Build the source, grouping fields so it also conforms ordered.
        let mut source = XmlTree::new("src");
        let mut grouped = values.clone();
        grouped.sort();
        for (field, value) in grouped {
            let node = source.add_child(source.root(), format!("f{field}"));
            source.set_attr(node, "@v", format!("v{value}"));
        }
        prop_assert!(setting.source_dtd.conforms(&source));

        let solution = canonical_solution(&setting, &source).unwrap();
        prop_assert!(setting.target_dtd.conforms_unordered(&solution));
        prop_assert!(is_solution(&setting, &source, &solution, false));

        // Enlarge: add an extra g0 fact and give every null a constant; still
        // a solution, and the canonical solution embeds into it.
        let mut larger = solution.clone();
        let extra = larger.add_child(larger.root(), "g0");
        larger.set_attr(extra, "@v", "extra-value");
        larger.set_attr(extra, "@extra", "yes");
        let nodes = larger.nodes();
        let mut counter = 0;
        for n in nodes {
            for (attr, value) in larger.attrs(n).clone() {
                if value.is_null() {
                    counter += 1;
                    larger.set_attr(n, attr, format!("filled{counter}"));
                }
            }
        }
        prop_assert!(is_solution(&setting, &source, &larger, false));
        prop_assert!(find_homomorphism(&solution, &larger).is_some());
    }

    /// The DTD-trimming construction of Lemma 2.2 preserves conformance of
    /// minimal witness trees and always yields a consistent DTD.
    #[test]
    fn trimming_yields_consistent_dtds(live in 1usize..6, dead in 0usize..6) {
        let mut alts: Vec<String> = (0..live).map(|i| format!("a{i}")).collect();
        alts.extend((0..dead).map(|i| format!("d{i}")));
        let mut builder = Dtd::builder("r").rule("r", &format!("({})*", alts.join("|")));
        for i in 0..live {
            builder = builder.rule(&format!("a{i}"), "eps");
        }
        for i in 0..dead {
            builder = builder.rule(&format!("d{i}"), &format!("d{i}"));
        }
        let dtd = builder.build().unwrap();
        let trimmed = dtd.trim_to_consistent().unwrap();
        prop_assert!(trimmed.is_consistent());
        let witness = dtd.minimal_conforming_tree().unwrap();
        prop_assert!(trimmed.conforms(&witness));
        let witness2 = trimmed.minimal_conforming_tree().unwrap();
        prop_assert!(dtd.conforms(&witness2));
    }
}
