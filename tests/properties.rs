//! Property-based tests (proptest) for the core invariants, including the
//! differential properties that pin the compiled fast paths (bitset NFA
//! simulation, hashed-bitset subset construction, `CompiledDtd` conformance)
//! to their reference implementations.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use xml_data_exchange::core::is_solution;
use xml_data_exchange::core::setting::DataExchangeSetting;
use xml_data_exchange::patterns::homomorphism::find_homomorphism;
use xml_data_exchange::relang::bitset::BitsetNfa;
use xml_data_exchange::relang::parikh::{parikh_image, perm_accepts, AlphabetMap};
use xml_data_exchange::relang::{parse_regex, Dfa, Nfa, Regex};
use xml_data_exchange::{canonical_solution, impose_sibling_order, Dtd, Std, XmlTree};

/// A random regular expression over `alphabet`, depth-bounded. Covers all
/// constructors the paper's grammar admits (ε, symbols, `|`, concatenation,
/// `*`, `+`, `?`), plus `Empty` at low probability.
fn random_regex(rng: &mut StdRng, alphabet: &[&str], depth: usize) -> Regex<String> {
    if depth == 0 {
        return match rng.gen_range(0..6usize) {
            0 => Regex::Epsilon,
            _ => Regex::Symbol(alphabet[rng.gen_range(0..alphabet.len())].to_string()),
        };
    }
    match rng.gen_range(0..10usize) {
        0 => Regex::Epsilon,
        1 => Regex::Symbol(alphabet[rng.gen_range(0..alphabet.len())].to_string()),
        2 | 3 => Regex::concat(
            random_regex(rng, alphabet, depth - 1),
            random_regex(rng, alphabet, depth - 1),
        ),
        4 | 5 => Regex::alt(
            random_regex(rng, alphabet, depth - 1),
            random_regex(rng, alphabet, depth - 1),
        ),
        6 => Regex::star(random_regex(rng, alphabet, depth - 1)),
        7 => Regex::plus(random_regex(rng, alphabet, depth - 1)),
        8 => Regex::opt(random_regex(rng, alphabet, depth - 1)),
        _ => Regex::Empty,
    }
}

/// A random word over `alphabet` of length `< max_len`.
fn random_word(rng: &mut StdRng, alphabet: &[&str], max_len: usize) -> Vec<String> {
    let len = rng.gen_range(0..max_len);
    (0..len)
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())].to_string())
        .collect()
}

/// A small pool of regular expressions over {a, b, c} used by the Parikh
/// properties (mixing all the paper's shapes: simple, nested-relational,
/// starred groups, unions, non-univocal ones).
fn regex_pool() -> Vec<Regex<String>> {
    [
        "(a|b|c)*",
        "a b* c?",
        "(a b)*",
        "(a b c)*",
        "(a b)* (c)*",
        "a | a a b*",
        "(a b)|(a c)",
        "a+ b+",
        "(a|b) c*",
        "eps",
    ]
    .into_iter()
    .map(|s| parse_regex(s).unwrap())
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The semilinear (Pilling normal form) representation of π(r) and the
    /// counting NFA simulation agree on membership.
    #[test]
    fn semilinear_and_nfa_simulation_agree(
        regex_idx in 0usize..10,
        ca in 0u64..4,
        cb in 0u64..4,
        cc in 0u64..4,
    ) {
        let regex = regex_pool()[regex_idx].clone();
        let alphabet = AlphabetMap::new(["a".to_string(), "b".to_string(), "c".to_string()]);
        let image = parikh_image(&regex, &alphabet);
        let nfa = Nfa::from_regex(&regex);
        let counts: BTreeMap<String, u64> =
            [("a".to_string(), ca), ("b".to_string(), cb), ("c".to_string(), cc)]
                .into_iter()
                .filter(|(_, c)| *c > 0)
                .collect();
        let vector = alphabet.counts_of_map(&counts).unwrap();
        prop_assert_eq!(image.contains(&vector), perm_accepts(&nfa, &counts));
    }

    /// Ordered acceptance implies unordered (permutation-language) acceptance:
    /// every word of L(r) is in π(r).
    #[test]
    fn language_words_are_in_the_permutation_language(
        regex_idx in 0usize..10,
        word_idx in 0usize..20,
    ) {
        let regex = regex_pool()[regex_idx].clone();
        let nfa = Nfa::from_regex(&regex);
        let words = nfa.enumerate_words(25, 5);
        prop_assume!(!words.is_empty());
        let word = &words[word_idx % words.len()];
        let mut counts: BTreeMap<String, u64> = BTreeMap::new();
        for s in word {
            *counts.entry(s.clone()).or_insert(0) += 1;
        }
        prop_assert!(nfa.matches(word));
        prop_assert!(perm_accepts(&nfa, &counts));
    }

    /// Proposition 5.2: any shuffled multiset drawn from π((a b)* (c d)*) can
    /// be re-ordered into an ordered conforming tree.
    #[test]
    fn shuffled_children_can_always_be_reordered(
        ab_pairs in 0usize..6,
        cd_pairs in 0usize..6,
        seed in 0u64..1000,
    ) {
        use rand::rngs::StdRng;
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let dtd = Dtd::builder("r").rule("r", "(a b)* (c d)*").build().unwrap();
        let mut labels: Vec<&str> = Vec::new();
        for _ in 0..ab_pairs {
            labels.extend(["a", "b"]);
        }
        for _ in 0..cd_pairs {
            labels.extend(["c", "d"]);
        }
        labels.shuffle(&mut StdRng::seed_from_u64(seed));
        let mut tree = XmlTree::new("r");
        for l in labels {
            tree.add_child(tree.root(), l);
        }
        prop_assert!(dtd.conforms_unordered(&tree));
        impose_sibling_order(&mut tree, &dtd).unwrap();
        prop_assert!(dtd.conforms(&tree));
        tree.validate().unwrap();
    }

    /// For random source documents of a Clio-class setting, the canonical
    /// solution (a) exists, (b) weakly conforms, (c) satisfies the STDs, and
    /// (d) maps homomorphically into an enlarged solution (soundness of
    /// certain answers).
    #[test]
    fn canonical_solutions_are_solutions_and_embed_into_larger_ones(
        values in proptest::collection::vec((0usize..3, 0u32..5), 0..12),
    ) {
        let source_dtd = Dtd::builder("src")
            .rule("src", "f0* f1* f2*")
            .attributes("f0", ["@v"])
            .attributes("f1", ["@v"])
            .attributes("f2", ["@v"])
            .build()
            .unwrap();
        let target_dtd = Dtd::builder("tgt")
            .rule("tgt", "g0* g1* g2*")
            .attributes("g0", ["@v", "@extra"])
            .attributes("g1", ["@v", "@extra"])
            .attributes("g2", ["@v", "@extra"])
            .build()
            .unwrap();
        let stds = (0..3)
            .map(|i| Std::parse(&format!("tgt[g{i}(@v=$x, @extra=$z)] :- src[f{i}(@v=$x)]")).unwrap())
            .collect();
        let setting = DataExchangeSetting::new(source_dtd, target_dtd, stds);

        // Build the source, grouping fields so it also conforms ordered.
        let mut source = XmlTree::new("src");
        let mut grouped = values.clone();
        grouped.sort();
        for (field, value) in grouped {
            let node = source.add_child(source.root(), format!("f{field}"));
            source.set_attr(node, "@v", format!("v{value}"));
        }
        prop_assert!(setting.source_dtd.conforms(&source));

        let solution = canonical_solution(&setting, &source).unwrap();
        prop_assert!(setting.target_dtd.conforms_unordered(&solution));
        prop_assert!(is_solution(&setting, &source, &solution, false));

        // Enlarge: add an extra g0 fact and give every null a constant; still
        // a solution, and the canonical solution embeds into it.
        let mut larger = solution.clone();
        let extra = larger.add_child(larger.root(), "g0");
        larger.set_attr(extra, "@v", "extra-value");
        larger.set_attr(extra, "@extra", "yes");
        let nodes = larger.nodes();
        let mut counter = 0;
        for n in nodes {
            for (attr, value) in larger.attrs(n).clone() {
                if value.is_null() {
                    counter += 1;
                    larger.set_attr(n, attr, format!("filled{counter}"));
                }
            }
        }
        prop_assert!(is_solution(&setting, &source, &larger, false));
        prop_assert!(find_homomorphism(&solution, &larger).is_some());
    }

    /// The DTD-trimming construction of Lemma 2.2 preserves conformance of
    /// minimal witness trees and always yields a consistent DTD.
    #[test]
    fn trimming_yields_consistent_dtds(live in 1usize..6, dead in 0usize..6) {
        let mut alts: Vec<String> = (0..live).map(|i| format!("a{i}")).collect();
        alts.extend((0..dead).map(|i| format!("d{i}")));
        let mut builder = Dtd::builder("r").rule("r", &format!("({})*", alts.join("|")));
        for i in 0..live {
            builder = builder.rule(format!("a{i}"), "eps");
        }
        for i in 0..dead {
            builder = builder.rule(format!("d{i}"), &format!("d{i}"));
        }
        let dtd = builder.build().unwrap();
        let trimmed = dtd.trim_to_consistent().unwrap();
        prop_assert!(trimmed.is_consistent());
        let witness = dtd.minimal_conforming_tree().unwrap();
        prop_assert!(trimmed.conforms(&witness));
        let witness2 = trimmed.minimal_conforming_tree().unwrap();
        prop_assert!(dtd.conforms(&witness2));
    }
}

// --------------------------------------------------------------------------
// Differential properties: compiled fast paths ≡ reference implementations
// --------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The bitset simulator accepts exactly the words the reference
    /// `Nfa::matches` accepts, on randomly generated regexes — both for
    /// random (mostly rejected) words and for enumerated (accepted) words.
    #[test]
    fn bitset_simulation_agrees_with_reference_nfa(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let alphabet = ["a", "b", "c"];
        let regex = random_regex(&mut rng, &alphabet, 3);
        let reference = Nfa::from_regex(&regex);
        let fast = BitsetNfa::from_nfa(&reference);
        for word in reference.enumerate_words(10, 5) {
            prop_assert!(reference.matches(&word));
            prop_assert!(fast.matches(&word), "accepted word rejected by bitset: {:?} on {}", word, regex);
        }
        for _ in 0..12 {
            let word = random_word(&mut rng, &alphabet, 7);
            prop_assert_eq!(reference.matches(&word), fast.matches(&word));
        }
    }

    /// The hashed-bitset subset construction (`Dfa::from_nfa`) recognises the
    /// same language as the reference `BTreeSet`-keyed construction.
    #[test]
    fn bitset_subset_construction_agrees_with_reference(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1));
        let alphabet = ["a", "b", "c"];
        let regex = random_regex(&mut rng, &alphabet, 3);
        let nfa = Nfa::from_regex(&regex);
        let fast = Dfa::from_nfa(&nfa);
        let reference = Dfa::from_nfa_reference(&nfa);
        prop_assert_eq!(fast.num_states(), reference.num_states());
        for _ in 0..16 {
            let word = random_word(&mut rng, &alphabet, 7);
            prop_assert_eq!(fast.matches(&word), reference.matches(&word));
            prop_assert_eq!(fast.matches(&word), nfa.matches(&word));
        }
    }

    /// The bitset permutation-language search agrees with the counting
    /// simulation of Proposition 5.3 on random regexes and count vectors.
    #[test]
    fn bitset_permutation_membership_agrees_with_reference(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(7));
        let alphabet = ["a", "b", "c"];
        let regex = random_regex(&mut rng, &alphabet, 3);
        let nfa = Nfa::from_regex(&regex);
        let fast = BitsetNfa::from_nfa(&nfa);
        for _ in 0..8 {
            let counts: BTreeMap<String, u64> = alphabet
                .iter()
                .map(|s| (s.to_string(), rng.gen_range(0u64..4)))
                .filter(|&(_, c)| c > 0)
                .collect();
            prop_assert_eq!(perm_accepts(&nfa, &counts), fast.perm_accepts(&counts));
        }
    }

    /// `CompiledDtd::conforms` (dense-table DFAs + occurrence bounds) agrees
    /// with the reference NFA-simulation conformance on randomly generated
    /// trees — ordered and unordered, including trees with unknown labels,
    /// wrong roots and attribute violations.
    #[test]
    fn compiled_dtd_conformance_agrees_with_reference(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xDA942042E4DD58B5).wrapping_add(3));
        // A DTD pool mixing nested-relational and general content models.
        let dtd = match seed % 4 {
            0 => Dtd::builder("r")
                .rule("r", "a* b+ c?")
                .attributes("a", ["@x"])
                .build()
                .unwrap(),
            1 => Dtd::builder("r").rule("r", "(a b)* (c d)*").build().unwrap(),
            2 => Dtd::builder("r")
                .rule("r", "a | a a b*")
                .rule("a", "c?")
                .rule("c", "eps")
                .build()
                .unwrap(),
            _ => Dtd::builder("r")
                .rule("r", "x y")
                .rule("x", "a*")
                .rule("y", "(a|b)+")
                .build()
                .unwrap(),
        };
        // Random trees: labels drawn from the DTD's element types plus an
        // occasional unknown one; random attributes sprinkled in.
        let labels: Vec<String> = dtd.element_types().map(|e| e.to_string()).collect();
        let root_label = if rng.gen_bool(0.8) { dtd.root().to_string() } else { "zzz".to_string() };
        let mut tree = XmlTree::new(root_label);
        let mut frontier = vec![tree.root()];
        for _ in 0..rng.gen_range(0usize..12) {
            let parent = frontier[rng.gen_range(0..frontier.len())];
            let label = if rng.gen_bool(0.92) {
                labels[rng.gen_range(0..labels.len())].clone()
            } else {
                "mystery".to_string()
            };
            let child = tree.add_child(parent, label);
            if rng.gen_bool(0.2) {
                tree.set_attr(child, "@x", "v");
            }
            frontier.push(child);
        }
        let compiled = dtd.compiled();
        prop_assert_eq!(dtd.conforms_reference(&tree), compiled.conforms(&tree));
        prop_assert_eq!(
            dtd.conforms_unordered_reference(&tree),
            compiled.conforms_unordered(&tree)
        );
        prop_assert_eq!(dtd.violations_reference(&tree), compiled.violations(&tree, true));
        prop_assert_eq!(
            dtd.violations_unordered_reference(&tree),
            compiled.violations(&tree, false)
        );
    }

    /// The compiled canonical-solution pipeline produces solutions that the
    /// reference path certifies, and both paths agree on solution size.
    #[test]
    fn compiled_canonical_solution_agrees_with_reference(
        values in proptest::collection::vec((0usize..3, 0u32..5), 0..10),
    ) {
        use xml_data_exchange::core::solution::{canonical_solution_reference, is_solution_reference};
        let source_dtd = Dtd::builder("src")
            .rule("src", "f0* f1* f2*")
            .attributes("f0", ["@v"])
            .attributes("f1", ["@v"])
            .attributes("f2", ["@v"])
            .build()
            .unwrap();
        let target_dtd = Dtd::builder("tgt")
            .rule("tgt", "g0* g1* g2*")
            .attributes("g0", ["@v", "@extra"])
            .attributes("g1", ["@v", "@extra"])
            .attributes("g2", ["@v", "@extra"])
            .build()
            .unwrap();
        let stds = (0..3)
            .map(|i| Std::parse(&format!("tgt[g{i}(@v=$x, @extra=$z)] :- src[f{i}(@v=$x)]")).unwrap())
            .collect();
        let setting = DataExchangeSetting::new(source_dtd, target_dtd, stds);
        let mut source = XmlTree::new("src");
        let mut grouped = values.clone();
        grouped.sort();
        for (field, value) in grouped {
            let node = source.add_child(source.root(), format!("f{field}"));
            source.set_attr(node, "@v", format!("v{value}"));
        }
        let fast = canonical_solution(&setting, &source).unwrap();
        let reference = canonical_solution_reference(&setting, &source).unwrap();
        prop_assert_eq!(fast.size(), reference.size());
        prop_assert!(is_solution_reference(&setting, &source, &fast, false));
        prop_assert!(is_solution(&setting, &source, &reference, false));
        prop_assert!(find_homomorphism(&fast, &reference).is_some());
        prop_assert!(find_homomorphism(&reference, &fast).is_some());
    }
}
