//! The executable hardness gadgets, cross-checked against brute force
//! (experiments F3/F4/F9–F16 and the correctness side of E2/E7).

use rand::rngs::StdRng;
use rand::SeedableRng;
use xml_data_exchange::core::consistency::check_consistency_general;
use xml_data_exchange::core::gadgets::three_sat::{Clause, CnfFormula, Literal};
use xml_data_exchange::core::gadgets::{consistency_np, theorem_5_11};
use xml_data_exchange::core::is_solution;

#[test]
fn figure_3_source_encoding_of_the_paper_formula() {
    // Tθ for (x1 ∨ x2 ∨ ¬x3) ∧ (¬x2 ∨ x3 ∨ ¬x4): two C nodes and four L nodes.
    let f = CnfFormula::paper_example();
    let g = theorem_5_11::build(&f);
    let t = &g.source_tree;
    assert!(g.setting.source_dtd.conforms(t));
    let c_nodes: Vec<_> = t
        .nodes()
        .into_iter()
        .filter(|&n| t.label(n).as_str() == "C")
        .collect();
    let l_nodes: Vec<_> = t
        .nodes()
        .into_iter()
        .filter(|&n| t.label(n).as_str() == "L")
        .collect();
    assert_eq!(c_nodes.len(), 2);
    assert_eq!(l_nodes.len(), 4);
    // Figure 3 literal numbering: clause 1 is (1, 3, 6).
    assert_eq!(
        t.attr(c_nodes[0], &"@f".into()).unwrap().as_const(),
        Some("1")
    );
    assert_eq!(
        t.attr(c_nodes[0], &"@s".into()).unwrap().as_const(),
        Some("3")
    );
    assert_eq!(
        t.attr(c_nodes[0], &"@t".into()).unwrap().as_const(),
        Some("6")
    );
    // The L node for x1 stores (1, 2).
    assert_eq!(
        t.attr(l_nodes[0], &"@p".into()).unwrap().as_const(),
        Some("1")
    );
    assert_eq!(
        t.attr(l_nodes[0], &"@n".into()).unwrap().as_const(),
        Some("2")
    );
}

#[test]
fn theorem_5_11_equivalence_on_small_instances() {
    // Satisfiable formulas have a counter-example solution (certain = false);
    // unsatisfiable ones do not (certain = true).
    let satisfiable = CnfFormula::paper_example();
    assert!(!theorem_5_11::certain_answer(&satisfiable));
    let assignment = satisfiable.brute_force_satisfiable().unwrap();
    let gadget = theorem_5_11::build(&satisfiable);
    let witness = theorem_5_11::solution_from_assignment(&satisfiable, &assignment);
    assert!(is_solution(
        &gadget.setting,
        &gadget.source_tree,
        &witness,
        false
    ));
    assert!(!gadget.query.evaluate_boolean(&witness));

    let unsatisfiable = CnfFormula::tiny_unsatisfiable();
    assert!(theorem_5_11::certain_answer(&unsatisfiable));
}

#[test]
fn theorem_5_11_counterexample_solutions_for_every_satisfying_assignment() {
    // Stronger check: for every satisfying assignment of a small formula, the
    // constructed solution is valid and avoids Q; and for arbitrary
    // assignments of an unsatisfiable clause pair the query always fires on
    // naive constructions — matching the (⇐) direction intuition.
    let f = CnfFormula::new(
        2,
        vec![
            Clause([Literal::pos(0), Literal::neg(1), Literal::pos(0)]),
            Clause([Literal::neg(0), Literal::pos(1), Literal::pos(1)]),
        ],
    );
    let g = theorem_5_11::build(&f);
    let mut found = 0;
    for mask in 0u32..4 {
        let assignment = vec![mask & 1 != 0, mask & 2 != 0];
        if f.satisfied_by(&assignment) {
            found += 1;
            let witness = theorem_5_11::solution_from_assignment(&f, &assignment);
            assert!(is_solution(&g.setting, &g.source_tree, &witness, false));
            assert!(!g.query.evaluate_boolean(&witness));
        }
    }
    assert!(found >= 1);
}

#[test]
fn consistency_gadget_matches_brute_force_satisfiability() {
    let mut rng = StdRng::seed_from_u64(99);
    let mut formulas = vec![
        CnfFormula::paper_example(),
        CnfFormula::tiny_unsatisfiable(),
    ];
    for _ in 0..4 {
        formulas.push(CnfFormula::random(3, 5, &mut rng));
    }
    for f in formulas {
        let setting = consistency_np::build(&f);
        assert_eq!(
            check_consistency_general(&setting),
            consistency_np::expected_consistent(&f),
            "consistency reduction disagrees with SAT on {f:?}"
        );
    }
}

#[test]
fn gadget_settings_use_only_trivial_content_models() {
    // Theorem 5.11's point is that hardness needs nothing fancy from the
    // DTDs: every content model in the gadget is a concatenation of starred,
    // pairwise-distinct element types (or ε) — unordered, cardinality-free
    // constraints, exactly like the paper's `C*L*`, `G1*L*`, `H1*G2*`, ….
    let g = theorem_5_11::build(&CnfFormula::paper_example());
    for dtd in [&g.setting.source_dtd, &g.setting.target_dtd] {
        for el in dtd.element_types() {
            let rule = dtd.rule(el);
            assert!(
                rule.is_nested_relational_shape() || rule.is_simple(),
                "{el} has an unexpectedly complex content model {rule}"
            );
        }
    }
}
