//! Robustness tests for the `xdx-server` front-end: connection deadlines
//! (slow-loris reaping, idle reaping), graceful drain (in-flight responses
//! flushed byte-identically, post-drain requests answered `GoAway`, the
//! process exits by the deadline), and the client's retry policy carrying
//! idempotent requests across a server drain + restart byte-identically.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use xdx_server::wire::{self, RequestBody, RequestFrame, ResponseBody};
use xdx_server::{Client, ClientError, RetryPolicy, Server, ServerConfig};
use xml_data_exchange::core::setting::books_to_writers_setting;
use xml_data_exchange::xmltree::tree_to_text;
use xml_data_exchange::{BatchEngine, XmlTree};

static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "xdx-robustness-{tag}-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Distinct documents of growing size (book `i` has `i` authors).
fn sources(n: usize) -> Vec<XmlTree> {
    (0..n)
        .map(|i| {
            let mut t = XmlTree::new("db");
            for b in 0..=i {
                let book = t.add_child(t.root(), "book");
                t.set_attr(book, "@title", format!("T{b}"));
                for a in 0..b {
                    let author = t.add_child(book, "author");
                    t.set_attr(author, "@name", format!("N{a}"));
                    t.set_attr(author, "@aff", format!("U{a}"));
                }
            }
            t
        })
        .collect()
}

/// One encoded `Ping` request, framing header included.
fn ping_frame() -> Vec<u8> {
    let mut buf = vec![0u8; 4];
    wire::encode_request_into(
        &RequestFrame {
            id: 1,
            setting_id: 0,
            body: RequestBody::Ping,
        },
        false,
        &mut buf,
    );
    let len = (buf.len() - 4) as u32;
    buf[0..4].copy_from_slice(&len.to_be_bytes());
    buf
}

#[test]
fn a_slow_loris_is_reaped_at_the_read_progress_deadline() {
    let setting = books_to_writers_setting();
    let config = ServerConfig {
        workers: 1,
        read_progress_timeout: Some(Duration::from_millis(300)),
        idle_timeout: None,
        ..ServerConfig::default()
    };
    let server = Server::bind(&setting, Some("127.0.0.1:0"), None, config).unwrap();
    let addr = server.tcp_addr().unwrap();
    let control = server.control();
    std::thread::scope(|scope| {
        let handle = scope.spawn(move || server.run());

        // A healthy client pipelining whole frames at a leisurely pace:
        // the progress clock restarts at every completed frame, so it
        // must never be reaped, even across many deadline periods.
        let healthy = scope.spawn(move || {
            let mut client = Client::connect_tcp(&addr.to_string()).unwrap();
            for _ in 0..6 {
                client.ping().unwrap();
                std::thread::sleep(Duration::from_millis(150));
            }
        });

        // The slow loris dribbles the same ping one byte at a time — it
        // never completes a frame within the deadline and must be closed.
        let frame = ping_frame();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        let start = Instant::now();
        let mut closed = false;
        'drip: for chunk in frame.chunks(1) {
            if stream.write_all(chunk).is_err() {
                closed = true;
                break 'drip;
            }
            std::thread::sleep(Duration::from_millis(150));
            if start.elapsed() > Duration::from_secs(15) {
                break 'drip; // far past the deadline and still writable
            }
        }
        if !closed {
            // The frame is still incomplete when the deadline hits; the
            // read observes the server-side close as EOF or a reset.
            let mut byte = [0u8; 1];
            closed = matches!(stream.read(&mut byte), Ok(0) | Err(_));
        }
        assert!(closed, "the slow-loris connection was never closed");
        assert!(
            start.elapsed() < Duration::from_secs(15),
            "reaped only after {:?}",
            start.elapsed()
        );

        healthy.join().expect("healthy pipelining client survived");
        control.shutdown();
        handle.join().unwrap().unwrap();
    });
}

#[test]
fn an_idle_connection_is_reaped_and_an_active_one_is_not() {
    let setting = books_to_writers_setting();
    let config = ServerConfig {
        workers: 1,
        idle_timeout: Some(Duration::from_millis(250)),
        read_progress_timeout: None,
        ..ServerConfig::default()
    };
    let server = Server::bind(&setting, Some("127.0.0.1:0"), None, config).unwrap();
    let addr = server.tcp_addr().unwrap();
    let control = server.control();
    std::thread::scope(|scope| {
        let handle = scope.spawn(move || server.run());

        // Steady activity inside the idle window: never reaped.
        let mut client = Client::connect_tcp(&addr.to_string()).unwrap();
        for _ in 0..5 {
            client.ping().unwrap();
            std::thread::sleep(Duration::from_millis(100));
        }

        // Then go quiet past the deadline: the connection is closed, which
        // the next round trip surfaces as an I/O error (no silent retry —
        // this client has no retry policy).
        std::thread::sleep(Duration::from_millis(900));
        let err = client.ping().unwrap_err();
        assert!(matches!(err, ClientError::Io(_)), "{err}");

        // A fresh connection is accepted as usual.
        let mut fresh = Client::connect_tcp(&addr.to_string()).unwrap();
        fresh.ping().unwrap();
        drop((client, fresh));

        control.shutdown();
        handle.join().unwrap().unwrap();
    });
}

#[test]
fn drain_flushes_in_flight_responses_and_answers_new_requests_with_goaway() {
    let setting = books_to_writers_setting();
    let engine = BatchEngine::new(&setting);
    let docs = sources(64);
    let expected: Vec<Result<String, _>> = engine
        .canonical_solutions_batch(&docs)
        .into_iter()
        .map(|r| r.map(|t| tree_to_text(&t)))
        .collect();

    let config = ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    };
    let server = Server::bind(&setting, Some("127.0.0.1:0"), None, config).unwrap();
    let addr = server.tcp_addr().unwrap();
    let control = server.control();
    std::thread::scope(|scope| {
        let handle = scope.spawn(move || server.run());

        let mut client = Client::connect_tcp(&addr.to_string()).unwrap();
        let wire_docs: Vec<wire::WireDoc> = docs
            .iter()
            .map(|t| wire::WireDoc::from_tree(t, wire::Codec::Text))
            .collect();

        // Pipeline several heavy batches onto the single worker, so the
        // connection stays unsettled for a long stretch.
        let in_flight: Vec<u64> = (0..4)
            .map(|_| {
                client
                    .send(RequestBody::CanonicalSolution {
                        docs: wire_docs.clone(),
                    })
                    .unwrap()
            })
            .collect();

        // Wait until the server has demonstrably admitted work, then drain.
        let mut observer = Client::connect_tcp(&addr.to_string()).unwrap();
        loop {
            let stats = observer.stats().unwrap();
            let highwater = stats.counter("server.inflight_highwater").unwrap_or(0);
            if highwater >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        control.drain(Duration::from_secs(60));

        // A request sent *after* the drain began is answered GoAway: it
        // was never executed and is safe to replay elsewhere.
        let rejected = client.send(RequestBody::Ping).unwrap();

        // Every in-flight response is still flushed, byte-identical to the
        // local engine's answers.
        let mut frames = std::collections::HashMap::new();
        for _ in 0..in_flight.len() + 1 {
            let frame = client.recv().unwrap();
            frames.insert(frame.id, frame.body);
        }
        for id in &in_flight {
            match frames.remove(id) {
                Some(ResponseBody::Solutions(results)) => {
                    let got: Vec<Result<String, _>> = results
                        .into_iter()
                        .map(|r| r.map(|d| d.as_text().unwrap().to_string()))
                        .collect();
                    for (g, w) in got.iter().zip(&expected) {
                        match (g, w) {
                            (Ok(g), Ok(w)) => assert_eq!(g, w, "drained response diverged"),
                            (Err(_), Err(_)) => {}
                            _ => panic!("drained response verdict diverged"),
                        }
                    }
                }
                other => panic!("in-flight request {id} answered with {other:?}"),
            }
        }
        assert!(
            matches!(frames.remove(&rejected), Some(ResponseBody::GoAway)),
            "the post-drain request was not answered GoAway"
        );

        // Once settled, the connection is closed and the server exits well
        // before the 60 s grace deadline.
        let closed = {
            let deadline = Instant::now() + Duration::from_secs(20);
            loop {
                // EOF surfaces as an I/O error.
                if client.recv().is_err() {
                    break true;
                }
                if Instant::now() > deadline {
                    break false;
                }
            }
        };
        assert!(closed, "the drained connection was never closed");
        handle.join().unwrap().unwrap();
        drop(control);
    });
}

#[test]
fn a_retry_policy_carries_idempotent_requests_across_drain_and_restart() {
    let setting = books_to_writers_setting();
    let dir = fresh_dir("restart");
    let store_dir = dir.join("store");
    let sock = dir.join("xdx.sock");
    let config = || ServerConfig {
        workers: 1,
        store_dir: Some(store_dir.clone()),
        ..ServerConfig::default()
    };

    let server = Server::bind(&setting, None, Some(&sock), config()).unwrap();
    let control = server.control();
    let first = std::thread::spawn(move || server.run());

    let mut client = Client::connect_unix(&sock).unwrap();
    client.negotiate(wire::SUPPORTED_FEATURES).unwrap();
    client.set_retry_policy(Some(RetryPolicy {
        max_retries: 40,
        initial_backoff: Duration::from_millis(25),
        max_backoff: Duration::from_millis(200),
    }));

    let doc = sources(6).pop().unwrap();
    let version = client.put_doc(7, &doc).unwrap();
    let (before, v) = client.get_doc(7).unwrap();
    assert_eq!(v, version);

    // Drain the server away underneath the client. The store checkpoints
    // and the socket file disappears.
    control.drain(Duration::from_secs(10));
    first.join().unwrap().unwrap();
    assert!(!sock.exists(), "drain must remove the unix socket");

    // The client's next read fails over: the dead connection is detected,
    // re-dialed with backoff until the restarted server appears, then
    // re-negotiated — and the answer is byte-identical to before the
    // restart, served from the recovered store.
    let restarter = std::thread::spawn({
        let setting = setting.clone();
        let sock = sock.clone();
        let config = config();
        move || {
            std::thread::sleep(Duration::from_millis(400));
            let server = Server::bind(&setting, None, Some(&sock), config).unwrap();
            let control = server.control();
            let handle = std::thread::spawn(move || server.run());
            (control, handle)
        }
    });
    let (tree, recovered_version) = client.get_doc(7).unwrap();
    assert_eq!(tree_to_text(&tree), tree_to_text(&before));
    assert_eq!(recovered_version, version);

    // The reconnect re-negotiated the requested features transparently.
    assert_eq!(client.codec(), wire::Codec::Binary);

    // Mutations still work against the restarted server (freshly sent, not
    // replayed: writes are never blindly re-sent by the retry machinery).
    let v2 = client.put_doc(7, &doc).unwrap();
    assert_eq!(v2, version + 1);

    let (control, handle) = restarter.join().unwrap();
    control.shutdown();
    handle.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
