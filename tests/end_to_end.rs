//! End-to-end exchange scenarios spanning every crate: build a setting,
//! validate it, check consistency, exchange a document, materialise the
//! solution, answer queries.

use xml_data_exchange::core::setting::DataExchangeSetting;
use xml_data_exchange::core::{certain_answers, check_consistency, classify_setting, is_solution};
use xml_data_exchange::patterns::{parse_pattern, ConjunctiveTreeQuery, UnionQuery};
use xml_data_exchange::{canonical_solution, impose_sibling_order, Dtd, Std, TreeBuilder};

/// A two-STD HR scenario (same shape as the `clio_nested_relational`
/// example).
fn hr_setting() -> DataExchangeSetting {
    let source_dtd = Dtd::builder("company")
        .rule("company", "dept*")
        .rule("dept", "employee* project*")
        .attributes("dept", ["@dname"])
        .attributes("employee", ["@ename", "@role"])
        .attributes("project", ["@pname", "@budget"])
        .build()
        .unwrap();
    let target_dtd = Dtd::builder("directory")
        .rule("directory", "person* team*")
        .rule("person", "assignment*")
        .attributes("person", ["@name", "@phone"])
        .attributes("assignment", ["@dept", "@role"])
        .attributes("team", ["@dept", "@lead"])
        .build()
        .unwrap();
    let stds = vec![
        Std::parse(
            "directory[person(@name=$e, @phone=$ph)[assignment(@dept=$d, @role=$r)]] \
             :- company[dept(@dname=$d)[employee(@ename=$e, @role=$r)]]",
        )
        .unwrap(),
        Std::parse(
            "directory[team(@dept=$d, @lead=$l)] :- company[dept(@dname=$d)[project(@pname=$p)]]",
        )
        .unwrap(),
    ];
    DataExchangeSetting::new(source_dtd, target_dtd, stds)
}

fn hr_source() -> xml_data_exchange::XmlTree {
    TreeBuilder::new("company")
        .child("dept", |d| {
            d.attr("@dname", "Databases")
                .child("employee", |e| {
                    e.attr("@ename", "Ada").attr("@role", "researcher")
                })
                .child("employee", |e| {
                    e.attr("@ename", "Edgar").attr("@role", "engineer")
                })
                .child("project", |p| {
                    p.attr("@pname", "Exchange").attr("@budget", "100")
                })
                .child("project", |p| {
                    p.attr("@pname", "Chase").attr("@budget", "50")
                })
        })
        .child("dept", |d| {
            d.attr("@dname", "Systems").child("employee", |e| {
                e.attr("@ename", "Ada").attr("@role", "consultant")
            })
        })
        .build()
}

#[test]
fn hr_scenario_full_pipeline() {
    let setting = hr_setting();
    setting.validate(true).unwrap();
    assert!(setting.is_nested_relational());
    assert!(setting.is_fully_specified());
    assert!(classify_setting(&setting).is_tractable());
    assert!(check_consistency(&setting).consistent);

    let source = hr_source();
    assert!(setting.source_dtd.conforms(&source));

    let mut solution = canonical_solution(&setting, &source).unwrap();
    assert!(is_solution(&setting, &source, &solution, false));
    // 3 persons (one per employee match) + 1 team (Databases, deduplicated
    // over its two projects) + 3 assignments + root.
    let persons = solution
        .nodes()
        .into_iter()
        .filter(|&n| solution.label(n).as_str() == "person")
        .count();
    let teams = solution
        .nodes()
        .into_iter()
        .filter(|&n| solution.label(n).as_str() == "team")
        .count();
    assert_eq!(persons, 3);
    assert_eq!(teams, 1);

    impose_sibling_order(&mut solution, &setting.target_dtd).unwrap();
    assert!(setting.target_dtd.conforms(&solution));
    assert!(is_solution(&setting, &source, &solution, true));

    // Certain answers.
    let q = UnionQuery::single(
        ConjunctiveTreeQuery::new(
            ["who", "dept"],
            vec![parse_pattern("person(@name=$who)[assignment(@dept=$dept)]").unwrap()],
        )
        .unwrap(),
    );
    let answers = certain_answers(&setting, &source, &q).unwrap();
    assert_eq!(answers.tuples.len(), 3);
    assert!(answers
        .tuples
        .contains(&vec!["Ada".to_string(), "Databases".to_string()]));
    assert!(answers
        .tuples
        .contains(&vec!["Ada".to_string(), "Systems".to_string()]));
    assert!(answers
        .tuples
        .contains(&vec!["Edgar".to_string(), "Databases".to_string()]));

    // Unknown values (phones, team leads) are never certain.
    let leads = UnionQuery::single(
        ConjunctiveTreeQuery::new(["l"], vec![parse_pattern("team(@lead=$l)").unwrap()]).unwrap(),
    );
    assert!(certain_answers(&setting, &source, &leads)
        .unwrap()
        .tuples
        .is_empty());
}

#[test]
fn join_queries_over_the_target_schema() {
    // Which pairs of people certainly share a department?
    let setting = hr_setting();
    let source = hr_source();
    let q = UnionQuery::single(
        ConjunctiveTreeQuery::new(
            ["a", "b"],
            vec![
                parse_pattern("person(@name=$a)[assignment(@dept=$d)]").unwrap(),
                parse_pattern("person(@name=$b)[assignment(@dept=$d)]").unwrap(),
            ],
        )
        .unwrap(),
    );
    let answers = certain_answers(&setting, &source, &q).unwrap();
    assert!(answers
        .tuples
        .contains(&vec!["Ada".to_string(), "Edgar".to_string()]));
    assert!(answers
        .tuples
        .contains(&vec!["Edgar".to_string(), "Ada".to_string()]));
    assert!(answers
        .tuples
        .contains(&vec!["Ada".to_string(), "Ada".to_string()]));
    // Nobody certainly shares a department across the two departments only.
    assert_eq!(answers.tuples.len(), 4);
}

#[test]
fn source_documents_with_no_matches_still_have_solutions() {
    let setting = hr_setting();
    let source = TreeBuilder::new("company").build();
    let solution = canonical_solution(&setting, &source).unwrap();
    assert_eq!(solution.size(), 1);
    assert!(is_solution(&setting, &source, &solution, true));
    let q = UnionQuery::single(
        ConjunctiveTreeQuery::new(["x"], vec![parse_pattern("person(@name=$x)").unwrap()]).unwrap(),
    );
    assert!(certain_answers(&setting, &source, &q)
        .unwrap()
        .tuples
        .is_empty());
}

#[test]
fn boolean_queries_distinguish_certain_from_possible() {
    use xml_data_exchange::core::certain_answers_boolean;
    let setting = hr_setting();
    let source = hr_source();
    // Certainly true: some person is assigned to Databases.
    let certain = UnionQuery::single(ConjunctiveTreeQuery::boolean(vec![parse_pattern(
        "person[assignment(@dept=\"Databases\")]",
    )
    .unwrap()]));
    assert!(certain_answers_boolean(&setting, &source, &certain).unwrap());
    // Possible but not certain: a team lead named Ada exists in *some*
    // solutions (the null could be Ada) but not in all of them.
    let possible = UnionQuery::single(ConjunctiveTreeQuery::boolean(vec![parse_pattern(
        "team(@lead=\"Ada\")",
    )
    .unwrap()]));
    assert!(!certain_answers_boolean(&setting, &source, &possible).unwrap());
}
