//! Tests for the `xdx-obs` observability core: concurrent recording,
//! shard-merge determinism, bucket boundary properties, and the
//! construction-time name-ordering contract of [`MetricRegistry`].

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xml_data_exchange::obs::{
    bucket_lower, bucket_of, bucket_upper, Histogram, HistogramSnapshot, MetricRegistry, Trace,
    Unit, BUCKETS,
};

/// Concurrent recording into one histogram loses nothing: count and sum
/// are exact, min/max are the true extremes, and the buckets total the
/// record count.
#[test]
fn concurrent_records_are_all_counted() {
    let hist = Histogram::new();
    let threads = 8usize;
    let per_thread = 10_000u64;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let hist = &hist;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(t as u64);
                for _ in 0..per_thread {
                    hist.record(rng.gen_range(0..1u64 << 40));
                }
            });
        }
    });
    let snap = hist.snapshot();
    assert_eq!(snap.count, threads as u64 * per_thread);
    assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
    // Recompute the expected aggregate sequentially from the same seeds.
    let mut expect_sum = 0u64;
    let mut expect_min = u64::MAX;
    let mut expect_max = 0u64;
    for t in 0..threads {
        let mut rng = StdRng::seed_from_u64(t as u64);
        for _ in 0..per_thread {
            let v = rng.gen_range(0..1u64 << 40);
            expect_sum += v;
            expect_min = expect_min.min(v);
            expect_max = expect_max.max(v);
        }
    }
    assert_eq!(snap.sum, expect_sum);
    assert_eq!(snap.min, expect_min);
    assert_eq!(snap.max, expect_max);
}

/// Merging per-shard snapshots equals recording everything into one
/// histogram, and the merge is order-independent.
#[test]
fn shard_merge_is_deterministic() {
    let shards: Vec<Histogram> = (0..4).map(|_| Histogram::new()).collect();
    let reference = Histogram::new();
    let mut rng = StdRng::seed_from_u64(42);
    for i in 0..50_000u64 {
        let v = rng.gen_range(0..u64::MAX / 2);
        shards[(i % 4) as usize].record(v);
        reference.record(v);
    }
    let snaps: Vec<HistogramSnapshot> = shards.iter().map(Histogram::snapshot).collect();
    let mut forward = HistogramSnapshot::default();
    for s in &snaps {
        forward.merge(s);
    }
    let mut backward = HistogramSnapshot::default();
    for s in snaps.iter().rev() {
        backward.merge(s);
    }
    assert_eq!(forward, backward, "merge must be order-independent");
    assert_eq!(forward, reference.snapshot(), "merge must be lossless");
}

/// Sparse wire form round-trips losslessly.
#[test]
fn sparse_roundtrip_is_lossless() {
    let hist = Histogram::new();
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..1000 {
        hist.record(rng.gen_range(0..1u64 << 50));
    }
    let snap = hist.snapshot();
    let back = HistogramSnapshot::from_sparse(
        snap.count,
        snap.sum,
        snap.min,
        snap.max,
        snap.nonzero_buckets(),
    );
    assert_eq!(snap, back);
}

/// A registry built with out-of-order names must fail loudly at
/// construction — that is the invariant exporters skip re-checking.
#[test]
#[should_panic(expected = "strictly ascending")]
fn registry_rejects_unsorted_names() {
    let _ = MetricRegistry::new(&["b.second", "a.first"], &[], &[]);
}

/// Duplicate names are not "ascending" either.
#[test]
#[should_panic(expected = "strictly ascending")]
fn registry_rejects_duplicate_names() {
    let _ = MetricRegistry::new(&[], &[], &[("x", Unit::Count), ("x", Unit::Nanos)]);
}

/// Rows come back in construction (= name) order without sorting.
#[test]
fn registry_rows_walk_in_name_order() {
    let reg = MetricRegistry::new(
        &["a", "b"],
        &["g"],
        &[("h.one", Unit::Nanos), ("h.two", Unit::Bytes)],
    );
    reg.counter(reg.counter_index("b").unwrap()).add(3);
    reg.histogram(reg.histogram_index("h.two").unwrap())
        .record(9);
    let counters: Vec<(&str, u64)> = reg.counter_rows().collect();
    assert_eq!(counters, vec![("a", 0), ("b", 3)]);
    let hists: Vec<(&str, Unit, u64)> = reg
        .histogram_rows()
        .map(|(n, u, s)| (n, u, s.count))
        .collect();
    assert_eq!(
        hists,
        vec![("h.one", Unit::Nanos, 0), ("h.two", Unit::Bytes, 1)]
    );
}

/// A trace charges every phase boundary and totals its phases.
#[test]
fn trace_phases_accumulate() {
    let mut t = Trace::new();
    std::thread::sleep(std::time::Duration::from_millis(2));
    t.step(0);
    std::thread::sleep(std::time::Duration::from_millis(1));
    t.step(1);
    t.step(0); // repeated phases accumulate
    t.add_ns(2, 500);
    assert!(t.phase_ns(0) >= 2_000_000);
    assert!(t.phase_ns(1) >= 1_000_000);
    assert_eq!(t.phase_ns(2), 500);
    assert_eq!(t.total_ns(), t.phase_ns(0) + t.phase_ns(1) + 500);
    assert!(t.wall_ns() >= t.phase_ns(0) + t.phase_ns(1));
}

proptest! {
    /// Every value lands in the bucket whose bounds contain it, and the
    /// bucket edges tile the `u64` range without gap or overlap.
    #[test]
    fn bucket_bounds_contain_their_values(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..256 {
            // Stress the boundaries: powers of two and their neighbors.
            let exp = rng.gen_range(0..64u32);
            let base = 1u64.checked_shl(exp).unwrap_or(0);
            let arbitrary = rng.gen_range(0..u64::MAX);
            for v in [
                base.saturating_sub(1),
                base,
                base.saturating_add(1),
                arbitrary,
            ] {
                let b = bucket_of(v);
                prop_assert!(b < BUCKETS);
                prop_assert!(bucket_lower(b) <= v, "lower({b}) > {v}");
                prop_assert!(v <= bucket_upper(b), "{v} > upper({b})");
                if b > 0 {
                    prop_assert_eq!(bucket_upper(b - 1) + 1, bucket_lower(b));
                }
            }
        }
    }

    /// Percentiles are ordered, bracketed by min/max, and p100 is exact.
    #[test]
    fn percentiles_are_ordered_and_bracketed(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let hist = Histogram::new();
        let n = rng.gen_range(1..200usize);
        let mut max = 0u64;
        let mut min = u64::MAX;
        for _ in 0..n {
            let width = rng.gen_range(1..63u32);
            let v = rng.gen_range(0..1u64 << width);
            max = max.max(v);
            min = min.min(v);
            hist.record(v);
        }
        let snap = hist.snapshot();
        let (p50, p90, p99) = (snap.p50(), snap.p90(), snap.p99());
        prop_assert!(p50 <= p90 && p90 <= p99);
        prop_assert!(min <= p50, "p50 {p50} below min {min}");
        prop_assert!(p99 <= max, "p99 {p99} above max {max}");
        prop_assert_eq!(snap.percentile(100.0), max);
        prop_assert_eq!(snap.min, min);
        prop_assert_eq!(snap.max, max);
    }
}
