//! Integration tests for the `xdx-server` serving front-end: every
//! operation over both TCP and Unix sockets, byte-for-byte parity with
//! direct `BatchEngine` calls under concurrent connections, malformed-frame
//! robustness, and backpressure (`Busy`) under a saturated in-flight
//! budget.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use xdx_server::wire::ErrorCode;
use xdx_server::{Client, ClientError, RequestBody, ResponseBody, Server, ServerConfig};
use xml_data_exchange::core::certain::certain_answers_boolean;
use xml_data_exchange::core::setting::books_to_writers_setting;
use xml_data_exchange::patterns::{parse_pattern, ConjunctiveTreeQuery, UnionQuery};
use xml_data_exchange::xmltree::tree_to_text;
use xml_data_exchange::{BatchEngine, DataExchangeSetting, XmlTree};

static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

/// Start a server for `setting` on both a fresh Unix socket and an
/// ephemeral TCP port, run `f`, then shut everything down.
fn with_server(
    setting: &DataExchangeSetting,
    config: ServerConfig,
    f: impl FnOnce(std::net::SocketAddr, &Path),
) {
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "xdx-server-test-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::SeqCst)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("xdx.sock");
    std::thread::scope(|scope| {
        let server =
            Server::bind(setting, Some("127.0.0.1:0"), Some(&sock), config).expect("bind server");
        let addr = server.tcp_addr().expect("tcp bound");
        let control = server.control();
        let handle = scope.spawn(move || server.run());
        // The listeners exist as soon as bind returned; no wait needed.
        f(addr, &sock);
        control.shutdown();
        handle.join().expect("server thread").expect("clean run");
    });
    assert!(!sock.exists(), "the unix socket file must be removed");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Distinct documents of growing size (book `i` has `i` authors); the same
/// shape the engine tests use.
fn sources(n: usize) -> Vec<XmlTree> {
    (0..n)
        .map(|i| {
            let mut t = XmlTree::new("db");
            for b in 0..=i {
                let book = t.add_child(t.root(), "book");
                t.set_attr(book, "@title", format!("T{b}"));
                for a in 0..b {
                    let author = t.add_child(book, "author");
                    t.set_attr(author, "@name", format!("N{a}"));
                    t.set_attr(author, "@aff", format!("U{a}"));
                }
            }
            t
        })
        .collect()
}

fn title_query() -> UnionQuery {
    UnionQuery::single(
        ConjunctiveTreeQuery::new(["t"], vec![parse_pattern("work(@title=$t)").unwrap()]).unwrap(),
    )
}

#[test]
fn all_ops_over_tcp_and_unix_match_the_batch_engine() {
    let setting = books_to_writers_setting();
    let engine = BatchEngine::new(&setting).parallelism(2);
    let docs = sources(5);
    let query = title_query();

    // One inconsistent document in the middle exercises error plumbing.
    let mut mixed = docs.clone();
    mixed.insert(2, XmlTree::new("not_db"));

    let expect_solutions: Vec<Result<String, _>> = engine
        .canonical_solutions_batch(&docs)
        .into_iter()
        .map(|r| r.map(|t| tree_to_text(&t)))
        .collect();
    let expect_answers: Vec<Vec<Vec<String>>> = engine
        .certain_answers_batch(&docs, &query)
        .into_iter()
        .map(|r| r.unwrap().tuples.into_iter().collect())
        .collect();
    let expect_consistent = engine.check_consistency_batch(&mixed);
    let boolean = UnionQuery::single(ConjunctiveTreeQuery::boolean(vec![parse_pattern(
        "bib[writer(@name=\"N0\")]",
    )
    .unwrap()]));
    let expect_booleans: Vec<bool> = docs
        .iter()
        .map(|d| certain_answers_boolean(&setting, d, &boolean).unwrap())
        .collect();

    with_server(&setting, ServerConfig::default(), |addr, sock| {
        let mut clients = vec![
            Client::connect_tcp(&addr.to_string()).unwrap(),
            Client::connect_unix(sock).unwrap(),
        ];
        for client in &mut clients {
            client.ping().unwrap();

            let consistent = client.check_consistency(&mixed).unwrap();
            assert_eq!(consistent, expect_consistent);

            let solutions = client.canonical_solution_texts(&docs).unwrap();
            assert_eq!(solutions.len(), expect_solutions.len());
            for (got, want) in solutions.iter().zip(&expect_solutions) {
                // Byte-for-byte: the server's canonical solution text must
                // equal the serialized local BatchEngine result.
                assert_eq!(got.as_ref().unwrap(), want.as_ref().unwrap());
            }

            let answers = client.certain_answers(&query, &docs).unwrap();
            for (got, want) in answers.iter().zip(&expect_answers) {
                assert_eq!(got.as_ref().unwrap(), want);
            }

            let booleans = client.certain_answers_boolean(&boolean, &docs).unwrap();
            let booleans: Vec<bool> = booleans.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(booleans, expect_booleans);

            // Parsed-tree round trip agrees structurally too.
            let trees = client.canonical_solutions(&docs).unwrap();
            for (got, want) in trees.iter().zip(&expect_solutions) {
                assert_eq!(tree_to_text(got.as_ref().unwrap()), *want.as_ref().unwrap());
            }
        }
    });
}

#[test]
fn per_document_errors_travel_as_structured_frames() {
    // A chase-failing setting: two STDs force the same entry to carry
    // clashing constants, so `CanonicalSolution` fails per document with
    // `AttributeClash` while other documents still succeed.
    let setting = {
        use xml_data_exchange::xmltree::Dtd;
        use xml_data_exchange::Std;
        let source_dtd = Dtd::builder("db")
            .rule("db", "book*")
            .rule("book", "author*")
            .attributes("book", ["@title"])
            .attributes("author", ["@name", "@aff"])
            .build()
            .unwrap();
        let target_dtd = Dtd::builder("bib")
            .rule("bib", "writer")
            .rule("writer", "work*")
            .attributes("writer", ["@name"])
            .attributes("work", ["@title", "@year"])
            .build()
            .unwrap();
        let std = Std::parse(
            "bib[writer(@name=$y)[work(@title=$x, @year=$z)]] :- db[book(@title=$x)[author(@name=$y)]]",
        )
        .unwrap();
        DataExchangeSetting::new(source_dtd, target_dtd, vec![std])
    };
    // Two authors on one book force a writer merge with distinct @name.
    let mut clash = XmlTree::new("db");
    let book = clash.add_child(clash.root(), "book");
    clash.set_attr(book, "@title", "T");
    for name in ["A", "B"] {
        let a = clash.add_child(book, "author");
        clash.set_attr(a, "@name", name);
        clash.set_attr(a, "@aff", "U");
    }
    let fine = XmlTree::new("db");

    with_server(&setting, ServerConfig::default(), |_, sock| {
        let mut client = Client::connect_unix(sock).unwrap();
        let results = client
            .canonical_solution_texts(&[fine.clone(), clash.clone()])
            .unwrap();
        assert!(results[0].is_ok());
        let err = results[1].as_ref().unwrap_err();
        assert_eq!(err.code, ErrorCode::AttributeClash);
        assert!(err.message.contains("clashes"), "{}", err.message);
    });
}

#[test]
fn four_concurrent_connections_stay_byte_identical() {
    let setting = books_to_writers_setting();
    let engine = BatchEngine::new(&setting).parallelism(2);
    let query = title_query();
    // Each connection gets its own distinct document set.
    let doc_sets: Vec<Vec<XmlTree>> = (0..4).map(|i| sources(3 + 2 * i)).collect();
    type SolutionText = Result<String, xml_data_exchange::core::SolutionError>;
    type Expectation = (Vec<SolutionText>, Vec<Vec<Vec<String>>>);
    let expected: Vec<Expectation> = doc_sets
        .iter()
        .map(|docs| {
            (
                engine
                    .canonical_solutions_batch(docs)
                    .into_iter()
                    .map(|r| r.map(|t| tree_to_text(&t)))
                    .collect(),
                engine
                    .certain_answers_batch(docs, &query)
                    .into_iter()
                    .map(|r| r.unwrap().tuples.into_iter().collect())
                    .collect(),
            )
        })
        .collect();

    let config = ServerConfig {
        workers: 3,
        ..ServerConfig::default()
    };
    with_server(&setting, config, |addr, sock| {
        std::thread::scope(|scope| {
            for (i, (docs, (expect_solutions, expect_answers))) in
                doc_sets.iter().zip(&expected).enumerate()
            {
                let query = query.clone();
                scope.spawn(move || {
                    // Half the connections on TCP, half on the Unix socket.
                    let mut client = if i % 2 == 0 {
                        Client::connect_tcp(&addr.to_string()).unwrap()
                    } else {
                        Client::connect_unix(sock).unwrap()
                    };
                    for _ in 0..3 {
                        let solutions = client.canonical_solution_texts(docs).unwrap();
                        for (got, want) in solutions.iter().zip(expect_solutions) {
                            assert_eq!(got.as_ref().unwrap(), want.as_ref().unwrap());
                        }
                        let answers = client.certain_answers(&query, docs).unwrap();
                        for (got, want) in answers.iter().zip(expect_answers) {
                            assert_eq!(got.as_ref().unwrap(), want);
                        }
                    }
                });
            }
        });
    });
}

#[test]
fn malformed_frames_are_rejected_without_crashing() {
    let setting = books_to_writers_setting();
    with_server(&setting, ServerConfig::default(), |addr, sock| {
        // 1. Garbage payload with a valid length prefix: structured error,
        //    connection survives.
        let mut client = Client::connect_unix(sock).unwrap();
        client.send_raw(&[0, 0, 0, 3, 0xde, 0xad, 0xbe]).unwrap();
        let resp = client.recv().unwrap();
        match resp.body {
            ResponseBody::Error(e) => assert_eq!(e.code, ErrorCode::MalformedFrame),
            other => panic!("expected an error frame, got {other:?}"),
        }
        client
            .ping()
            .expect("connection survives a malformed payload");

        // 2. Unknown op: structured error with the id echoed.
        let mut bytes = vec![0, 0, 0, 9, 77];
        bytes.extend_from_slice(&123u64.to_be_bytes());
        client.send_raw(&bytes).unwrap();
        let resp = client.recv().unwrap();
        assert_eq!(resp.id, 123);
        match resp.body {
            ResponseBody::Error(e) => assert_eq!(e.code, ErrorCode::UnknownOp),
            other => panic!("expected an error frame, got {other:?}"),
        }

        // 3. Unparseable document / query: per-request structured errors.
        let id = client
            .send(RequestBody::CanonicalSolution {
                docs: vec!["db[unclosed".into()],
            })
            .unwrap();
        let resp = client.recv().unwrap();
        assert_eq!(resp.id, id);
        match resp.body {
            ResponseBody::Error(e) => {
                assert_eq!(e.code, ErrorCode::TreeParse);
                assert!(e.message.contains("document 0"));
            }
            other => panic!("expected an error frame, got {other:?}"),
        }
        let id = client
            .send(RequestBody::CertainAnswers {
                query: "($x) :-".into(),
                docs: vec!["db".into()],
            })
            .unwrap();
        let resp = client.recv().unwrap();
        assert_eq!(resp.id, id);
        match resp.body {
            ResponseBody::Error(e) => assert_eq!(e.code, ErrorCode::QuerySyntax),
            other => panic!("expected an error frame, got {other:?}"),
        }

        // 4. Oversized announced length: error frame, then the server
        //    closes this connection (the stream cannot be re-framed).
        client.send_raw(&[0xff, 0xff, 0xff, 0xff]).unwrap();
        let resp = client.recv().unwrap();
        match resp.body {
            ResponseBody::Error(e) => assert_eq!(e.code, ErrorCode::FrameTooLarge),
            other => panic!("expected an error frame, got {other:?}"),
        }
        match client.recv() {
            Err(ClientError::Io(_)) => {}
            other => panic!("expected the connection to close, got {other:?}"),
        }

        // 5. Zero-length frame: same poisoning.
        let mut client = Client::connect_unix(sock).unwrap();
        client.send_raw(&[0, 0, 0, 0]).unwrap();
        let resp = client.recv().unwrap();
        match resp.body {
            ResponseBody::Error(e) => assert_eq!(e.code, ErrorCode::MalformedFrame),
            other => panic!("expected an error frame, got {other:?}"),
        }

        // 6. A truncated frame followed by an abrupt disconnect must not
        //    hurt the server.
        let mut rude = Client::connect_tcp(&addr.to_string()).unwrap();
        rude.send_raw(&[0, 0, 1, 0, 1, 2, 3]).unwrap();
        drop(rude);

        // The server is still fully alive for new connections.
        let mut fresh = Client::connect_tcp(&addr.to_string()).unwrap();
        fresh.ping().unwrap();
        assert_eq!(
            fresh.check_consistency(&sources(2)).unwrap(),
            vec![true, true]
        );
    });
}

#[test]
fn saturation_yields_busy_not_unbounded_queueing() {
    let setting = books_to_writers_setting();
    // Heavy-ish documents so one worker cannot race ahead of admission.
    let doc = sources(14).pop().unwrap();
    let config = ServerConfig {
        workers: 1,
        max_inflight_per_conn: 64,
        max_inflight_total: 2,
        ..ServerConfig::default()
    };
    with_server(&setting, config, |_, sock| {
        let mut client = Client::connect_unix(sock).unwrap();
        // Pipeline 20 requests in a single write so they arrive (for all
        // practical purposes) in one readable batch.
        let mut ids = Vec::new();
        let mut bytes = Vec::new();
        for i in 0..20u64 {
            let frame = xdx_server::wire::frame(xdx_server::wire::encode_request(
                &xdx_server::RequestFrame {
                    id: 1000 + i,
                    setting_id: 0,
                    body: RequestBody::CanonicalSolution {
                        docs: vec![tree_to_text(&doc).into()],
                    },
                },
                false,
            ));
            bytes.extend_from_slice(&frame);
            ids.push(1000 + i);
        }
        client.send_raw(&bytes).unwrap();

        let mut busy = 0usize;
        let mut ok = 0usize;
        let mut seen_ids = Vec::new();
        for _ in 0..20 {
            let resp = client.recv().unwrap();
            seen_ids.push(resp.id);
            match resp.body {
                ResponseBody::Busy => busy += 1,
                ResponseBody::Solutions(results) => {
                    assert!(results.iter().all(Result::is_ok));
                    ok += 1;
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
        assert_eq!(busy + ok, 20);
        assert!(
            busy >= 14,
            "a budget of 2 must shed most of 20 pipelined requests, got {busy} Busy"
        );
        assert!(ok >= 2, "admitted requests must still be served");
        seen_ids.sort_unstable();
        assert_eq!(seen_ids, ids, "every request is answered exactly once");

        // After the burst drains the connection serves normally again.
        client.ping().unwrap();
        let solutions = client
            .canonical_solution_texts(std::slice::from_ref(&doc))
            .unwrap();
        assert!(solutions[0].is_ok());
    });
}

#[test]
fn a_peer_that_never_reads_cannot_pin_unbounded_output() {
    // Write-path backpressure: responses a client refuses to drain may
    // occupy at most `max_buffered_response_bytes` per connection before
    // the server closes it, so a read-less pipeliner cannot grow server
    // memory with its own responses.
    let setting = books_to_writers_setting();
    let doc = sources(40).pop().unwrap(); // ~30 KB of response text
    let config = ServerConfig {
        workers: 1,
        max_inflight_per_conn: 64,
        max_inflight_total: 64,
        max_buffered_response_bytes: 8 * 1024,
        ..ServerConfig::default()
    };
    with_server(&setting, config, |_, sock| {
        let mut client = Client::connect_unix(sock).unwrap();
        // Pipeline 64 requests and do NOT read. Total response volume
        // (~2 MB) far exceeds kernel socket buffers + the 8 KB cap, so the
        // server must hit the cap and close the connection.
        let mut sent = 0usize;
        for _ in 0..64 {
            match client.send(RequestBody::CanonicalSolution {
                docs: vec![tree_to_text(&doc).into()],
            }) {
                Ok(_) => sent += 1,
                Err(_) => break, // server already closed on us
            }
        }
        assert!(sent > 0);
        // Give the single worker time to compute everything while nothing
        // drains — the write buffer must cross the cap in this window.
        std::thread::sleep(std::time::Duration::from_millis(500));
        let mut received = 0usize;
        // Errors (EOF) mean the server dropped the connection.
        while client.recv().is_ok() {
            received += 1;
            assert!(received <= sent, "more responses than requests");
        }
        assert!(
            received < sent,
            "the connection must be closed before all {sent} buffered responses are delivered \
             (got {received})"
        );
        // The server itself is unaffected.
        let mut fresh = Client::connect_unix(sock).unwrap();
        fresh.ping().unwrap();
        assert!(fresh
            .canonical_solution_texts(std::slice::from_ref(&doc))
            .unwrap()[0]
            .is_ok());
    });
}

#[test]
fn pipelined_responses_are_correlated_by_id() {
    let setting = books_to_writers_setting();
    let docs = sources(4);
    let engine = BatchEngine::new(&setting).parallelism(1);
    let expect: Vec<String> = engine
        .canonical_solutions_batch(&docs)
        .into_iter()
        .map(|r| tree_to_text(&r.unwrap()))
        .collect();
    let config = ServerConfig {
        workers: 3,
        ..ServerConfig::default()
    };
    with_server(&setting, config, |addr, _| {
        let mut client = Client::connect_tcp(&addr.to_string()).unwrap();
        // One request per document, all in flight at once; responses may
        // arrive in any order and are matched back by id.
        let mut id_to_doc = std::collections::BTreeMap::new();
        for (i, doc) in docs.iter().enumerate() {
            let id = client
                .send(RequestBody::CanonicalSolution {
                    docs: vec![tree_to_text(doc).into()],
                })
                .unwrap();
            id_to_doc.insert(id, i);
        }
        for _ in 0..docs.len() {
            let resp = client.recv().unwrap();
            let doc_index = id_to_doc.remove(&resp.id).expect("unknown response id");
            match resp.body {
                ResponseBody::Solutions(results) => {
                    assert_eq!(results.len(), 1);
                    assert_eq!(
                        results[0].as_ref().unwrap().as_text(),
                        Some(expect[doc_index].as_str())
                    );
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
        assert!(id_to_doc.is_empty());
    });
}

#[test]
fn both_codecs_yield_identical_results_and_mixed_clients_coexist() {
    // Byte-for-byte parity with the local BatchEngine under *both* document
    // codecs, exercised by three concurrent connections in different
    // protocol modes against one server: a v1 client that never negotiates,
    // a client that sends Hello but declines every feature, and a full v2
    // binary+chunked client.
    let setting = books_to_writers_setting();
    let engine = BatchEngine::new(&setting).parallelism(2);
    let docs = sources(6);
    let query = title_query();
    let expect_solutions: Vec<String> = engine
        .canonical_solutions_batch(&docs)
        .into_iter()
        .map(|r| tree_to_text(&r.unwrap()))
        .collect();
    let expect_answers: Vec<Vec<Vec<String>>> = engine
        .certain_answers_batch(&docs, &query)
        .into_iter()
        .map(|r| r.unwrap().tuples.into_iter().collect())
        .collect();
    let expect_consistent = engine.check_consistency_batch(&docs);

    with_server(&setting, ServerConfig::default(), |addr, sock| {
        std::thread::scope(|scope| {
            for mode in ["v1", "hello-no-features", "binary"] {
                let (docs, query) = (&docs, &query);
                let (expect_solutions, expect_answers, expect_consistent) =
                    (&expect_solutions, &expect_answers, &expect_consistent);
                let addr = addr.to_string();
                scope.spawn(move || {
                    let mut client = if mode == "v1" {
                        Client::connect_unix(sock).unwrap()
                    } else {
                        Client::connect_tcp(&addr).unwrap()
                    };
                    match mode {
                        "v1" => {}
                        "hello-no-features" => {
                            assert_eq!(client.negotiate(0).unwrap(), 0);
                            assert_eq!(client.codec(), xdx_server::Codec::Text);
                        }
                        _ => {
                            client.use_binary().unwrap();
                            assert_eq!(client.codec(), xdx_server::Codec::Binary);
                        }
                    }
                    for _ in 0..3 {
                        assert_eq!(&client.check_consistency(docs).unwrap(), expect_consistent);
                        let solutions = client.canonical_solution_texts(docs).unwrap();
                        for (got, want) in solutions.iter().zip(expect_solutions) {
                            // The canonical *text* of the solution must be
                            // identical whichever codec carried it.
                            assert_eq!(got.as_ref().unwrap(), want, "mode {mode}");
                        }
                        let answers = client.certain_answers(query, docs).unwrap();
                        for (got, want) in answers.iter().zip(expect_answers) {
                            assert_eq!(got.as_ref().unwrap(), want, "mode {mode}");
                        }
                    }
                });
            }
        });
    });
}

#[test]
fn negotiating_features_twice_keeps_responses_well_formed() {
    // Hello is idempotent and re-negotiable: a connection can switch codecs
    // mid-stream and every response decodes under the codec that was active
    // when its request was sent.
    let setting = books_to_writers_setting();
    let docs = sources(3);
    with_server(&setting, ServerConfig::default(), |_, sock| {
        let mut client = Client::connect_unix(sock).unwrap();
        let before = client.canonical_solution_texts(&docs).unwrap();
        client.use_binary().unwrap();
        let binary = client.canonical_solution_texts(&docs).unwrap();
        assert_eq!(client.negotiate(0).unwrap(), 0);
        assert_eq!(client.codec(), xdx_server::Codec::Text);
        let after = client.canonical_solution_texts(&docs).unwrap();
        for ((b, m), a) in before.iter().zip(&binary).zip(&after) {
            assert_eq!(b.as_ref().unwrap(), m.as_ref().unwrap());
            assert_eq!(b.as_ref().unwrap(), a.as_ref().unwrap());
        }
    });
}

#[test]
fn large_responses_stream_in_segments_without_stalling_other_connections() {
    // With a deliberately tiny chunk limit, a response much larger than one
    // chunk must arrive as ≥ 2 `STATUS_OK_PARTIAL` + final frames on a
    // chunk-negotiated connection — while a second connection keeps getting
    // answers between the chunks (nothing is head-of-line blocked), and a
    // v1 connection still receives single whole frames.
    let setting = books_to_writers_setting();
    let big = sources(40).pop().unwrap(); // ~30 KB of response text
    let config = ServerConfig {
        workers: 1,
        chunk_bytes: 1024,
        ..ServerConfig::default()
    };
    with_server(&setting, config, |addr, sock| {
        let engine = BatchEngine::new(&setting).parallelism(1);
        let expect = tree_to_text(
            &engine.canonical_solutions_batch(std::slice::from_ref(&big))[0]
                .as_ref()
                .unwrap()
                .clone(),
        );

        let mut chunked = Client::connect_tcp(&addr.to_string()).unwrap();
        chunked.use_binary().unwrap();
        let mut other = Client::connect_unix(sock).unwrap();

        // Kick off the big request, then keep the other connection busy
        // while the stream is (potentially) still in flight.
        let id = chunked
            .send(RequestBody::CanonicalSolution {
                docs: vec![xdx_server::WireDoc::from_tree(&big, chunked.codec())],
            })
            .unwrap();
        for _ in 0..5 {
            other.ping().unwrap();
        }
        assert_eq!(
            other.check_consistency(std::slice::from_ref(&big)).unwrap(),
            vec![true]
        );

        let resp = chunked.recv().unwrap();
        assert_eq!(resp.id, id);
        let ResponseBody::Solutions(results) = resp.body else {
            panic!("expected Solutions, got {:?}", resp.body);
        };
        let solution = results[0].as_ref().unwrap().to_tree().unwrap();
        assert_eq!(tree_to_text(&solution), expect);
        assert!(
            chunked.last_response_chunk_count() >= 2,
            "a response far larger than chunk_bytes=1024 must stream in ≥2 segments, got {}",
            chunked.last_response_chunk_count()
        );

        // The v1 connection, on the same server, still gets whole frames.
        let texts = other
            .canonical_solution_texts(std::slice::from_ref(&big))
            .unwrap();
        assert_eq!(texts[0].as_ref().unwrap(), &expect);
        assert_eq!(other.last_response_chunk_count(), 1);
    });
}

#[test]
fn client_timeouts_surface_stalls_instead_of_hanging() {
    let setting = books_to_writers_setting();
    with_server(&setting, ServerConfig::default(), |_, sock| {
        let mut client = Client::connect_unix(sock).unwrap();
        client
            .set_timeout(Some(std::time::Duration::from_millis(100)))
            .unwrap();
        // Nothing was requested, so nothing will arrive: recv must return
        // a timeout error instead of blocking forever.
        let start = std::time::Instant::now();
        match client.recv() {
            Err(ClientError::Io(e)) => assert!(
                matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ),
                "unexpected error kind {:?}",
                e.kind()
            ),
            other => panic!("expected an i/o timeout, got {other:?}"),
        }
        assert!(start.elapsed() < std::time::Duration::from_secs(5));
        // The connection is still usable afterwards (no bytes were lost).
        client.ping().unwrap();
        client.set_timeout(None).unwrap();
        client.ping().unwrap();
    });
}

// ---------------------------------------------------------------------------
// Resident document store (PutDoc/GetDoc/EditDoc/DeleteDoc + stored queries)
// ---------------------------------------------------------------------------

/// A server config mounting the resident store in a fresh directory.
fn store_config(dir: &Path) -> ServerConfig {
    ServerConfig {
        store_dir: Some(dir.join("store")),
        ..ServerConfig::default()
    }
}

#[test]
fn config_validation_rejects_degenerate_limits() {
    use xdx_server::ConfigError;
    assert!(ServerConfig::default().validate().is_ok());

    let zero_chunk = ServerConfig {
        chunk_bytes: 0,
        ..ServerConfig::default()
    };
    assert!(matches!(
        zero_chunk.validate(),
        Err(ConfigError::Zero {
            field: "chunk_bytes"
        })
    ));

    let zero_inflight = ServerConfig {
        max_inflight_total: 0,
        ..ServerConfig::default()
    };
    assert!(matches!(
        zero_inflight.validate(),
        Err(ConfigError::Zero {
            field: "max_inflight_total"
        })
    ));

    let absurd = ServerConfig {
        chunk_bytes: usize::MAX,
        ..ServerConfig::default()
    };
    assert!(matches!(
        absurd.validate(),
        Err(ConfigError::TooLarge {
            field: "chunk_bytes",
            ..
        })
    ));

    // `workers: 0` means "auto" and must stay accepted.
    let auto_workers = ServerConfig {
        workers: 0,
        ..ServerConfig::default()
    };
    assert!(auto_workers.validate().is_ok());

    // A store mount with room for zero documents is a configuration bug...
    let full_store = ServerConfig {
        store_dir: Some(std::env::temp_dir().join("unused")),
        max_resident_docs: 0,
        ..ServerConfig::default()
    };
    assert!(matches!(
        full_store.validate(),
        Err(ConfigError::Zero {
            field: "max_resident_docs"
        })
    ));
    // ...but without a store the knob is dormant and irrelevant.
    let no_store = ServerConfig {
        store_dir: None,
        max_resident_docs: 0,
        ..ServerConfig::default()
    };
    assert!(no_store.validate().is_ok());

    // Same for the checkpoint threshold: zero would checkpoint after every
    // mutation — a typo, not a policy — but only matters with a store.
    let zero_checkpoint = ServerConfig {
        store_dir: Some(std::env::temp_dir().join("unused")),
        wal_checkpoint_bytes: 0,
        ..ServerConfig::default()
    };
    assert!(matches!(
        zero_checkpoint.validate(),
        Err(ConfigError::Zero {
            field: "wal_checkpoint_bytes"
        })
    ));
    let no_store_zero_checkpoint = ServerConfig {
        store_dir: None,
        wal_checkpoint_bytes: 0,
        ..ServerConfig::default()
    };
    assert!(no_store_zero_checkpoint.validate().is_ok());

    // `Server::bind` enforces validation and surfaces the message.
    let setting = books_to_writers_setting();
    let err = match Server::bind(&setting, Some("127.0.0.1:0"), None, zero_chunk) {
        Err(e) => e,
        Ok(_) => panic!("bind must reject an invalid config"),
    };
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    assert!(err.to_string().contains("chunk_bytes"), "{err}");
}

#[test]
fn store_ops_are_rejected_when_no_store_is_mounted() {
    let setting = books_to_writers_setting();
    with_server(&setting, ServerConfig::default(), |_, sock| {
        let mut client = Client::connect_unix(sock).unwrap();
        let doc = sources(1).pop().unwrap();
        match client.put_doc(1, &doc) {
            Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::StoreDisabled),
            other => panic!("expected StoreDisabled, got {other:?}"),
        }
        match client.check_consistency_stored(1) {
            Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::StoreDisabled),
            other => panic!("expected StoreDisabled, got {other:?}"),
        }
        client.ping().expect("connection survives store errors");
    });
}

#[test]
fn store_crud_versions_and_errors_round_trip() {
    use xml_data_exchange::store::DocEdit;
    let setting = books_to_writers_setting();
    let dir = std::env::temp_dir().join(format!(
        "xdx-server-store-crud-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::SeqCst)
    ));
    let config = store_config(&dir);
    with_server(&setting, config, |addr, _| {
        let mut client = Client::connect_tcp(&addr.to_string()).unwrap();
        let doc = sources(3).pop().unwrap();

        assert_eq!(client.put_doc(7, &doc).unwrap(), 1);
        let (got, version) = client.get_doc(7).unwrap();
        assert_eq!(tree_to_text(&got), tree_to_text(&doc));
        assert_eq!(version, 1);

        // Compare-and-swap: a stale base version is rejected...
        let edit = vec![DocEdit::SetAttr {
            node: 1,
            name: "@title".into(),
            value: "Edited".into(),
        }];
        match client.edit_doc(7, 99, &edit) {
            Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::VersionConflict),
            other => panic!("expected VersionConflict, got {other:?}"),
        }
        // ...the current one is accepted and bumps the version.
        assert_eq!(client.edit_doc(7, 1, &edit).unwrap(), 2);
        let (edited, version) = client.get_doc(7).unwrap();
        assert_eq!(version, 2);
        assert!(tree_to_text(&edited).contains("@title=\"Edited\""));

        // A malformed edit fails the whole batch and changes nothing.
        match client.edit_doc(7, 0, &[DocEdit::RemoveChild { parent: 999, at: 0 }]) {
            Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::BadEdit),
            other => panic!("expected BadEdit, got {other:?}"),
        }
        assert_eq!(client.get_doc(7).unwrap().1, 2, "failed edits do not bump");

        client.delete_doc(7).unwrap();
        match client.get_doc(7) {
            Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::UnknownDoc),
            other => panic!("expected UnknownDoc, got {other:?}"),
        }

        // Leave a document behind for the restart check below. Versions
        // come from the store-wide sequence (put 7, edit 7, delete 7 came
        // before), so this is strictly above every version document 7 had —
        // never reused, which is what makes the CAS above ABA-proof.
        assert_eq!(client.put_doc(8, &doc).unwrap(), 4);
    });
    // A clean shutdown checkpointed; a new server over the same directory
    // serves the surviving document at its exact version.
    with_server(&setting, store_config(&dir), |addr, _| {
        let mut client = Client::connect_tcp(&addr.to_string()).unwrap();
        let (restored, version) = client.get_doc(8).unwrap();
        assert_eq!(
            tree_to_text(&restored),
            tree_to_text(&sources(3).pop().unwrap())
        );
        assert_eq!(version, 4);
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_running_server_checkpoints_once_the_wal_outgrows_the_threshold() {
    use xml_data_exchange::store::DocEdit;
    let setting = books_to_writers_setting();
    let dir = std::env::temp_dir().join(format!(
        "xdx-server-store-ckpt-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::SeqCst)
    ));
    let store_dir = dir.join("store");
    let config = ServerConfig {
        store_dir: Some(store_dir.clone()),
        wal_checkpoint_bytes: 512,
        ..ServerConfig::default()
    };
    with_server(&setting, config, |addr, _| {
        let mut client = Client::connect_tcp(&addr.to_string()).unwrap();
        let doc = sources(1).pop().unwrap();
        client.put_doc(1, &doc).unwrap();
        let wal = store_dir.join("wal.log");
        let mut checkpointed = false;
        for i in 0..64u32 {
            client
                .edit_doc(
                    1,
                    0,
                    &[DocEdit::SetAttr {
                        node: 0,
                        name: "@rev".into(),
                        value: format!("{i}").into(),
                    }],
                )
                .unwrap();
            // The mutating worker checkpoints under the store lock before
            // its response is serialized, so the length observed after each
            // acknowledged edit is post-decision: at most the threshold
            // plus the record that crossed it — never unbounded growth.
            let len = std::fs::metadata(&wal).map(|m| m.len()).unwrap_or(0);
            assert!(len <= 512 + 256, "WAL outgrew the threshold: {len} bytes");
            if store_dir.join("snapshot.bin").exists() {
                checkpointed = true;
            }
        }
        assert!(checkpointed, "no mid-run checkpoint happened");
        // The document survived the churn (and a snapshot + short-WAL
        // restart serves it identically — covered by the restart test).
        let (tree, _) = client.get_doc(1).unwrap();
        assert!(tree_to_text(&tree).contains("@rev=\"63\""));
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stored_queries_match_ship_the_document_ops_byte_for_byte() {
    use xml_data_exchange::store::DocEdit;
    let setting = books_to_writers_setting();
    let docs = sources(4);
    let query = title_query();
    let dir = std::env::temp_dir().join(format!(
        "xdx-server-store-parity-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::SeqCst)
    ));
    with_server(&setting, store_config(&dir), |addr, sock| {
        std::thread::scope(|scope| {
            for (i, doc) in docs.iter().enumerate() {
                let query = query.clone();
                scope.spawn(move || {
                    // Half the clients negotiate the binary codec so parity
                    // holds under both serializations.
                    let mut client = if i % 2 == 0 {
                        Client::connect_tcp(&addr.to_string()).unwrap()
                    } else {
                        let mut c = Client::connect_unix(sock).unwrap();
                        c.use_binary().unwrap();
                        c
                    };
                    let doc_id = i as u64;
                    client.put_doc(doc_id, doc).unwrap();
                    // Two rounds: the first computes, the second must be
                    // served from the answer cache — identical either way.
                    for _ in 0..2 {
                        let ship = client.check_consistency(std::slice::from_ref(doc)).unwrap();
                        assert_eq!(client.check_consistency_stored(doc_id).unwrap(), ship[0]);

                        let ship = client
                            .canonical_solution_docs(std::slice::from_ref(doc))
                            .unwrap();
                        let stored = client.canonical_solution_stored(doc_id).unwrap();
                        assert_eq!(stored, ship[0], "solution payloads must be identical");

                        let ship = client
                            .certain_answers(&query, std::slice::from_ref(doc))
                            .unwrap();
                        let stored = client.certain_answers_stored(&query, doc_id).unwrap();
                        assert_eq!(
                            stored.as_ref().unwrap(),
                            ship[0].as_ref().unwrap(),
                            "answer tuples must be identical"
                        );

                        let ship = client
                            .certain_answers_boolean(&query, std::slice::from_ref(doc))
                            .unwrap();
                        let stored = client
                            .certain_answers_boolean_stored(&query, doc_id)
                            .unwrap();
                        assert_eq!(stored.unwrap(), ship[0].as_ref().copied().unwrap());
                    }

                    // An edit invalidates the cache: stored answers must now
                    // match ship-the-document answers for the *edited* tree.
                    client
                        .edit_doc(
                            doc_id,
                            0,
                            &[DocEdit::SetAttr {
                                node: 1,
                                name: "@title".into(),
                                value: format!("Edited{i}").into(),
                            }],
                        )
                        .unwrap();
                    let (edited, _) = client.get_doc(doc_id).unwrap();
                    let ship = client
                        .canonical_solution_docs(std::slice::from_ref(&edited))
                        .unwrap();
                    let stored = client.canonical_solution_stored(doc_id).unwrap();
                    assert_eq!(stored, ship[0], "the cache must not serve pre-edit bytes");
                    let ship = client
                        .certain_answers(&query, std::slice::from_ref(&edited))
                        .unwrap();
                    let stored = client.certain_answers_stored(&query, doc_id).unwrap();
                    assert_eq!(stored.as_ref().unwrap(), ship[0].as_ref().unwrap());
                });
            }
        });
        // A malformed stored query fails exactly like the ship-the-document
        // op: same code, before any cache interaction.
        let mut client = Client::connect_tcp(&addr.to_string()).unwrap();
        let id = client
            .send(RequestBody::CertainAnswersStored {
                query: "($x) :-".into(),
                doc_id: 0,
            })
            .unwrap();
        let resp = client.recv().unwrap();
        assert_eq!(resp.id, id);
        match resp.body {
            ResponseBody::Error(e) => assert_eq!(e.code, ErrorCode::QuerySyntax),
            other => panic!("expected an error frame, got {other:?}"),
        }
        // Stored queries against an unknown document are structured errors.
        match client.check_consistency_stored(999) {
            Err(ClientError::Remote(e)) => assert_eq!(e.code, ErrorCode::UnknownDoc),
            other => panic!("expected UnknownDoc, got {other:?}"),
        }
    });
    let _ = std::fs::remove_dir_all(&dir);
}

/// Acceptance: the Stats-v2 phase histograms account for (nearly) all of a
/// measured request's wall time. Every nanosecond between frame decode on
/// the event loop and the response's last byte leaving the socket is
/// charged to *some* phase, so the per-phase sums must cover at least 90%
/// of the total-histogram sum for the same `(op, setting)` key.
#[test]
fn stats_v2_phase_histograms_cover_request_wall_time() {
    let setting = books_to_writers_setting();
    with_server(&setting, ServerConfig::default(), |addr, _sock| {
        let mut client = Client::connect_tcp(&addr.to_string()).unwrap();
        let accepted = client.negotiate(xdx_server::FEATURE_STATS_V2).unwrap();
        assert_ne!(
            accepted & xdx_server::FEATURE_STATS_V2,
            0,
            "server must accept FEATURE_STATS_V2"
        );
        let docs = sources(4);
        let requests = 8u64;
        for _ in 0..requests {
            client.canonical_solution_texts(&docs).unwrap();
        }
        let stats = client.stats().unwrap();
        let total = stats
            .histogram("req.solution.s0.total")
            .expect("total histogram for the measured op");
        assert_eq!(total.count, requests, "one total record per request");
        let phase_sum: u64 = stats
            .histograms
            .iter()
            .filter(|h| h.name.starts_with("req.solution.s0.") && !h.name.ends_with(".total"))
            .map(|h| h.sum)
            .sum();
        assert!(
            phase_sum as f64 >= 0.9 * total.sum as f64,
            "phase sums ({phase_sum}ns) must cover >= 90% of wall time ({}ns)",
            total.sum
        );
        // The v4 counters ride along unchanged, via the typed accessor.
        assert!(stats.counter("server.accepted_conns").unwrap() >= 1);
        assert_eq!(stats.counter("server.slow_requests"), Some(0));
        // A plain-v4 connection to the same server sees no histogram rows.
        let mut plain = Client::connect_tcp(&addr.to_string()).unwrap();
        let v4 = plain.stats().unwrap();
        assert!(
            v4.histograms.is_empty(),
            "histograms must not leak to non-negotiated connections"
        );
        assert!(!v4.counters.is_empty());
    });
}
