//! Differential proptest harness for the join-ordered pattern evaluator.
//!
//! Random DTD-conforming trees (and mutated, non-conforming variants with
//! undeclared labels and null attribute values) × random tree patterns,
//! asserting that every planned evaluation path produces exactly the match
//! relation of the enumerate-then-merge oracle
//! (`eval::all_matches_reference`):
//!
//! * `PatternPlan::new` + `TreeIndex::new` (the DTD-interned path the
//!   compiled layer runs),
//! * `PatternPlan::without_dtd` + `TreeIndex::without_dtd` (string-compare
//!   fallback),
//! * the public `eval::all_matches` entry point,
//! * `QueryPlan` joins vs a hand-rolled reference join.
//!
//! Sampling is deterministic (the proptest shim derives its seed from the
//! test name), so CI runs are reproducible; `PROPTEST_CASES` scales the
//! sweep (the scheduled deep job runs with `PROPTEST_CASES=2048`). The
//! default case counts below sum to > 1000 generated `(tree, pattern)`
//! cases per run.

use proptest::prelude::*;
use std::collections::BTreeSet;
use xml_data_exchange::patterns::eval::{all_matches, all_matches_reference, merge_assignments};
use xml_data_exchange::patterns::plan::{PatternPlan, QueryPlan, TreeIndex};
use xml_data_exchange::patterns::{
    Assignment, AttrFormula, ConjunctiveTreeQuery, TreePattern, UnionQuery, Var,
};
use xml_data_exchange::xmltree::{NodeId, NullGen, Value};
use xml_data_exchange::{Dtd, XmlTree};

/// The number of cases for one property: the env override when set
/// (`PROPTEST_CASES=2048` in the deep-sweep CI job), `default` otherwise.
fn cases(default: u32) -> u32 {
    ProptestConfig::env_cases().unwrap_or(default)
}

/// A fixed schema with recursion (`c → d*` under `a → (c|d)*`), optional
/// fields, and attributes on every non-root element.
fn harness_dtd() -> Dtd {
    Dtd::builder("r")
        .rule("r", "a* b*")
        .rule("a", "(c|d)*")
        .rule("b", "c? d?")
        .rule("c", "d*")
        .rule("d", "eps")
        .attributes("a", ["@x"])
        .attributes("b", ["@x", "@y"])
        .attributes("c", ["@v"])
        .attributes("d", ["@v"])
        .build()
        .expect("well-formed harness DTD")
}

const VALUES: [&str; 4] = ["s0", "s1", "s2", "s3"];
const ATTRS_OF: [(&str, &[&str]); 5] = [
    ("r", &[]),
    ("a", &["@x"]),
    ("b", &["@x", "@y"]),
    ("c", &["@v"]),
    ("d", &["@v"]),
];

fn pick<'a, T>(rng: &mut TestRng, items: &'a [T]) -> &'a T {
    &items[rng.next_u64() as usize % items.len()]
}

fn fill_attrs(tree: &mut XmlTree, node: NodeId, rng: &mut TestRng) {
    let label = tree.label(node).as_str().to_string();
    let attrs = ATTRS_OF
        .iter()
        .find(|(l, _)| *l == label)
        .map(|(_, a)| *a)
        .unwrap_or(&[]);
    for attr in attrs {
        let value = *pick(rng, &VALUES);
        tree.set_attr(node, *attr, value);
    }
}

/// Add one child within the node budget, with its required attributes.
fn grow(
    tree: &mut XmlTree,
    parent: NodeId,
    label: &str,
    budget: &mut usize,
    rng: &mut TestRng,
) -> Option<NodeId> {
    if *budget == 0 {
        return None;
    }
    *budget -= 1;
    let node = tree.add_child(parent, label);
    fill_attrs(tree, node, rng);
    Some(node)
}

/// A random tree conforming (ordered) to [`harness_dtd`], with at most
/// `budget` nodes beyond the root.
fn random_conforming_tree(rng: &mut TestRng, mut budget: usize) -> XmlTree {
    let mut tree = XmlTree::new("r");
    let root = tree.root();
    // r → a* b* — children grouped so the ordered check also passes.
    let na = rng.next_u64() as usize % 4;
    let nb = rng.next_u64() as usize % 3;
    for _ in 0..na {
        let Some(a) = grow(&mut tree, root, "a", &mut budget, rng) else {
            break;
        };
        // a → (c|d)*
        for _ in 0..(rng.next_u64() as usize % 4) {
            let label = if rng.next_u64().is_multiple_of(2) {
                "c"
            } else {
                "d"
            };
            let Some(child) = grow(&mut tree, a, label, &mut budget, rng) else {
                break;
            };
            if label == "c" {
                // c → d*
                for _ in 0..(rng.next_u64() as usize % 3) {
                    if grow(&mut tree, child, "d", &mut budget, rng).is_none() {
                        break;
                    }
                }
            }
        }
    }
    for _ in 0..nb {
        let Some(b) = grow(&mut tree, root, "b", &mut budget, rng) else {
            break;
        };
        // b → c? d? (in rule order)
        if rng.next_u64().is_multiple_of(2) {
            if let Some(c) = grow(&mut tree, b, "c", &mut budget, rng) {
                for _ in 0..(rng.next_u64() as usize % 2) {
                    grow(&mut tree, c, "d", &mut budget, rng);
                }
            }
        }
        if rng.next_u64().is_multiple_of(2) {
            grow(&mut tree, b, "d", &mut budget, rng);
        }
    }
    tree
}

/// Mutate a conforming tree into a (usually) non-conforming one: undeclared
/// labels, missing attributes, null values, out-of-content-model children.
/// Pattern semantics never require `T ⊨ D`, so every evaluator must keep
/// agreeing on these trees — including the string fallback for labels the
/// DTD does not declare.
fn mutate_tree(tree: &mut XmlTree, rng: &mut TestRng) {
    let mut nulls = NullGen::new();
    let ops = 1 + rng.next_u64() as usize % 4;
    for _ in 0..ops {
        let nodes = tree.nodes();
        let node = *pick(rng, &nodes);
        match rng.next_u64() % 4 {
            0 => {
                // Undeclared label, carrying attributes patterns ask about.
                let label = if rng.next_u64().is_multiple_of(2) {
                    "z"
                } else {
                    "w"
                };
                let added = tree.add_child(node, label);
                tree.set_attr(added, "@x", *pick(rng, &VALUES));
                tree.set_attr(added, "@v", *pick(rng, &VALUES));
            }
            1 => {
                // Drop one attribute, if the node has any.
                if let Some(attr) = tree.attrs(node).keys().next().cloned() {
                    tree.remove_attr(node, &attr);
                }
            }
            2 => {
                // A null value: nulls bind like any other value.
                tree.set_attr(node, "@x", nulls.fresh_value());
            }
            _ => {
                // A declared label somewhere its content model forbids it.
                let label = *pick(rng, &["a", "b", "c", "d"]);
                let added = tree.add_child(node, label);
                fill_attrs(tree, added, rng);
            }
        }
    }
}

/// A random tree pattern over declared labels, undeclared labels, wildcards,
/// descendant steps, repeated variables and constants (hitting and missing).
fn random_pattern(rng: &mut TestRng, depth: usize) -> TreePattern {
    if depth > 0 && rng.next_u64().is_multiple_of(4) {
        return TreePattern::descendant(random_pattern(rng, depth - 1));
    }
    let labels = ["r", "a", "b", "c", "d", "z", "missing"];
    let mut attr = if rng.next_u64().is_multiple_of(5) {
        AttrFormula::wildcard()
    } else {
        AttrFormula::element(*pick(rng, &labels))
    };
    for _ in 0..(rng.next_u64() % 3) {
        let name = *pick(rng, &["@x", "@y", "@v", "@none"]);
        if rng.next_u64().is_multiple_of(3) {
            let value = if rng.next_u64().is_multiple_of(4) {
                "nohit"
            } else {
                *pick(rng, &VALUES)
            };
            attr = attr.bind_const(name, value);
        } else {
            attr = attr.bind_var(name, format!("v{}", rng.next_u64() % 4));
        }
    }
    let num_children = if depth == 0 {
        0
    } else {
        rng.next_u64() as usize % 3
    };
    let children = (0..num_children)
        .map(|_| random_pattern(rng, depth - 1))
        .collect();
    TreePattern::node(attr, children)
}

/// Every planned path must equal the oracle on `(tree, pattern)`.
fn assert_all_paths_agree(tree: &XmlTree, pattern: &TreePattern) -> Result<(), TestCaseError> {
    let dtd = harness_dtd();
    let mut oracle = all_matches_reference(tree, pattern);
    oracle.sort();

    let plan = PatternPlan::new(pattern, dtd.compiled());
    let index = TreeIndex::new(tree, dtd.compiled());
    let mut planned = plan.all_matches(tree, &index);
    planned.sort();
    prop_assert!(
        planned == oracle,
        "DTD-interned plan diverged on {} over a {}-node tree: {:?} vs {:?}",
        pattern,
        tree.size(),
        planned,
        oracle
    );

    let plan = PatternPlan::without_dtd(pattern);
    let index = TreeIndex::without_dtd(tree);
    let mut planned = plan.all_matches(tree, &index);
    planned.sort();
    prop_assert!(
        planned == oracle,
        "DTD-less plan diverged on {}: {:?} vs {:?}",
        pattern,
        planned,
        oracle
    );

    let mut public = all_matches(tree, pattern);
    public.sort();
    prop_assert!(
        public == oracle,
        "eval::all_matches diverged on {}: {:?} vs {:?}",
        pattern,
        public,
        oracle
    );
    Ok(())
}

/// Reference join of a conjunctive query, built only from oracle parts.
fn reference_join(tree: &XmlTree, query: &ConjunctiveTreeQuery) -> BTreeSet<Vec<Value>> {
    let mut assignments: Vec<Assignment> = vec![Assignment::new()];
    for pattern in query.patterns() {
        let relation = all_matches_reference(tree, pattern);
        let mut next: Vec<Assignment> = Vec::new();
        for a in &assignments {
            for b in &relation {
                if let Some(merged) = merge_assignments(a, b) {
                    if !next.contains(&merged) {
                        next.push(merged);
                    }
                }
            }
        }
        assignments = next;
        if assignments.is_empty() {
            return BTreeSet::new();
        }
    }
    assignments
        .into_iter()
        .map(|a| {
            query
                .head()
                .iter()
                .map(|v| a.get(v).cloned().expect("head variable bound"))
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(448)))]

    /// Conforming trees: the planned evaluator (all three paths) is the
    /// oracle's equal on every generated `(tree, pattern)` case.
    #[test]
    fn planned_equals_reference_on_conforming_trees(
        seed in 0u64..u64::MAX,
        budget in 4usize..28,
        depth in 0usize..4,
    ) {
        let mut rng = TestRng::new(seed);
        let tree = random_conforming_tree(&mut rng, budget);
        let pattern = random_pattern(&mut rng, depth);
        assert_all_paths_agree(&tree, &pattern)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(448)))]

    /// Non-conforming trees — undeclared labels, missing attributes, nulls,
    /// broken content models. Undeclared pattern labels must keep the
    /// string-comparison fallback semantics.
    #[test]
    fn planned_equals_reference_on_mutated_trees(
        seed in 0u64..u64::MAX,
        budget in 0usize..24,
        depth in 0usize..4,
    ) {
        let mut rng = TestRng::new(seed);
        let mut tree = random_conforming_tree(&mut rng, budget);
        mutate_tree(&mut tree, &mut rng);
        let pattern = random_pattern(&mut rng, depth);
        assert_all_paths_agree(&tree, &pattern)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(192)))]

    /// Query plans: DTD-interned and DTD-less joins both equal a reference
    /// join assembled from oracle relations only.
    #[test]
    fn query_plans_equal_reference_join(
        seed in 0u64..u64::MAX,
        budget in 2usize..20,
    ) {
        let mut rng = TestRng::new(seed);
        let mut tree = random_conforming_tree(&mut rng, budget);
        if rng.next_u64().is_multiple_of(2) {
            mutate_tree(&mut tree, &mut rng);
        }
        let num_patterns = 1 + rng.next_u64() as usize % 2;
        let patterns: Vec<TreePattern> =
            (0..num_patterns).map(|_| random_pattern(&mut rng, 2)).collect();
        let mut body_vars: Vec<Var> = Vec::new();
        for p in &patterns {
            body_vars.extend(p.free_vars());
        }
        body_vars.sort();
        body_vars.dedup();
        let head: Vec<Var> = body_vars
            .into_iter()
            .filter(|_| rng.next_u64().is_multiple_of(2))
            .collect();
        let query = ConjunctiveTreeQuery::new(head, patterns).expect("head from body vars");
        let expected = reference_join(&tree, &query);
        let union = UnionQuery::single(query);

        let dtd = harness_dtd();
        let planned = QueryPlan::new(&union, dtd.compiled())
            .evaluate(&tree, &TreeIndex::new(&tree, dtd.compiled()));
        prop_assert!(
            planned == expected,
            "DTD-interned query plan diverged on {}",
            union
        );
        let dtdless =
            QueryPlan::without_dtd(&union).evaluate(&tree, &TreeIndex::without_dtd(&tree));
        prop_assert!(
            dtdless == expected,
            "DTD-less query plan diverged on {}",
            union
        );
    }
}
