//! Proptests for the setting text syntax (`xdx_core::settext`): generated
//! settings round-trip through `setting_to_text` exactly, and hostile
//! inputs — truncations of valid text, random garbage, and regex/pattern
//! depth bombs — always come back as structured [`SettingTextError`]s,
//! never panics or runaway work. Sampling is deterministic per test (the
//! proptest shim derives the seed from the test name) and scales with
//! `PROPTEST_CASES`.

use proptest::prelude::*;
use xml_data_exchange::core::settext::{parse_setting, setting_to_text, MAX_SETTING_TEXT_BYTES};
use xml_data_exchange::core::setting::books_to_writers_setting;

fn cases(default: u32) -> u32 {
    ProptestConfig::env_cases().unwrap_or(default)
}

/// A random *valid* setting text: two-level DTDs (a root over a handful of
/// leaf children, each `eps`), random content-model shapes over the
/// declared children, random attribute declarations, and zero or more
/// no-variable or one-variable STDs over declared elements.
fn random_setting_text(rng: &mut TestRng) -> String {
    let n_src = 1 + (rng.next_u64() % 3) as usize;
    let n_tgt = 1 + (rng.next_u64() % 3) as usize;
    let mut text = String::new();
    for (which, root, prefix, n) in [("source", "s", "c", n_src), ("target", "t", "d", n_tgt)] {
        text.push_str(&format!("{which} {{ root {root}; "));
        // The root's content model: one random shape over the children.
        let children: Vec<String> = (0..n).map(|i| format!("{prefix}{i}")).collect();
        let model = match rng.next_u64() % 4 {
            0 => children.join(" "),
            1 => format!("({})*", children.join("|")),
            2 => children
                .iter()
                .map(|c| format!("{c}*"))
                .collect::<Vec<_>>()
                .join(" "),
            _ => children
                .iter()
                .map(|c| format!("{c}?"))
                .collect::<Vec<_>>()
                .join(" "),
        };
        text.push_str(&format!("rule {root} = {model}; "));
        for c in &children {
            text.push_str(&format!("rule {c} = eps; "));
            if rng.next_u64().is_multiple_of(2) {
                text.push_str(&format!("attrs {c} = @a, @b; "));
            }
        }
        text.push_str("} ");
    }
    // STDs over the declared roots/children; attribute patterns only on
    // elements that declared attrs (every generated attrs line is @a, @b).
    for _ in 0..rng.next_u64() % 3 {
        let sc = format!("c{}", rng.next_u64() as usize % n_src);
        let tc = format!("d{}", rng.next_u64() as usize % n_tgt);
        let src_has_attrs = text.contains(&format!("attrs {sc} ="));
        let tgt_has_attrs = text.contains(&format!("attrs {tc} ="));
        if src_has_attrs && tgt_has_attrs && rng.next_u64().is_multiple_of(2) {
            text.push_str(&format!("std t[{tc}(@a=$x)] :- s[{sc}(@a=$x)]; "));
        } else {
            text.push_str(&format!("std t[{tc}] :- s[{sc}]; "));
        }
    }
    text
}

#[test]
fn the_paper_example_round_trips_exactly() {
    let setting = books_to_writers_setting();
    let text = setting_to_text(&setting);
    let back = parse_setting(&text).expect("canonical text parses");
    assert_eq!(setting_to_text(&back), text);
}

#[test]
fn depth_bombs_fail_structurally() {
    // A content model nested past the relang depth cap.
    let bomb = format!(
        "source {{ root r; rule r = {}a{}; }} target {{ root t; rule t = eps; }}",
        "(".repeat(5000),
        ")".repeat(5000)
    );
    let err = parse_setting(&bomb).expect_err("regex bomb rejected");
    assert!(err.position > 0);

    // An STD pattern nested past the pattern depth cap.
    let bomb = format!(
        "source {{ root s; rule s = eps; }} target {{ root t; rule t = eps; }} std {}t{} :- s;",
        "t[".repeat(5000),
        "]".repeat(5000)
    );
    parse_setting(&bomb).expect_err("pattern bomb rejected");

    // Input over the hard byte cap is rejected before any parsing work.
    let big = "x".repeat(MAX_SETTING_TEXT_BYTES + 1);
    let err = parse_setting(&big).expect_err("oversized input rejected");
    assert!(err.message.contains("exceeds"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(64)))]

    #[test]
    fn generated_settings_round_trip_through_their_canonical_text(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::new(seed);
        let text = random_setting_text(&mut rng);
        let setting = match parse_setting(&text) {
            Ok(s) => s,
            Err(e) => return Err(TestCaseError::Fail(format!(
                "generated setting must parse: {e}\n{text}"
            ))),
        };
        let canonical = setting_to_text(&setting);
        let back = parse_setting(&canonical).map_err(|e| TestCaseError::Fail(format!(
            "canonical text must re-parse: {e}\n{canonical}"
        )))?;
        // `DataExchangeSetting` has no structural equality; the canonical
        // text being a fixed point is the round-trip property.
        prop_assert_eq!(setting_to_text(&back), canonical);
    }

    #[test]
    fn truncations_of_valid_settings_never_panic(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::new(seed);
        let text = random_setting_text(&mut rng);
        let cut = (rng.next_u64() as usize) % (text.len() + 1);
        if let Some(prefix) = text.get(..cut) {
            let _ = parse_setting(prefix);
        }
        // Flip one byte (when it stays valid UTF-8).
        let mut bytes = text.clone().into_bytes();
        if !bytes.is_empty() {
            let at = (rng.next_u64() as usize) % bytes.len();
            bytes[at] ^= 1 << (rng.next_u64() % 8);
            if let Ok(corrupted) = String::from_utf8(bytes) {
                let _ = parse_setting(&corrupted);
            }
        }
    }

    #[test]
    fn garbage_never_panics(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::new(seed);
        const PIECES: [&str; 10] = [
            "source", "target", "std", "{", "}", ";", "rule r =", "attrs",
            "(((", "\"un;closed",
        ];
        let mut text = String::new();
        for _ in 0..rng.next_u64() % 24 {
            text.push_str(PIECES[rng.next_u64() as usize % PIECES.len()]);
            text.push(' ');
        }
        let _ = parse_setting(&text);
    }
}
