//! Crash-recovery and incremental re-validation tests for `xdx-store`.
//!
//! * **Kill-at-any-point WAL recovery** — exhaustively cut the log at every
//!   byte boundary (with and without a snapshot underneath) and assert the
//!   reopened store holds exactly the state after the operations whose
//!   records survived the cut: recovery is *prefix-consistent*, never a
//!   torn mixture.
//! * **Corruption fuzzing** — random byte flips, truncations and appended
//!   garbage never panic the loader, and the recovered state is still some
//!   operation prefix.
//! * **Randomized differentials** (the default case counts sum to > 500
//!   per run; the CI deep sweep scales them with `PROPTEST_CASES`) —
//!   after random edit batches, the store's `O(dirty)` conformance
//!   re-validation must equal a full re-scan of a re-parsed copy, and the
//!   dirty-seeded incremental chase must agree with `chase_reference` run
//!   from scratch on a re-parse.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use xml_data_exchange::core::setting::DataExchangeSetting;
use xml_data_exchange::core::solution::{chase_reference, SolutionError};
use xml_data_exchange::core::CompiledSetting;
use xml_data_exchange::store::{
    DocEdit, DocStore, StoreConfig, SyncPolicy, SNAPSHOT_FILE, WAL_FILE,
};
use xml_data_exchange::xmltree::{
    parse_tree, tree_to_text, AttrName, ElementType, NodeId, NullGen, Value,
};
use xml_data_exchange::XmlTree;

static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "xdx-store-test-{tag}-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(dir: &Path) -> StoreConfig {
    StoreConfig {
        sync: SyncPolicy::Never,
        ..StoreConfig::new(dir)
    }
}

/// The full observable document state: id → (canonical text, version).
/// (`get` takes `&mut` because lazily loaded documents decode on access.)
fn state(store: &mut DocStore) -> BTreeMap<u64, (String, u64)> {
    let ids: Vec<xdx_store::DocKey> = store.doc_ids().collect();
    ids.into_iter()
        .map(|key| {
            let (tree, version) = store.get(key).unwrap();
            (key.doc, (tree_to_text(tree), version))
        })
        .collect()
}

fn doc(text: &str) -> XmlTree {
    parse_tree(text).unwrap()
}

fn set_attr(node: u32, name: &str, value: &str) -> DocEdit {
    DocEdit::SetAttr {
        node,
        name: AttrName::new(name),
        value: Value::constant(value),
    }
}

/// A scripted mutation against a running store, applied through the public
/// API so each one appends exactly one WAL record.
enum Op {
    Put(u64, &'static str),
    Edit(u64, Vec<DocEdit>),
    Delete(u64),
}

fn apply(store: &mut DocStore, op: &Op) {
    match op {
        Op::Put(id, text) => {
            store.put(*id, doc(text)).unwrap();
        }
        Op::Edit(id, edits) => {
            store.edit(*id, 0, edits).unwrap();
        }
        Op::Delete(id) => store.delete(*id).unwrap(),
    }
}

/// A recovery boundary: the WAL byte offset after an op, and the full
/// store state at that point.
type Boundary = (u64, BTreeMap<u64, (String, u64)>);

/// Run `ops` in `dir`, recording the (wal byte offset, state) boundary
/// after each one — including the initial boundary before any op.
fn run_script(dir: &Path, ops: &[Op]) -> Vec<Boundary> {
    let mut store: DocStore = DocStore::open(config(dir)).unwrap();
    let mut boundaries = vec![(store.wal_len(), state(&mut store))];
    for op in ops {
        apply(&mut store, op);
        boundaries.push((store.wal_len(), state(&mut store)));
    }
    store.sync().unwrap();
    boundaries
}

/// Kill-at-any-point: for every prefix of the WAL in `dir`, a fresh store
/// opened over that prefix (plus whatever snapshot `dir` holds) must land
/// exactly on the last operation boundary at or before the cut.
fn assert_prefix_consistent_recovery(dir: &Path, boundaries: &[Boundary]) {
    let wal_bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
    let snap_bytes = std::fs::read(dir.join(SNAPSHOT_FILE)).ok();
    for cut in 0..=wal_bytes.len() {
        let crash = fresh_dir("crash");
        if let Some(snap) = &snap_bytes {
            std::fs::write(crash.join(SNAPSHOT_FILE), snap).unwrap();
        }
        std::fs::write(crash.join(WAL_FILE), &wal_bytes[..cut]).unwrap();
        let mut recovered: DocStore = DocStore::open(config(&crash)).unwrap();
        let expect = boundaries
            .iter()
            .rev()
            .find(|(boundary, _)| *boundary as usize <= cut)
            .map(|(_, s)| s)
            .expect("the pre-op boundary is at offset 0");
        assert_eq!(
            &state(&mut recovered),
            expect,
            "recovery from a {cut}-byte WAL prefix is not an op boundary"
        );
        drop(recovered);
        let _ = std::fs::remove_dir_all(&crash);
    }
}

fn script() -> Vec<Op> {
    vec![
        Op::Put(1, "db[book(@title=\"CO\")[author(@name=\"P\")]]"),
        Op::Put(2, "db[book(@title=\"TCS\")]"),
        Op::Edit(1, vec![set_attr(1, "@title", "CO2")]),
        Op::Edit(
            1,
            vec![
                DocEdit::InsertChild {
                    parent: 0,
                    at: 1,
                    label: ElementType::new("book"),
                },
                set_attr(3, "@title", "New"),
            ],
        ),
        Op::Delete(2),
        Op::Put(2, "db[book(@title=\"Again\")]"),
        Op::Edit(2, vec![DocEdit::RemoveChild { parent: 0, at: 0 }]),
    ]
}

#[test]
fn wal_recovery_is_prefix_consistent_at_every_byte() {
    let dir = fresh_dir("kill");
    let boundaries = run_script(&dir, &script());
    assert_prefix_consistent_recovery(&dir, &boundaries);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_recovery_over_a_snapshot_is_prefix_consistent_at_every_byte() {
    let dir = fresh_dir("kill-snap");
    // Establish a snapshot baseline, then a post-checkpoint WAL tail; a
    // crash replays the tail over the snapshot.
    {
        let mut store: DocStore = DocStore::open(config(&dir)).unwrap();
        for op in &script() {
            apply(&mut store, op);
        }
        store.checkpoint().unwrap();
        assert_eq!(store.wal_len(), 0, "checkpoint must reset the WAL");
    }
    let mut store: DocStore = DocStore::open(config(&dir)).unwrap();
    let mut boundaries = vec![(store.wal_len(), state(&mut store))];
    let tail = vec![
        Op::Edit(1, vec![set_attr(0, "@x", "post")]),
        Op::Put(3, "db[book(@title=\"Third\")]"),
        Op::Delete(1),
    ];
    for op in &tail {
        apply(&mut store, op);
        boundaries.push((store.wal_len(), state(&mut store)));
    }
    store.sync().unwrap();
    drop(store);
    assert_prefix_consistent_recovery(&dir, &boundaries);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The number of cases for one property: the env override when set,
/// `default` otherwise.
fn cases(default: u32) -> u32 {
    ProptestConfig::env_cases().unwrap_or(default)
}

fn pick<'a, T>(rng: &mut TestRng, items: &'a [T]) -> &'a T {
    &items[rng.next_u64() as usize % items.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(160)))]

    /// Any single corruption of the WAL — a flipped byte, a truncation, or
    /// appended garbage — must neither panic the loader nor produce a state
    /// that is not an operation prefix. (A flipped byte fails the record's
    /// checksum, so replay stops *at* the corrupted record; everything
    /// after it is discarded even if intact, which is exactly the
    /// prefix-consistency contract.)
    #[test]
    fn corrupted_wals_recover_to_an_op_prefix_without_panicking(
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = TestRng::new(seed);
        let dir = fresh_dir("fuzz");
        let boundaries = run_script(&dir, &script());
        let mut bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
        prop_assert!(!bytes.is_empty());
        match rng.next_u64() % 3 {
            0 => {
                let at = rng.next_u64() as usize % bytes.len();
                let mask = (rng.next_u64() % 255 + 1) as u8;
                bytes[at] ^= mask;
            }
            1 => {
                let cut = rng.next_u64() as usize % bytes.len();
                bytes.truncate(cut);
            }
            _ => {
                for _ in 0..rng.next_u64() % 40 + 1 {
                    bytes.push(rng.next_u64() as u8);
                }
            }
        }
        std::fs::write(dir.join(WAL_FILE), &bytes).unwrap();
        let mut recovered: DocStore = DocStore::open(config(&dir)).unwrap();
        let got = state(&mut recovered);
        prop_assert!(
            boundaries.iter().any(|(_, s)| *s == got),
            "recovered state is not an operation prefix: {got:?}"
        );
        drop(recovered);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------------
// Incremental re-validation differentials
// ---------------------------------------------------------------------------

/// The E13 chase setting: target `doc -> sec* meta?`, `sec -> title par*`,
/// attributes `sec@id`, `title@t`, `par@w` — the same fixture the chase
/// benches and `tests/chase_differential.rs` pin.
fn doc_setting() -> DataExchangeSetting {
    xdx_bench::chase_setting()
}

/// A random tree over the target alphabet (plus the undeclared label `z`
/// and the undeclared attribute `@x` at low probability), shaped to be
/// sometimes conforming, sometimes not.
fn random_doc_tree(rng: &mut TestRng, budget: usize) -> XmlTree {
    let mut tree = XmlTree::new("doc");
    let mut nodes = 1usize;
    while nodes < budget {
        let sec = tree.add_child(tree.root(), "sec");
        nodes += 1;
        if !rng.next_u64().is_multiple_of(4) {
            tree.set_attr(sec, "@id", format!("s{}", rng.next_u64() % 3));
        }
        for _ in 0..rng.next_u64() % 3 {
            if nodes >= budget {
                break;
            }
            let label = *pick(rng, &["title", "par", "par", "z"]);
            let child = tree.add_child(sec, label);
            nodes += 1;
            match label {
                "title" if !rng.next_u64().is_multiple_of(4) => {
                    tree.set_attr(child, "@t", *pick(rng, &["a", "b"]));
                }
                "par" if !rng.next_u64().is_multiple_of(4) => {
                    tree.set_attr(child, "@w", "w");
                }
                _ => {}
            }
        }
    }
    if rng.next_u64().is_multiple_of(2) {
        tree.add_child(tree.root(), "meta");
    }
    tree
}

/// One random edit batch against the current tree: ranks drawn from the
/// live preorder, labels/attributes mostly in-alphabet with occasional
/// off-model choices. Batches may be invalid (out-of-range position,
/// missing attribute) — the store must reject those atomically, which the
/// differential exercises for free.
fn random_edit_batch(rng: &mut TestRng, tree: &XmlTree) -> Vec<DocEdit> {
    let order: Vec<NodeId> = tree.preorder().collect();
    let n = order.len() as u64;
    let mut edits = Vec::new();
    for _ in 0..rng.next_u64() % 3 + 1 {
        let rank = (rng.next_u64() % n) as u32;
        let node = order[rank as usize];
        let edit = match rng.next_u64() % 5 {
            0 => {
                let label = match tree.label(node).as_str() {
                    "doc" => *pick(rng, &["sec", "meta", "z"]),
                    "sec" => *pick(rng, &["title", "par"]),
                    _ => *pick(rng, &["par", "z"]),
                };
                DocEdit::InsertChild {
                    parent: rank,
                    at: (rng.next_u64() % (tree.children(node).len() as u64 + 1)) as u32,
                    label: ElementType::new(label),
                }
            }
            1 => DocEdit::RemoveChild {
                parent: rank,
                // Sometimes out of range on leaves: a rejected batch.
                at: (rng.next_u64() % (tree.children(node).len() as u64 + 1)) as u32,
            },
            2 | 3 => {
                let name = *pick(rng, &["@id", "@t", "@w", "@x"]);
                set_attr(rank, name, &format!("c{}", rng.next_u64() % 3))
            }
            _ => DocEdit::RemoveAttr {
                node: rank,
                name: AttrName::new(*pick(rng, &["@id", "@t", "@w"])),
            },
        };
        edits.push(edit);
    }
    edits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(192)))]

    /// After every edit batch (applied or rejected), the store's
    /// incremental `validate` — which re-checks only the nodes dirtied
    /// since the last call — must return exactly what a full ordered
    /// conformance scan of a *re-parsed* copy returns.
    #[test]
    fn incremental_validation_equals_full_rescan_of_a_reparse(
        seed in 0u64..u64::MAX,
        budget in 2usize..20,
        rounds in 1usize..8,
    ) {
        let setting = doc_setting();
        let dtd = setting.target_dtd.clone();
        let mut rng = TestRng::new(seed);
        let dir = fresh_dir("validate-diff");
        let mut store: DocStore = DocStore::open(config(&dir)).unwrap();
        store.put(7, random_doc_tree(&mut rng, budget)).unwrap();
        for _ in 0..rounds {
            let batch = random_edit_batch(&mut rng, store.get(7).unwrap().0);
            let _ = store.edit(7, 0, &batch);
            let incremental = store.validate(7, dtd.compiled()).unwrap();
            let reparsed = parse_tree(&tree_to_text(store.get(7).unwrap().0)).unwrap();
            let full = dtd.compiled().conforms(&reparsed);
            prop_assert!(
                incremental == full,
                "incremental validate diverged from a full re-scan on {}",
                tree_to_text(store.get(7).unwrap().0)
            );
        }
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A random edit batch that stays inside the target alphabet: labels only
/// where a repair exists, attributes only where declared. The single
/// reachable chase failure is then `AttributeClash` (merging `title`s with
/// distinct constant `@t`s), so error *kinds* are assertable — the same
/// one-fault-family discipline `tests/chase_differential.rs` uses (with
/// several independent unrepairable faults, which one is reported is a
/// visit-order artefact).
fn random_in_alphabet_edit_batch(rng: &mut TestRng, tree: &XmlTree) -> Vec<DocEdit> {
    let order: Vec<NodeId> = tree.preorder().collect();
    let n = order.len() as u64;
    let mut edits = Vec::new();
    for _ in 0..rng.next_u64() % 3 + 1 {
        let rank = (rng.next_u64() % n) as u32;
        let node = order[rank as usize];
        let label = tree.label(node).as_str();
        let attr = match label {
            "sec" => Some("@id"),
            "title" => Some("@t"),
            "par" => Some("@w"),
            _ => None,
        };
        let kind = rng.next_u64() % 4;
        let edit = match kind {
            0 => {
                let child = match label {
                    "doc" => Some(*pick(rng, &["sec", "meta"])),
                    "sec" => Some(*pick(rng, &["title", "par"])),
                    _ => None,
                };
                child.map(|label| DocEdit::InsertChild {
                    parent: rank,
                    at: (rng.next_u64() % (tree.children(node).len() as u64 + 1)) as u32,
                    label: ElementType::new(label),
                })
            }
            1 => Some(DocEdit::RemoveChild {
                parent: rank,
                at: (rng.next_u64() % (tree.children(node).len() as u64 + 1)) as u32,
            }),
            2 => attr.map(|name| {
                let value = if rng.next_u64().is_multiple_of(2) {
                    "a"
                } else {
                    "b"
                };
                set_attr(rank, name, value)
            }),
            _ => attr.map(|name| DocEdit::RemoveAttr {
                node: rank,
                name: AttrName::new(name),
            }),
        };
        // Nodes with nothing legal for the drawn kind contribute no edit.
        edits.extend(edit);
    }
    edits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(192)))]

    /// Chase a tree clean, store it, apply random edit batches, then chase
    /// **only the store's accumulated dirty set** — the verdict and result
    /// must match `chase_reference` run from scratch on a re-parse of the
    /// edited document (equal trees up to sibling order and null renaming
    /// on success, equal error kinds on failure).
    #[test]
    fn incremental_chase_equals_reference_on_a_reparse(
        seed in 0u64..u64::MAX,
        budget in 2usize..20,
        rounds in 1usize..4,
    ) {
        let setting = doc_setting();
        let compiled = CompiledSetting::new(&setting);
        let mut rng = TestRng::new(seed);
        let mut tree = random_doc_tree(&mut rng, budget);
        let mut nulls = NullGen::new();
        if compiled.chase(&mut tree, &mut nulls).is_err() {
            // Unrepairable base (e.g. an off-model `z`): no clean baseline
            // to edit from — not this property's subject.
            return Ok(());
        }
        let dir = fresh_dir("chase-diff");
        let mut store: DocStore = DocStore::open(config(&dir)).unwrap();
        store.put(7, tree).unwrap();
        for _ in 0..rounds {
            let batch = random_in_alphabet_edit_batch(&mut rng, store.get(7).unwrap().0);
            let _ = store.edit(7, 0, &batch);
        }
        // `validate` was never called, so the dirty set covers every change
        // since the chase-clean baseline — the incremental contract.
        let dirty: Vec<NodeId> = store.dirty_nodes(7).unwrap().collect();
        let base = store.get(7).unwrap().0;

        let mut incremental_tree = base.clone();
        let mut incremental_nulls = NullGen::starting_at(1_000_000);
        let incremental = compiled
            .chase_incremental(&mut incremental_tree, &mut incremental_nulls, &dirty)
            .map(|()| incremental_tree);

        let mut reference_tree = parse_tree(&tree_to_text(base)).unwrap();
        let mut reference_nulls = NullGen::starting_at(1_000_000);
        let reference = chase_reference(&mut reference_tree, &setting, &mut reference_nulls)
            .map(|()| reference_tree);

        match (&incremental, &reference) {
            (Ok(i), Ok(r)) => {
                i.validate().expect("incremental chase corrupted the tree");
                prop_assert!(
                    i.unordered_eq(r),
                    "incremental chase diverged from the reference:\n{i}\nvs\n{r}"
                );
                prop_assert!(setting.target_dtd.conforms_unordered(i));
            }
            (Err(ie), Err(re)) => {
                let _: &SolutionError = ie;
                prop_assert!(
                    std::mem::discriminant(ie) == std::mem::discriminant(re),
                    "chase error kinds diverged: {ie:?} vs {re:?}"
                );
            }
            _ => prop_assert!(
                false,
                "chase verdicts diverged: {incremental:?} vs {reference:?}"
            ),
        }
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
