//! Exhaustive fault-injection matrix for `xdx-store`.
//!
//! For a fixed operation trace, a sizing run (with [`FaultPlan::count_only`])
//! counts every fallible VFS call the trace performs. The matrix then
//! re-runs the trace once per call site, failing exactly that call —
//! outright errors, torn (short) writes, and fsync failures each get a
//! sweep — and asserts the store's documented failure semantics:
//!
//! * **never a wrong answer, never a panic** — every op either applies
//!   fully or fails with a rollback (`Io`) or degradation (`Degraded`);
//!   the in-memory state after the faulty run is byte-identical to a fresh
//!   fault-free store replaying exactly the acknowledged ops;
//! * **sticky degradation** — once degraded, every further mutation is
//!   rejected with `Degraded` while reads keep serving;
//! * **prefix-consistent recovery** — reopening the directory with the
//!   real filesystem always succeeds, and recovers either exactly the
//!   acknowledged ops or (only when durability of the faulted record was
//!   left unknown) the acknowledged ops plus the single faulted one.
//!
//! Budget: each sweep visits every `k`-th call site, with
//! `k = ceil(sites / XDX_FAULT_BUDGET)` (default budget 24 per sweep, so
//! the default test job stays fast). CI's deep sweep sets a huge budget to
//! make the matrix exhaustive.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use xml_data_exchange::store::{
    DocEdit, DocStore, FaultKind, FaultPlan, FaultVfs, StoreConfig, StoreError, SyncPolicy,
};
use xml_data_exchange::xmltree::{parse_tree, tree_to_text, AttrName, ElementType, Value};
use xml_data_exchange::XmlTree;

static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "xdx-fault-matrix-{tag}-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn doc(text: &str) -> XmlTree {
    parse_tree(text).unwrap()
}

fn set_attr(node: u32, name: &str, value: &str) -> DocEdit {
    DocEdit::SetAttr {
        node,
        name: AttrName::new(name),
        value: Value::constant(value),
    }
}

/// One scripted store mutation. `Checkpoint` exercises the snapshot path's
/// call sites; the others exercise the WAL's.
enum Op {
    Put(u64, &'static str),
    Edit(u64, Vec<DocEdit>),
    Delete(u64),
    Checkpoint,
}

/// The trace under test: WAL appends of every record kind, a mid-trace
/// checkpoint (snapshot write + WAL reset + directory fsync), then more
/// appends over the snapshot, and a final checkpoint.
fn script() -> Vec<Op> {
    vec![
        Op::Put(1, "db[book(@title=\"CO\")[author(@name=\"P\")]]"),
        Op::Put(2, "db[book(@title=\"TCS\")]"),
        Op::Edit(1, vec![set_attr(1, "@title", "CO2")]),
        Op::Checkpoint,
        Op::Edit(
            1,
            vec![
                DocEdit::InsertChild {
                    parent: 0,
                    at: 1,
                    label: ElementType::new("book"),
                },
                set_attr(3, "@title", "New"),
            ],
        ),
        Op::Delete(2),
        Op::Put(2, "db[book(@title=\"Again\")]"),
        Op::Edit(2, vec![DocEdit::RemoveChild { parent: 0, at: 0 }]),
        Op::Checkpoint,
        Op::Put(3, "db[book(@title=\"Third\")]"),
    ]
}

fn config(dir: &Path, vfs: Arc<dyn xml_data_exchange::store::Vfs>) -> StoreConfig {
    StoreConfig {
        sync: SyncPolicy::Always,
        ..StoreConfig::new(dir)
    }
    .with_vfs(vfs)
}

/// Apply one op; `Ok(true)` when it acknowledged.
fn apply(store: &mut DocStore, op: &Op) -> Result<(), StoreError> {
    match op {
        Op::Put(id, text) => store.put(*id, doc(text)).map(|_| ()),
        Op::Edit(id, edits) => store.edit(*id, 0, edits).map(|_| ()),
        Op::Delete(id) => store.delete(*id),
        Op::Checkpoint => store.checkpoint(),
    }
}

/// The full observable document state: id → (canonical text, version).
fn state(store: &mut DocStore) -> BTreeMap<u64, (String, u64)> {
    let ids: Vec<_> = store.doc_ids().collect();
    ids.into_iter()
        .map(|key| {
            let (tree, version) = store.get(key).unwrap();
            (key.doc, (tree_to_text(tree), version))
        })
        .collect()
}

/// Replay the ops with the given indices on a fresh fault-free store and
/// return the resulting state — the matrix's differential oracle. Every
/// acknowledged subsequence replays cleanly because each acked op executed
/// against exactly the state the earlier acked ops built.
fn oracle(indices: &[usize]) -> BTreeMap<u64, (String, u64)> {
    let ops = script();
    let dir = fresh_dir("oracle");
    let mut store: DocStore =
        DocStore::open(config(&dir, Arc::new(xml_data_exchange::store::RealVfs))).unwrap();
    for &i in indices {
        apply(&mut store, &ops[i]).unwrap_or_else(|e| {
            panic!("oracle replay of acked op {i} failed: {e}");
        });
    }
    let s = state(&mut store);
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    s
}

/// Run the trace once under `plan` and assert every contract. Returns the
/// number of (all-class, sync-class) VFS calls the run performed, so the
/// sizing run can reuse it with [`FaultPlan::count_only`].
fn run_case(plan: FaultPlan, tag: &str) -> (u64, u64) {
    let ops = script();
    let dir = fresh_dir(tag);
    let vfs = FaultVfs::real(plan);
    let mut applied: Vec<usize> = Vec::new();
    let mut failed: Option<usize> = None;
    let mut durability_unknown = false;

    match DocStore::open(config(&dir, Arc::new(vfs.clone()))) {
        Ok(mut store) => {
            for (i, op) in ops.iter().enumerate() {
                match apply(&mut store, op) {
                    Ok(()) => applied.push(i),
                    Err(e) => {
                        if failed.is_none() {
                            failed = Some(i);
                        }
                        match e {
                            StoreError::Degraded { .. } => {
                                assert!(
                                    store.is_degraded(),
                                    "[{tag}] Degraded error, healthy store"
                                );
                            }
                            StoreError::Io(_) => {
                                // A rollback: the op vanished, the store
                                // keeps serving.
                            }
                            StoreError::UnknownDoc { .. } | StoreError::VersionConflict { .. } => {
                                // A dependency casualty: an earlier op in
                                // the trace rolled back, so this one now
                                // targets a document that never appeared.
                                // Atomic rejection, state unchanged.
                            }
                            other => panic!("[{tag}] op {i} failed with {other}"),
                        }
                        if store.is_degraded() {
                            durability_unknown = true;
                            // Sticky: every further mutation must be
                            // rejected with Degraded, state untouched.
                            for (j, later) in ops.iter().enumerate().skip(i + 1) {
                                match apply(&mut store, later) {
                                    Err(StoreError::Degraded { .. }) => {}
                                    other => panic!(
                                        "[{tag}] degraded store answered op {j} with {other:?}"
                                    ),
                                }
                            }
                            break;
                        }
                    }
                }
            }
            // Degraded or not: reads keep serving, and the surviving state
            // is byte-identical to a fresh store replaying the acked ops.
            assert_eq!(
                state(&mut store),
                oracle(&applied),
                "[{tag}] in-memory state diverged from the fault-free oracle"
            );
        }
        Err(e) => {
            // The fault fired inside open() itself: acceptable, as long as
            // it is an I/O failure (never Corrupt) and a real-filesystem
            // reopen below recovers.
            assert!(
                matches!(e, StoreError::Io(_)),
                "[{tag}] open failed with {e}"
            );
            durability_unknown = true;
        }
    }

    // Recovery: reopening with the real filesystem must always succeed and
    // land on the acked state — or, when the faulted record's durability
    // was left unknown (degradation / failed open), on acked + that one op.
    let mut reopened: DocStore =
        DocStore::open(config(&dir, Arc::new(xml_data_exchange::store::RealVfs)))
            .unwrap_or_else(|e| panic!("[{tag}] reopen after fault failed: {e}"));
    let recovered = state(&mut reopened);
    let acked = oracle(&applied);
    let mut candidates = vec![acked];
    if durability_unknown {
        if let Some(f) = failed {
            let mut with_failed = applied.clone();
            with_failed.push(f);
            with_failed.sort_unstable();
            candidates.push(oracle(&with_failed));
        }
    }
    assert!(
        candidates.contains(&recovered),
        "[{tag}] recovered state is not prefix-consistent:\n  got {recovered:?}\n  acked {:?}",
        candidates[0]
    );
    let counts = (vfs.ops(), vfs.sync_ops());
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
    counts
}

/// Per-sweep fault budget: `XDX_FAULT_BUDGET` when set (the CI deep sweep
/// sets it huge for exhaustiveness), 24 otherwise.
fn budget() -> u64 {
    std::env::var("XDX_FAULT_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
        .max(1)
}

fn stride(sites: u64) -> u64 {
    sites.div_ceil(budget()).max(1)
}

#[test]
fn every_failed_vfs_call_rolls_back_or_degrades_and_recovers() {
    let (sites, _) = run_case(FaultPlan::count_only(), "sizing");
    assert!(sites > 20, "the trace performs {sites} VFS calls — too few");
    let step = stride(sites);
    for k in (0..sites).step_by(step as usize) {
        run_case(FaultPlan::fail_op(k), &format!("err-{k}"));
    }
}

#[test]
fn every_torn_write_rolls_back_or_degrades_and_recovers() {
    let (sites, _) = run_case(FaultPlan::count_only(), "sizing-torn");
    let step = stride(sites);
    for k in (0..sites).step_by(step as usize) {
        run_case(
            FaultPlan::fail_op_with(k, FaultKind::ShortWrite),
            &format!("torn-{k}"),
        );
    }
}

#[test]
fn every_failed_fsync_degrades_stickily_and_recovers() {
    let (_, syncs) = run_case(FaultPlan::count_only(), "sizing-sync");
    assert!(syncs > 5, "the trace performs {syncs} syncs — too few");
    let step = stride(syncs);
    for k in (0..syncs).step_by(step as usize) {
        run_case(FaultPlan::fail_sync(k), &format!("sync-{k}"));
    }
}
