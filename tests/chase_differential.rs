//! Differential harness for the worklist (dirty-queue) chase and the
//! template-stamped target instantiation.
//!
//! `solution::chase_reference` (restart-the-world scan) and
//! `solution::canonical_presolution_reference` (per-match recursion) are the
//! frozen oracles; the compiled paths — `CompiledSetting::chase` (worklist)
//! and `CompiledSetting::canonical_presolution` (template stamping) — must
//! agree with them on randomized inputs:
//!
//! * **conforming presolutions** — both chases succeed without structural
//!   repairs and agree up to sibling order and null renaming;
//! * **repair-heavy presolutions** (labels respect each parent's
//!   content-model alphabet) — merges and extensions everywhere; the only
//!   reachable failure is `AttributeClash`, so error *kinds* must match too;
//! * **off-model presolutions** (any declared label anywhere, plus
//!   undeclared labels) — the only reachable failure is `NoRepair`;
//! * **end-to-end canonical solutions** over a pool of settings including
//!   STD-forced labels outside content models (exercising the shared
//!   forced-element repair contexts) and chase-forced merges;
//! * deterministic single-fault cases for every error path:
//!   `DisallowedAttribute`, `NoRepair`, `NoMaximumRepair`,
//!   `AttributeClash`, `UnknownTargetElement` and budget exhaustion
//!   (via the `*_with_budget` hooks).
//!
//! The chase is confluent up to null renaming and sibling order, but when a
//! tree carries several *independent* unrepairable violations, which one is
//! reported depends on visit order (in the reference it is an artefact of
//! the restart scan). The generators therefore keep each family to a single
//! reachable error kind, which makes kind equality assertable everywhere.
//!
//! Sampling is deterministic (the proptest shim derives each property's
//! seed from its name); `PROPTEST_CASES` scales the sweep (the scheduled CI
//! deep job runs with `PROPTEST_CASES=2048`). The default case counts below
//! sum to > 500 generated cases per run.

use proptest::prelude::*;
use xml_data_exchange::core::setting::{books_to_writers_setting, DataExchangeSetting, Std};
use xml_data_exchange::core::solution::{
    canonical_presolution, canonical_presolution_reference, canonical_solution,
    canonical_solution_reference, chase_reference, chase_reference_with_budget, SolutionError,
};
use xml_data_exchange::core::CompiledSetting;
use xml_data_exchange::xmltree::{NodeId, NullGen};
use xml_data_exchange::{Dtd, XmlTree};

/// The number of cases for one property: the env override when set,
/// `default` otherwise.
fn cases(default: u32) -> u32 {
    ProptestConfig::env_cases().unwrap_or(default)
}

/// The univocal, everywhere-repairable target schema of bench E13 — the
/// same fixture the chase benches measure, so the harness verifies exactly
/// the workload shape the numbers are reported for: `sec` needs exactly one
/// `title` (duplicates merge, absences extend), `meta` is at-most-one
/// (duplicates merge), `par` is free. The STD forces `doc/sec/title`, so
/// those are in the compiled chase's shared forced-element alphabet.
fn doc_setting() -> DataExchangeSetting {
    xdx_bench::chase_setting()
}

/// Run both chase implementations on clones of `tree`.
fn chase_pair(
    setting: &DataExchangeSetting,
    tree: &XmlTree,
) -> (
    Result<XmlTree, SolutionError>,
    Result<XmlTree, SolutionError>,
) {
    let mut reference_tree = tree.clone();
    let mut reference_nulls = NullGen::starting_at(1_000_000);
    let reference = chase_reference(&mut reference_tree, setting, &mut reference_nulls)
        .map(|()| reference_tree);
    let compiled = CompiledSetting::new(setting);
    let mut worklist_tree = tree.clone();
    let mut worklist_nulls = NullGen::starting_at(1_000_000);
    let worklist = compiled
        .chase(&mut worklist_tree, &mut worklist_nulls)
        .map(|()| worklist_tree);
    (reference, worklist)
}

/// Same verdict; on success, same tree up to sibling order and null
/// renaming; on failure, same error kind.
fn assert_chases_agree(setting: &DataExchangeSetting, tree: &XmlTree) -> Result<(), TestCaseError> {
    let (reference, worklist) = chase_pair(setting, tree);
    match (&reference, &worklist) {
        (Ok(r), Ok(w)) => {
            w.validate().expect("worklist chase corrupted the tree");
            prop_assert!(
                w.unordered_eq(r),
                "chase results diverged on a {}-node tree:\n{r}\nvs\n{w}",
                tree.size()
            );
            prop_assert!(setting.target_dtd.conforms_unordered(w));
        }
        (Err(re), Err(we)) => {
            prop_assert!(
                std::mem::discriminant(re) == std::mem::discriminant(we),
                "chase error kinds diverged on a {}-node tree: {re:?} vs {we:?}",
                tree.size()
            );
        }
        _ => prop_assert!(
            false,
            "chase verdicts diverged on a {}-node tree: {reference:?} vs {worklist:?}",
            tree.size()
        ),
    }
    Ok(())
}

fn pick<'a, T>(rng: &mut TestRng, items: &'a [T]) -> &'a T {
    &items[rng.next_u64() as usize % items.len()]
}

/// A presolution-shaped tree conforming (unordered) to [`doc_setting`]'s
/// target DTD, with all attributes present.
fn conforming_tree(rng: &mut TestRng, budget: usize) -> XmlTree {
    let mut tree = XmlTree::new("doc");
    let mut nodes = 1usize;
    let mut nulls = NullGen::new();
    while nodes + 2 < budget {
        let sec = tree.add_child(tree.root(), "sec");
        tree.set_attr(sec, "@id", format!("s{}", rng.next_u64() % 4));
        let title = tree.add_child(sec, "title");
        tree.set_attr(title, "@t", *pick(rng, &["a", "b"]));
        nodes += 2;
        for _ in 0..rng.next_u64() % 3 {
            if nodes >= budget {
                break;
            }
            let par = tree.add_child(sec, "par");
            // Nulls bind like any other value and must survive both chases.
            if rng.next_u64().is_multiple_of(4) {
                tree.set_attr(par, "@w", nulls.fresh_value());
            } else {
                tree.set_attr(par, "@w", "w");
            }
            nodes += 1;
        }
    }
    if rng.next_u64().is_multiple_of(2) {
        tree.add_child(tree.root(), "meta");
    }
    tree
}

/// A repair-heavy tree: every label sits under a parent whose content-model
/// alphabet contains it, but counts are arbitrary (0–3 titles per sec, 0–3
/// metas) and attributes are randomly missing. `@t` draws from two
/// constants, so title merges sometimes clash — the only reachable error.
fn repair_heavy_tree(rng: &mut TestRng, budget: usize) -> XmlTree {
    let mut tree = XmlTree::new("doc");
    let mut nodes = 1usize;
    for _ in 0..rng.next_u64() % 4 {
        tree.add_child(tree.root(), "meta");
        nodes += 1;
    }
    while nodes < budget {
        let sec = tree.add_child(tree.root(), "sec");
        if rng.next_u64().is_multiple_of(2) {
            tree.set_attr(sec, "@id", "s");
        }
        nodes += 1;
        for _ in 0..rng.next_u64() % 4 {
            if nodes >= budget {
                break;
            }
            let child = if rng.next_u64().is_multiple_of(2) {
                let title = tree.add_child(sec, "title");
                if rng.next_u64().is_multiple_of(2) {
                    tree.set_attr(title, "@t", *pick(rng, &["a", "b"]));
                }
                title
            } else {
                tree.add_child(sec, "par")
            };
            let _ = child;
            nodes += 1;
        }
    }
    tree
}

/// An off-model tree: any declared label (plus the undeclared `z`) can
/// appear under any node. `@t` is fixed to one constant, so merges never
/// clash and the only reachable error is `NoRepair`.
fn off_model_tree(rng: &mut TestRng, budget: usize) -> XmlTree {
    let labels = ["sec", "title", "par", "meta", "z"];
    let mut tree = XmlTree::new("doc");
    for _ in 0..budget {
        let nodes = tree.nodes();
        let parent = *pick(rng, &nodes);
        let label = *pick(rng, &labels);
        let node = tree.add_child(parent, label);
        if label == "title" {
            tree.set_attr(node, "@t", "a");
        }
    }
    tree
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(160)))]

    /// Conforming presolutions: both chases fill the missing attributes and
    /// nothing else.
    #[test]
    fn worklist_chase_equals_reference_on_conforming_trees(
        seed in 0u64..u64::MAX,
        budget in 3usize..28,
    ) {
        let setting = doc_setting();
        let mut rng = TestRng::new(seed);
        let tree = conforming_tree(&mut rng, budget);
        assert_chases_agree(&setting, &tree)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(160)))]

    /// Repair-heavy presolutions: merges and extensions at every node;
    /// `AttributeClash` is the only reachable failure and both chases must
    /// report it (or both succeed with equal trees).
    #[test]
    fn worklist_chase_equals_reference_on_repair_heavy_trees(
        seed in 0u64..u64::MAX,
        budget in 2usize..26,
    ) {
        let setting = doc_setting();
        let mut rng = TestRng::new(seed);
        let tree = repair_heavy_tree(&mut rng, budget);
        assert_chases_agree(&setting, &tree)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(96)))]

    /// Off-model presolutions (declared labels in forbidden places and the
    /// undeclared label `z`): `NoRepair` is the only reachable failure.
    #[test]
    fn worklist_chase_equals_reference_on_off_model_trees(
        seed in 0u64..u64::MAX,
        budget in 1usize..20,
    ) {
        let setting = doc_setting();
        let mut rng = TestRng::new(seed);
        let tree = off_model_tree(&mut rng, budget);
        assert_chases_agree(&setting, &tree)?;
    }
}

// ---------------------------------------------------------------------------
// End-to-end: template-stamped presolution + worklist chase vs references
// ---------------------------------------------------------------------------

/// Settings whose STDs drive different instantiation/chase shapes:
/// the running example, a chase-forced merge (clash-prone), and an STD
/// forcing a declared label (`note`) that no content model mentions.
fn setting_pool() -> Vec<DataExchangeSetting> {
    let merge_forcing = {
        let source_dtd = Dtd::builder("db")
            .rule("db", "book*")
            .rule("book", "author*")
            .attributes("book", ["@title"])
            .attributes("author", ["@name", "@aff"])
            .build()
            .unwrap();
        let target_dtd = Dtd::builder("bib")
            .rule("bib", "writer")
            .rule("writer", "work*")
            .attributes("writer", ["@name"])
            .attributes("work", ["@title", "@year"])
            .build()
            .unwrap();
        let std = Std::parse(
            "bib[writer(@name=$y)[work(@title=$x, @year=$z)]] :- db[book(@title=$x)[author(@name=$y)]]",
        )
        .unwrap();
        DataExchangeSetting::new(source_dtd, target_dtd, vec![std])
    };
    let forced_off_model = {
        let source_dtd = Dtd::builder("src")
            .rule("src", "item*")
            .attributes("item", ["@v"])
            .build()
            .unwrap();
        // `note` is declared but appears in no content model: presolutions
        // that instantiate it are unrepairable, and `note` still sits in the
        // compiled chase's shared forced-element alphabet.
        let target_dtd = Dtd::builder("doc")
            .rule("doc", "sec*")
            .rule("sec", "title")
            .rule("title", "eps")
            .rule("note", "eps")
            .attributes("sec", ["@id"])
            .build()
            .unwrap();
        let std = Std::parse("doc[sec(@id=$x)[note]] :- src[item(@v=$x)]").unwrap();
        DataExchangeSetting::new(source_dtd, target_dtd, vec![std])
    };
    vec![
        books_to_writers_setting(),
        doc_setting(),
        merge_forcing,
        forced_off_model,
    ]
}

/// A random source tree for any setting in the pool: the generic shape
/// `root[rec(@a=v)[sub(@a=v, @b=v)*]*]` relabelled to the setting's source
/// schema. Values come from a small pool so merges and clashes happen.
fn random_source(setting: &DataExchangeSetting, rng: &mut TestRng, budget: usize) -> XmlTree {
    let root = setting.source_dtd.root().clone();
    let mut tree = XmlTree::new(root.as_str());
    let (rec, rec_attrs, sub, sub_attrs): (&str, &[&str], Option<&str>, &[&str]) =
        match root.as_str() {
            "db" => ("book", &["@title"], Some("author"), &["@name", "@aff"]),
            _ => ("item", &["@v"], None, &[]),
        };
    let mut nodes = 1usize;
    while nodes < budget {
        let r = tree.add_child(tree.root(), rec);
        for attr in rec_attrs {
            tree.set_attr(r, *attr, format!("c{}", rng.next_u64() % 3));
        }
        nodes += 1;
        if let Some(sub) = sub {
            for _ in 0..rng.next_u64() % 3 {
                if nodes >= budget {
                    break;
                }
                let s = tree.add_child(r, sub);
                for attr in sub_attrs {
                    tree.set_attr(s, *attr, format!("c{}", rng.next_u64() % 3));
                }
                nodes += 1;
            }
        }
    }
    tree
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(128)))]

    /// Template-stamped presolutions equal the recursive reference ones,
    /// and full canonical solutions (presolution + chase) agree end to end.
    #[test]
    fn compiled_pipeline_equals_reference_pipeline(
        seed in 0u64..u64::MAX,
        budget in 1usize..24,
    ) {
        let mut rng = TestRng::new(seed);
        let settings = setting_pool();
        let setting = pick(&mut rng, &settings);
        let source = random_source(setting, &mut rng, budget);

        let mut compiled_nulls = NullGen::new();
        let compiled_pre =
            canonical_presolution(setting, &source, &mut compiled_nulls).unwrap();
        let mut reference_nulls = NullGen::new();
        let reference_pre =
            canonical_presolution_reference(setting, &source, &mut reference_nulls).unwrap();
        compiled_pre.validate().expect("stamped presolution is a tree");
        prop_assert!(
            compiled_pre.unordered_eq(&reference_pre),
            "presolutions diverged:\n{compiled_pre}\nvs\n{reference_pre}"
        );

        let compiled_solution = canonical_solution(setting, &source);
        let reference_solution = canonical_solution_reference(setting, &source);
        match (&compiled_solution, &reference_solution) {
            (Ok(c), Ok(r)) => prop_assert!(
                c.unordered_eq(r),
                "canonical solutions diverged:\n{c}\nvs\n{r}"
            ),
            (Err(ce), Err(re)) => prop_assert!(
                std::mem::discriminant(ce) == std::mem::discriminant(re),
                "solution error kinds diverged: {ce:?} vs {re:?}"
            ),
            _ => prop_assert!(
                false,
                "solution verdicts diverged: {compiled_solution:?} vs {reference_solution:?}"
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic single-fault error paths
// ---------------------------------------------------------------------------

/// Both chases must report exactly this error on a single-fault tree.
fn assert_both_fail_with(
    setting: &DataExchangeSetting,
    tree: &XmlTree,
    expect: impl Fn(&SolutionError) -> bool,
) {
    let (reference, worklist) = chase_pair(setting, tree);
    let reference = reference.expect_err("reference chase must fail");
    let worklist = worklist.expect_err("worklist chase must fail");
    assert!(
        expect(&reference),
        "unexpected reference error: {reference:?}"
    );
    assert!(expect(&worklist), "unexpected worklist error: {worklist:?}");
    assert_eq!(
        std::mem::discriminant(&reference),
        std::mem::discriminant(&worklist)
    );
}

#[test]
fn disallowed_attribute_is_reported_by_both_chases() {
    let setting = doc_setting();
    let mut tree = conforming_tree(&mut TestRng::new(7), 12);
    let sec = tree.children(tree.root())[0];
    tree.set_attr(sec, "@bogus", "x");
    assert_both_fail_with(
        &setting,
        &tree,
        |e| matches!(e, SolutionError::DisallowedAttribute { attr, .. } if attr.as_str() == "@bogus"),
    );
}

#[test]
fn no_repair_is_reported_by_both_chases() {
    // `meta → eps` can never host a child.
    let setting = doc_setting();
    let mut tree = XmlTree::new("doc");
    let meta = tree.add_child(tree.root(), "meta");
    tree.add_child(meta, "par");
    assert_both_fail_with(
        &setting,
        &tree,
        |e| matches!(e, SolutionError::NoRepair { element } if element.as_str() == "meta"),
    );
}

#[test]
fn unknown_target_element_is_reported_by_both_chases() {
    let setting = doc_setting();
    let tree = XmlTree::new("zzz");
    assert_both_fail_with(
        &setting,
        &tree,
        |e| matches!(e, SolutionError::UnknownTargetElement { element } if element.as_str() == "zzz"),
    );
}

#[test]
fn attribute_clash_is_reported_by_both_chases() {
    // Two titles with distinct constants under one sec: the forced merge
    // clashes on `@t` in both chases.
    let setting = doc_setting();
    let mut tree = XmlTree::new("doc");
    let sec = tree.add_child(tree.root(), "sec");
    for value in ["a", "b"] {
        let title = tree.add_child(sec, "title");
        tree.set_attr(title, "@t", value);
    }
    assert_both_fail_with(
        &setting,
        &tree,
        |e| matches!(e, SolutionError::AttributeClash { attr, .. } if attr.as_str() == "@t"),
    );
}

#[test]
fn no_maximum_repair_is_reported_by_both_chases() {
    // `x → a|b` with no children: rep = {{a}, {b}}, no ⊑-maximum.
    let source_dtd = Dtd::builder("src").rule("src", "eps").build().unwrap();
    let target_dtd = Dtd::builder("x")
        .rule("x", "a|b")
        .rule("a", "eps")
        .rule("b", "eps")
        .build()
        .unwrap();
    let setting = DataExchangeSetting::new(source_dtd, target_dtd, vec![]);
    let tree = XmlTree::new("x");
    assert_both_fail_with(
        &setting,
        &tree,
        |e| matches!(e, SolutionError::NoMaximumRepair { element } if element.as_str() == "x"),
    );
}

#[test]
fn budget_exhaustion_is_reported_by_both_chases() {
    // `g → g`: every repair adds a `g` child that itself needs one — the
    // chase never terminates and must trip the (shrunken) budget in both
    // implementations. Step counts differ slightly (the reference counts
    // restart scans, the worklist counts applied repairs), so only the
    // kind is pinned.
    let source_dtd = Dtd::builder("src").rule("src", "eps").build().unwrap();
    let target_dtd = Dtd::builder("r")
        .rule("r", "g")
        .rule("g", "g")
        .build()
        .unwrap();
    let setting = DataExchangeSetting::new(source_dtd, target_dtd, vec![]);
    let budget = 300;

    let mut reference_tree = XmlTree::new("r");
    let mut reference_nulls = NullGen::new();
    let reference =
        chase_reference_with_budget(&mut reference_tree, &setting, &mut reference_nulls, budget)
            .expect_err("the reference chase must exhaust its budget");
    assert!(matches!(
        reference,
        SolutionError::ChaseBudgetExceeded { .. }
    ));

    let compiled = CompiledSetting::new(&setting);
    let mut worklist_tree = XmlTree::new("r");
    let mut worklist_nulls = NullGen::new();
    let worklist = compiled
        .chase_with_budget(&mut worklist_tree, &mut worklist_nulls, budget)
        .expect_err("the worklist chase must exhaust its budget");
    assert!(matches!(
        worklist,
        SolutionError::ChaseBudgetExceeded { .. }
    ));
}

#[test]
fn budget_counts_repairs_not_visited_nodes() {
    // A tiny tree whose chase *grows* a large mandatory fan-out: `r` needs
    // 40 `a` children, every `a` needs 40 `b`s — 41 repairs materialise
    // 1641 nodes. Both implementations must finish within a 100-step
    // budget, because a step is one repair (reference: one restart scan),
    // not one visited node; a pop-per-step worklist would spuriously
    // exhaust the budget here (regression test).
    let fan: String = vec!["a"; 40].join(" ");
    let fan_b: String = vec!["b"; 40].join(" ");
    let source_dtd = Dtd::builder("src").rule("src", "eps").build().unwrap();
    let target_dtd = Dtd::builder("r")
        .rule("r", &fan)
        .rule("a", &fan_b)
        .rule("b", "eps")
        .build()
        .unwrap();
    let setting = DataExchangeSetting::new(source_dtd, target_dtd, vec![]);
    let budget = 100;

    let mut reference_tree = XmlTree::new("r");
    chase_reference_with_budget(&mut reference_tree, &setting, &mut NullGen::new(), budget)
        .expect("41 repairs fit in a 100-step budget");

    let compiled = CompiledSetting::new(&setting);
    let mut worklist_tree = XmlTree::new("r");
    compiled
        .chase_with_budget(&mut worklist_tree, &mut NullGen::new(), budget)
        .expect("41 repairs fit in a 100-step budget");
    assert_eq!(worklist_tree.size(), 1 + 40 + 40 * 40);
    assert!(worklist_tree.unordered_eq(&reference_tree));
}

#[test]
fn worklist_chase_visits_created_subtrees() {
    // A repair that *creates* nodes which themselves need repairs three
    // levels deep: doc → sec → title, where an empty doc must grow the
    // whole spine (regression test for the re-enqueue rule).
    let source_dtd = Dtd::builder("src").rule("src", "eps").build().unwrap();
    let target_dtd = Dtd::builder("doc")
        .rule("doc", "sec")
        .rule("sec", "title")
        .rule("title", "leaf")
        .rule("leaf", "eps")
        .attributes("leaf", ["@v"])
        .build()
        .unwrap();
    let setting = DataExchangeSetting::new(source_dtd, target_dtd, vec![]);
    let tree = XmlTree::new("doc");
    let (reference, worklist) = chase_pair(&setting, &tree);
    let reference = reference.unwrap();
    let worklist = worklist.unwrap();
    assert_eq!(worklist.size(), 4, "doc/sec/title/leaf spine");
    assert!(worklist.unordered_eq(&reference));
    assert!(setting.target_dtd.conforms_unordered(&worklist));
    // The deepest created node got its ChangeAtt fill.
    let leaf = worklist
        .preorder()
        .find(|&n| worklist.label(n).as_str() == "leaf")
        .unwrap();
    assert!(worklist.attr(leaf, &"@v".into()).unwrap().is_null());
}

#[test]
fn repeated_target_only_variables_stay_correlated_across_sites() {
    // `unordered_eq` anonymises nulls, so the randomized properties cannot
    // see null *identity*. This pins it directly: a target-only variable
    // occurring at two attribute sites must receive the SAME null within
    // one instantiation (a query joining the two sites on `$z` must keep
    // matching) and distinct nulls across instantiations — in both the
    // template-stamped and the reference presolution.
    let source_dtd = Dtd::builder("src")
        .rule("src", "item*")
        .attributes("item", ["@v"])
        .build()
        .unwrap();
    let target_dtd = Dtd::builder("r")
        .rule("r", "a* b*")
        .attributes("a", ["@p", "@k"])
        .attributes("b", ["@q"])
        .build()
        .unwrap();
    let std = Std::parse("r[a(@p=$z, @k=$x), b(@q=$z)] :- src[item(@v=$x)]").unwrap();
    let setting = DataExchangeSetting::new(source_dtd, target_dtd, vec![std]);
    let mut source = XmlTree::new("src");
    for v in ["1", "2"] {
        let item = source.add_child(source.root(), "item");
        source.set_attr(item, "@v", v);
    }
    let mut nulls = NullGen::new();
    let stamped = canonical_presolution(&setting, &source, &mut nulls).unwrap();
    let mut reference_nulls = NullGen::new();
    let reference =
        canonical_presolution_reference(&setting, &source, &mut reference_nulls).unwrap();
    for pre in [&stamped, &reference] {
        // Each stamp appends its `a` then its `b`: children = a₁ b₁ a₂ b₂.
        let tops = pre.children(pre.root());
        assert_eq!(tops.len(), 4);
        let z1 = pre.attr(tops[0], &"@p".into()).unwrap();
        let z2 = pre.attr(tops[2], &"@p".into()).unwrap();
        assert!(z1.is_null() && z2.is_null());
        assert_eq!(
            z1,
            pre.attr(tops[1], &"@q".into()).unwrap(),
            "within one instantiation the two $z sites share one null"
        );
        assert_eq!(z2, pre.attr(tops[3], &"@q".into()).unwrap());
        assert_ne!(z1, z2, "instantiations draw fresh nulls");
    }
}

/// `NodeId` sanity for the stamped presolutions: ids handed out by
/// `append_forest` slot arithmetic are real arena ids.
#[test]
fn stamped_presolution_node_ids_are_dense() {
    let setting = doc_setting();
    let mut source = XmlTree::new("src");
    for v in ["1", "2", "3"] {
        let item = source.add_child(source.root(), "item");
        source.set_attr(item, "@v", v);
    }
    let mut nulls = NullGen::new();
    let pre = canonical_presolution(&setting, &source, &mut nulls).unwrap();
    assert_eq!(pre.size(), 1 + 3 * 2, "root + (sec + title) per item");
    assert_eq!(pre.arena_len(), pre.size(), "stamping leaves no gaps");
    for i in 0..pre.arena_len() {
        let node = NodeId::from_index(i);
        let _ = pre.label(node);
    }
}
