//! The dichotomy theorem machinery across crates: univocality of the paper's
//! example expressions, classification of settings, and the behaviour of the
//! tractable algorithm on both sides of the boundary.

use xml_data_exchange::core::setting::DataExchangeSetting;
use xml_data_exchange::core::{classify_setting, SolutionError};
use xml_data_exchange::relang::{c_of, c_sym, is_univocal, parse_regex};
use xml_data_exchange::{canonical_solution, Dtd, Std, XmlTree};

#[test]
fn paper_examples_of_univocal_expressions() {
    for src in [
        "b c+ d* e?",
        "(b*|c*)",
        "(b c)* (d e)*",
        "(a|b|c)*",
        "(B C)*",
        "eps",
    ] {
        assert!(
            is_univocal(&parse_regex(src).unwrap()),
            "{src} should be univocal"
        );
    }
}

#[test]
fn paper_examples_of_non_univocal_expressions() {
    // c_a(a | aab*) = 2 (Section 6.1), so the expression is not univocal.
    let r = parse_regex("a | a a b*").unwrap();
    assert_eq!(c_sym(&r, &"a".to_string()), 2);
    assert_eq!(c_sym(&r, &"b".to_string()), 0);
    assert_eq!(c_of(&r), 2);
    assert!(!is_univocal(&r));
    // ab | ac lacks maximum repairs.
    assert!(!is_univocal(&parse_regex("(a b)|(a c)").unwrap()));
}

#[test]
fn nested_relational_dtds_are_univocal_hence_tractable() {
    // Corollary 6.11: the Clio class sits inside the tractable side.
    let source = Dtd::builder("s")
        .rule("s", "rec*")
        .attributes("rec", ["@v"])
        .build()
        .unwrap();
    let target = Dtd::builder("t")
        .rule("t", "head ent* tail?")
        .rule("ent", "sub+")
        .attributes("ent", ["@v"])
        .build()
        .unwrap();
    let setting = DataExchangeSetting::new(
        source,
        target,
        vec![Std::parse("t[head, ent(@v=$x)[sub]] :- s[rec(@v=$x)]").unwrap()],
    );
    assert!(setting.target_dtd.is_nested_relational());
    assert!(classify_setting(&setting).is_tractable());
}

#[test]
fn the_chase_refuses_to_guess_on_non_univocal_content_models() {
    // Target content model ab | ac: after the STD forces an `a` child, the
    // repair has two maximal, incomparable completions (add b or add c);
    // the canonical chase reports the ambiguity rather than picking one.
    let source = Dtd::builder("s")
        .rule("s", "rec*")
        .attributes("rec", ["@v"])
        .build()
        .unwrap();
    let target = Dtd::builder("t")
        .rule("t", "(a b)|(a c)")
        .attributes("a", ["@v"])
        .build()
        .unwrap();
    let setting = DataExchangeSetting::new(
        source,
        target,
        vec![Std::parse("t[a(@v=$x)] :- s[rec(@v=$x)]").unwrap()],
    );
    assert!(!classify_setting(&setting).is_tractable());

    let mut src_tree = XmlTree::new("s");
    let rec = src_tree.add_child(src_tree.root(), "rec");
    src_tree.set_attr(rec, "@v", "1");
    let err = canonical_solution(&setting, &src_tree).unwrap_err();
    assert!(matches!(err, SolutionError::NoMaximumRepair { .. }));
}

#[test]
fn univocal_but_not_nested_relational_settings_still_work_end_to_end() {
    // (B C)* is univocal but not nested-relational: the tractable algorithm
    // still applies (Theorem 6.2 is wider than Corollary 6.11).
    use xml_data_exchange::core::certain_answers;
    use xml_data_exchange::patterns::{parse_pattern, ConjunctiveTreeQuery, UnionQuery};
    let source = Dtd::builder("r")
        .rule("r", "A*")
        .attributes("A", ["@a"])
        .build()
        .unwrap();
    let target = Dtd::builder("r2")
        .rule("r2", "(B C)*")
        .rule("C", "D")
        .attributes("B", ["@m"])
        .attributes("D", ["@n"])
        .build()
        .unwrap();
    let setting = DataExchangeSetting::new(
        source,
        target,
        vec![Std::parse("r2[B(@m=$x)] :- r[A(@a=$x)]").unwrap()],
    );
    assert!(classify_setting(&setting).is_tractable());
    assert!(!setting.target_dtd.is_nested_relational());

    let mut src_tree = XmlTree::new("r");
    for v in ["1", "2", "3"] {
        let a = src_tree.add_child(src_tree.root(), "A");
        src_tree.set_attr(a, "@a", v);
    }
    let q = UnionQuery::single(
        ConjunctiveTreeQuery::new(["m"], vec![parse_pattern("B(@m=$m)").unwrap()]).unwrap(),
    );
    let answers = certain_answers(&setting, &src_tree, &q).unwrap();
    assert_eq!(answers.tuples.len(), 3);
    // The invented D values are nulls, so projecting them is uncertain.
    let qn = UnionQuery::single(
        ConjunctiveTreeQuery::new(["n"], vec![parse_pattern("D(@n=$n)").unwrap()]).unwrap(),
    );
    assert!(certain_answers(&setting, &src_tree, &qn)
        .unwrap()
        .tuples
        .is_empty());
}

#[test]
fn non_fully_specified_settings_are_classified_as_such() {
    use xml_data_exchange::core::SettingClass;
    let source = Dtd::builder("s")
        .rule("s", "rec*")
        .attributes("rec", ["@v"])
        .build()
        .unwrap();
    let target = Dtd::builder("t")
        .rule("t", "a*")
        .attributes("a", ["@v"])
        .build()
        .unwrap();
    for (pattern, expect_fully_specified) in [
        ("t[a(@v=$x)] :- s[rec(@v=$x)]", true),
        ("//a(@v=$x) :- s[rec(@v=$x)]", false),
        ("a(@v=$x) :- s[rec(@v=$x)]", false),
        ("t[_(@v=$x)] :- s[rec(@v=$x)]", false),
    ] {
        let setting = DataExchangeSetting::new(
            source.clone(),
            target.clone(),
            vec![Std::parse(pattern).unwrap()],
        );
        let class = classify_setting(&setting);
        assert_eq!(
            class.is_tractable(),
            expect_fully_specified,
            "{pattern}: got {class}"
        );
        if !expect_fully_specified {
            assert!(matches!(class, SettingClass::NotFullySpecified { .. }));
        }
    }
}
