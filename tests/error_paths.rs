//! Failure modes and edge cases across the pipeline: settings with no
//! solutions, invalid inputs, and the relational special case (flat XML
//! encodings of relations behave exactly like relational data exchange).

use xml_data_exchange::core::setting::DataExchangeSetting;
use xml_data_exchange::core::{certain_answers, check_consistency, SolutionError};
use xml_data_exchange::patterns::{parse_pattern, ConjunctiveTreeQuery, UnionQuery};
use xml_data_exchange::{canonical_solution, is_solution, Dtd, Std, TreeBuilder, XmlTree};

/// Relations encoded as flat XML: R(a, b) in the source, S(a, c) in the
/// target, with the classic relational STD S(x, z) :- R(x, y). The XML
/// machinery must reproduce the relational behaviour (labelled nulls for z,
/// certain answers = projection of R).
#[test]
fn flat_relational_exchange_behaves_like_relational_data_exchange() {
    let source_dtd = Dtd::builder("rdb")
        .rule("rdb", "R*")
        .attributes("R", ["@a", "@b"])
        .build()
        .unwrap();
    let target_dtd = Dtd::builder("tdb")
        .rule("tdb", "S*")
        .attributes("S", ["@a", "@c"])
        .build()
        .unwrap();
    let std = Std::parse("tdb[S(@a=$x, @c=$z)] :- rdb[R(@a=$x, @b=$y)]").unwrap();
    let setting = DataExchangeSetting::new(source_dtd, target_dtd, vec![std]);
    setting.validate(true).unwrap();

    let mut source = XmlTree::new("rdb");
    for (a, b) in [("1", "x"), ("2", "y"), ("2", "z")] {
        let r = source.add_child(source.root(), "R");
        source.set_attr(r, "@a", a);
        source.set_attr(r, "@b", b);
    }

    let solution = canonical_solution(&setting, &source).unwrap();
    // Matches are deduplicated on the shared variable x: two S facts.
    let s_nodes: Vec<_> = solution
        .nodes()
        .into_iter()
        .filter(|&n| solution.label(n).as_str() == "S")
        .collect();
    assert_eq!(s_nodes.len(), 2);
    for s in &s_nodes {
        assert!(solution.attr(*s, &"@c".into()).unwrap().is_null());
    }

    // certain(π_a(S)) = π_a(R); certain(π_c(S)) = ∅.
    let qa = UnionQuery::single(
        ConjunctiveTreeQuery::new(["x"], vec![parse_pattern("S(@a=$x)").unwrap()]).unwrap(),
    );
    let answers = certain_answers(&setting, &source, &qa).unwrap();
    assert_eq!(answers.tuples.len(), 2);
    assert!(answers.tuples.contains(&vec!["1".to_string()]));
    assert!(answers.tuples.contains(&vec!["2".to_string()]));
    let qc = UnionQuery::single(
        ConjunctiveTreeQuery::new(["c"], vec![parse_pattern("S(@c=$c)").unwrap()]).unwrap(),
    );
    assert!(certain_answers(&setting, &source, &qc)
        .unwrap()
        .tuples
        .is_empty());
}

/// A setting whose target DTD bounds the number of facts: sources with more
/// facts than fit have no solution, and the chase reports why.
#[test]
fn capacity_bounded_targets_reject_large_sources() {
    let source_dtd = Dtd::builder("rdb")
        .rule("rdb", "R*")
        .attributes("R", ["@a"])
        .build()
        .unwrap();
    // The target admits at most two S children (S? S?), each with a key.
    let target_dtd = Dtd::builder("tdb")
        .rule("tdb", "S1? S2?")
        .attributes("S1", ["@a"])
        .attributes("S2", ["@a"])
        .build()
        .unwrap();
    let std = Std::parse("tdb[S1(@a=$x)] :- rdb[R(@a=$x)]").unwrap();
    let setting = DataExchangeSetting::new(source_dtd, target_dtd, vec![std]);
    // The setting itself is consistent (a source with ≤1 distinct value works)…
    assert!(check_consistency(&setting).consistent);

    let mut small = XmlTree::new("rdb");
    let r = small.add_child(small.root(), "R");
    small.set_attr(r, "@a", "1");
    assert!(canonical_solution(&setting, &small).is_ok());

    // …but a source with two distinct values forces two S1 children with
    // clashing keys after the forced merge: no solution.
    let mut big = XmlTree::new("rdb");
    for v in ["1", "2"] {
        let r = big.add_child(big.root(), "R");
        big.set_attr(r, "@a", v);
    }
    let err = canonical_solution(&setting, &big).unwrap_err();
    assert!(matches!(err, SolutionError::AttributeClash { .. }));
}

/// STDs whose target patterns force element types or attributes the target
/// DTD cannot accommodate fail with precise errors.
#[test]
fn impossible_target_requirements_are_reported_precisely() {
    let source_dtd = Dtd::builder("rdb")
        .rule("rdb", "R*")
        .attributes("R", ["@a"])
        .build()
        .unwrap();
    let target_dtd = Dtd::builder("tdb")
        .rule("tdb", "S*")
        .attributes("S", ["@a"])
        .build()
        .unwrap();
    let mut source = XmlTree::new("rdb");
    let r = source.add_child(source.root(), "R");
    source.set_attr(r, "@a", "1");

    // Unknown element type forced below S.
    let ghost = DataExchangeSetting::new(
        source_dtd.clone(),
        target_dtd.clone(),
        vec![Std::parse("tdb[S(@a=$x)[ghost]] :- rdb[R(@a=$x)]").unwrap()],
    );
    let err = canonical_solution(&ghost, &source).unwrap_err();
    assert!(matches!(
        err,
        SolutionError::UnknownTargetElement { .. } | SolutionError::NoRepair { .. }
    ));

    // Disallowed attribute forced on S.
    let extra_attr = DataExchangeSetting::new(
        source_dtd,
        target_dtd,
        vec![Std::parse("tdb[S(@a=$x, @bogus=$x)] :- rdb[R(@a=$x)]").unwrap()],
    );
    let err2 = canonical_solution(&extra_attr, &source).unwrap_err();
    assert!(matches!(err2, SolutionError::DisallowedAttribute { .. }));
}

/// Multiple STDs writing into the same target region compose: facts from
/// different rules coexist in one canonical solution and joint queries see
/// them together.
#[test]
fn multiple_stds_compose_in_one_solution() {
    let source_dtd = Dtd::builder("src")
        .rule("src", "emp* mgr*")
        .attributes("emp", ["@name", "@dept"])
        .attributes("mgr", ["@name", "@dept"])
        .build()
        .unwrap();
    let target_dtd = Dtd::builder("org")
        .rule("org", "unit*")
        .rule("unit", "member*")
        .attributes("unit", ["@dept"])
        .attributes("member", ["@name", "@kind"])
        .build()
        .unwrap();
    let stds = vec![
        Std::parse("org[unit(@dept=$d)[member(@name=$n, @kind=\"employee\")]] :- src[emp(@name=$n, @dept=$d)]").unwrap(),
        Std::parse("org[unit(@dept=$d)[member(@name=$n, @kind=\"manager\")]] :- src[mgr(@name=$n, @dept=$d)]").unwrap(),
    ];
    let setting = DataExchangeSetting::new(source_dtd, target_dtd, stds);
    let source = TreeBuilder::new("src")
        .child("emp", |e| e.attr("@name", "Ada").attr("@dept", "DB"))
        .child("emp", |e| e.attr("@name", "Edgar").attr("@dept", "DB"))
        .child("mgr", |m| m.attr("@name", "Grace").attr("@dept", "DB"))
        .build();
    let solution = canonical_solution(&setting, &source).unwrap();
    assert!(is_solution(&setting, &source, &solution, false));

    // Certain query: names of managers of departments that have employees.
    let q = UnionQuery::single(
        ConjunctiveTreeQuery::new(
            ["m"],
            vec![
                parse_pattern("unit(@dept=$d)[member(@name=$m, @kind=\"manager\")]").unwrap(),
                parse_pattern("unit(@dept=$d)[member(@kind=\"employee\")]").unwrap(),
            ],
        )
        .unwrap(),
    );
    let answers = certain_answers(&setting, &source, &q).unwrap();
    assert_eq!(answers.tuples.len(), 1);
    assert!(answers.tuples.contains(&vec!["Grace".to_string()]));
}

/// Constants written by STD target patterns (selection constants) survive the
/// chase and show up in certain answers.
#[test]
fn constants_in_target_patterns_are_materialised() {
    let source_dtd = Dtd::builder("src")
        .rule("src", "item*")
        .attributes("item", ["@id"])
        .build()
        .unwrap();
    let target_dtd = Dtd::builder("out")
        .rule("out", "fact*")
        .attributes("fact", ["@id", "@source"])
        .build()
        .unwrap();
    let std = Std::parse("out[fact(@id=$x, @source=\"legacy\")] :- src[item(@id=$x)]").unwrap();
    let setting = DataExchangeSetting::new(source_dtd, target_dtd, vec![std]);
    let mut source = XmlTree::new("src");
    let i = source.add_child(source.root(), "item");
    source.set_attr(i, "@id", "42");
    let q = UnionQuery::single(
        ConjunctiveTreeQuery::new(
            ["id", "src"],
            vec![parse_pattern("fact(@id=$id, @source=$src)").unwrap()],
        )
        .unwrap(),
    );
    let answers = certain_answers(&setting, &source, &q).unwrap();
    assert_eq!(answers.tuples.len(), 1);
    assert!(answers
        .tuples
        .contains(&vec!["42".to_string(), "legacy".to_string()]));
}
