//! Proptests for the `xdx-server` wire codec: every request/response shape
//! round-trips under both document codecs, and hostile inputs — random
//! garbage, truncations and corruptions of valid wire frames *and* of
//! valid binary document frames — decode to structured errors without
//! ever panicking. Sampling is deterministic per test (the proptest shim
//! derives the seed from the test name) and scales with `PROPTEST_CASES`.

use proptest::prelude::*;
use xdx_server::wire::{
    decode_request, decode_response, encode_request, encode_response, Codec, DocResult, ErrorCode,
    RequestBody, RequestFrame, ResponseBody, ResponseFrame, WireDoc, WireError,
    MAX_DOCS_PER_REQUEST, SUPPORTED_FEATURES,
};
use xdx_xmltree::binary::{decode_tree, encode_tree};
use xdx_xmltree::{NullId, Value, XmlTree};

fn cases(default: u32) -> u32 {
    ProptestConfig::env_cases().unwrap_or(default)
}

/// Strings exercising every shape the codec must carry: empties, quotes,
/// backslashes, multi-byte UTF-8 (incl. the null marker ⊥), long runs.
fn random_string(rng: &mut TestRng) -> String {
    const PIECES: [&str; 8] = [
        "",
        "db",
        "db[book(@title=\"T0\")]",
        "quote\"back\\slash",
        "⊥7 nulls and ünïcode",
        "($x) :- work(@title=$x)",
        "\0binary\u{1}",
        "spaces and , commas ] brackets",
    ];
    let mut s = PIECES[rng.next_u64() as usize % PIECES.len()].to_string();
    if rng.next_u64().is_multiple_of(7) {
        s.push_str(&"x".repeat((rng.next_u64() % 300) as usize));
    }
    s
}

/// A random small tree: arbitrary labels/attribute names (hostile strings
/// included), constants and nulls, a few levels of nesting.
fn random_tree(rng: &mut TestRng) -> XmlTree {
    let mut tree = XmlTree::new(format!("r{}", rng.next_u64() % 3));
    let mut nodes = vec![tree.root()];
    for _ in 0..rng.next_u64() % 12 {
        let parent = nodes[rng.next_u64() as usize % nodes.len()];
        let node = tree.add_child(parent, random_string(rng));
        for _ in 0..rng.next_u64() % 3 {
            let value = if rng.next_u64().is_multiple_of(3) {
                Value::Null(NullId(rng.next_u64()))
            } else {
                Value::constant(random_string(rng))
            };
            tree.set_attr(node, format!("@{}", random_string(rng)), value);
        }
        nodes.push(node);
    }
    tree
}

/// A random document in the given codec. The wire layer carries binary
/// documents as opaque blobs, so for round-trip purposes *any* bytes are a
/// valid binary document — half the time use a real encoded tree, half
/// the time garbage.
fn random_doc(rng: &mut TestRng, codec: Codec) -> WireDoc {
    match codec {
        Codec::Text => WireDoc::Text(random_string(rng)),
        Codec::Binary => {
            if rng.next_u64().is_multiple_of(2) {
                WireDoc::Binary(encode_tree(&random_tree(rng)))
            } else {
                let len = (rng.next_u64() % 64) as usize;
                WireDoc::Binary((0..len).map(|_| rng.next_u64() as u8).collect())
            }
        }
    }
}

fn random_docs(rng: &mut TestRng, codec: Codec) -> Vec<WireDoc> {
    (0..rng.next_u64() % 5)
        .map(|_| random_doc(rng, codec))
        .collect()
}

fn random_request(rng: &mut TestRng, codec: Codec) -> RequestFrame {
    let id = rng.next_u64();
    let body = match rng.next_u64() % 6 {
        0 => RequestBody::Ping,
        1 => RequestBody::Hello {
            features: rng.next_u64() as u32,
        },
        2 => RequestBody::CheckConsistency {
            docs: random_docs(rng, codec),
        },
        3 => RequestBody::CanonicalSolution {
            docs: random_docs(rng, codec),
        },
        4 => RequestBody::CertainAnswers {
            query: random_string(rng),
            docs: random_docs(rng, codec),
        },
        _ => RequestBody::CertainAnswersBoolean {
            query: random_string(rng),
            docs: random_docs(rng, codec),
        },
    };
    RequestFrame {
        id,
        setting_id: 0,
        body,
    }
}

fn random_wire_error(rng: &mut TestRng) -> WireError {
    const CODES: [ErrorCode; 10] = [
        ErrorCode::MalformedFrame,
        ErrorCode::FrameTooLarge,
        ErrorCode::UnknownOp,
        ErrorCode::TreeParse,
        ErrorCode::QuerySyntax,
        ErrorCode::NotFullySpecified,
        ErrorCode::AttributeClash,
        ErrorCode::NoRepair,
        ErrorCode::ChaseBudgetExceeded,
        ErrorCode::BinaryDoc,
    ];
    WireError::new(
        CODES[rng.next_u64() as usize % CODES.len()],
        random_string(rng),
    )
}

fn random_results<T>(
    rng: &mut TestRng,
    mut value: impl FnMut(&mut TestRng) -> T,
) -> Vec<DocResult<T>> {
    (0..rng.next_u64() % 5)
        .map(|_| {
            if rng.next_u64().is_multiple_of(3) {
                Err(random_wire_error(rng))
            } else {
                Ok(value(rng))
            }
        })
        .collect()
}

fn random_response(rng: &mut TestRng, codec: Codec) -> ResponseFrame {
    let id = rng.next_u64();
    let body = match rng.next_u64() % 8 {
        0 => ResponseBody::Pong,
        1 => ResponseBody::Busy,
        2 => ResponseBody::HelloOk {
            features: rng.next_u64() as u32 & SUPPORTED_FEATURES,
        },
        3 => ResponseBody::Error(random_wire_error(rng)),
        4 => ResponseBody::Consistency((0..rng.next_u64() % 6).map(|i| i % 2 == 0).collect()),
        5 => ResponseBody::Solutions(random_results(rng, |rng| random_doc(rng, codec))),
        6 => ResponseBody::Answers(random_results(rng, |rng| {
            (0..rng.next_u64() % 4)
                .map(|_| {
                    (0..rng.next_u64() % 3)
                        .map(|_| random_string(rng))
                        .collect()
                })
                .collect()
        })),
        _ => ResponseBody::Booleans(random_results(rng, |rng| rng.next_u64() % 2 == 0)),
    };
    ResponseFrame { id, body }
}

fn random_codec(rng: &mut TestRng) -> Codec {
    if rng.next_u64().is_multiple_of(2) {
        Codec::Text
    } else {
        Codec::Binary
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(256)))]

    #[test]
    fn every_request_shape_round_trips(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::new(seed);
        let codec = random_codec(&mut rng);
        let req = random_request(&mut rng, codec);
        let bytes = encode_request(&req, false);
        let back = decode_request(&bytes, MAX_DOCS_PER_REQUEST, codec, false);
        prop_assert_eq!(Ok(req), back);
    }

    #[test]
    fn every_response_shape_round_trips(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::new(seed);
        let codec = random_codec(&mut rng);
        let resp = random_response(&mut rng, codec);
        let bytes = encode_response(&resp);
        let back = decode_response(&bytes, codec);
        prop_assert_eq!(Ok(resp), back);
    }

    #[test]
    fn truncations_and_corruptions_never_panic(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::new(seed);
        let codec = random_codec(&mut rng);
        let bytes = if seed % 2 == 0 {
            encode_request(&random_request(&mut rng, codec), false)
        } else {
            encode_response(&random_response(&mut rng, codec))
        };
        // Truncate at a random point; decode under both codecs (a codec
        // mismatch must fail structurally, never panic).
        if !bytes.is_empty() {
            let cut = (rng.next_u64() as usize) % bytes.len();
            for codec in [Codec::Text, Codec::Binary] {
                let _ = decode_request(&bytes[..cut], MAX_DOCS_PER_REQUEST, codec, false);
                let _ = decode_response(&bytes[..cut], codec);
            }
        }
        // Flip a random byte.
        let mut corrupted = bytes.clone();
        if !corrupted.is_empty() {
            let at = (rng.next_u64() as usize) % corrupted.len();
            corrupted[at] ^= 1 << (rng.next_u64() % 8);
            for codec in [Codec::Text, Codec::Binary] {
                let _ = decode_request(&corrupted, MAX_DOCS_PER_REQUEST, codec, false);
                let _ = decode_response(&corrupted, codec);
            }
        }
        // A decoded-then-re-encoded frame is stable (when it decodes).
        if let Ok(req) = decode_request(&corrupted, MAX_DOCS_PER_REQUEST, codec, false) {
            prop_assert_eq!(encode_request(&req, false).len(), corrupted.len());
        }
    }

    #[test]
    fn pure_garbage_never_panics(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::new(seed);
        let len = (rng.next_u64() % 64) as usize;
        let garbage: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        for codec in [Codec::Text, Codec::Binary] {
            let _ = decode_request(&garbage, MAX_DOCS_PER_REQUEST, codec, false);
            let _ = decode_response(&garbage, codec);
        }
    }

    /// The binary *document* codec under the same hostile treatment: valid
    /// frames round-trip through the [`WireDoc`] path, and truncated /
    /// corrupted / garbage frames are structured errors, never panics.
    #[test]
    fn binary_document_frames_survive_hostile_bytes(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::new(seed);
        let tree = random_tree(&mut rng);
        let bytes = encode_tree(&tree);
        let doc = WireDoc::Binary(bytes.clone());
        let back = doc.to_tree().expect("valid frame decodes");
        prop_assert_eq!(
            back.ordered_canonical_form(),
            tree.ordered_canonical_form()
        );
        let cut = (rng.next_u64() as usize) % bytes.len();
        prop_assert!(WireDoc::Binary(bytes[..cut].to_vec()).to_tree().is_err());
        let mut corrupted = bytes.clone();
        let at = (rng.next_u64() as usize) % corrupted.len();
        corrupted[at] ^= 1 << (rng.next_u64() % 8);
        if let Ok(tree) = decode_tree(&corrupted) {
            // A surviving corruption must still re-encode to a frame that
            // decodes to the same tree (total decoder, no hidden state).
            let reencoded = encode_tree(&tree);
            let twice = decode_tree(&reencoded).expect("re-encoded frame decodes");
            prop_assert_eq!(
                twice.ordered_canonical_form(),
                tree.ordered_canonical_form()
            );
        }
        // Text of a binary doc and binary of a text doc: decodable or
        // structured error, both without panicking.
        let _ = WireDoc::Text(String::from_utf8_lossy(&corrupted).into_owned()).to_tree();
    }
}

/// The v4 `StatsOk` encoding is pinned byte for byte: a server that did
/// not negotiate `FEATURE_STATS_V2` (empty histogram vec) must produce
/// exactly the hand-assembled pre-v5 frame — the histogram section is
/// absent, not present-but-empty.
#[test]
fn stats_v4_bytes_pinned() {
    let counters = vec![
        ("server.accepted_conns".to_string(), 3u64),
        ("server.uptime_secs".to_string(), 17u64),
    ];
    let resp = ResponseFrame {
        id: 0xDEAD_BEEF_0042,
        body: ResponseBody::StatsOk {
            counters: counters.clone(),
            histograms: vec![],
        },
    };
    // [status][id][op][u16 n][(u32 len + name + u64 value)*] — the exact
    // layout PROTOCOL.md fixed for protocol v4.
    let mut expect = vec![0u8]; // STATUS_OK
    expect.extend_from_slice(&0xDEAD_BEEF_0042u64.to_be_bytes());
    expect.push(17); // OpCode::Stats
    expect.extend_from_slice(&(counters.len() as u16).to_be_bytes());
    for (name, value) in &counters {
        expect.extend_from_slice(&(name.len() as u32).to_be_bytes());
        expect.extend_from_slice(name.as_bytes());
        expect.extend_from_slice(&value.to_be_bytes());
    }
    assert_eq!(encode_response(&resp), expect, "v4 StatsOk bytes changed");
    // And those bytes decode back with no histogram rows.
    assert_eq!(Ok(resp), decode_response(&expect, Codec::Text));
}

/// Stats-v2 histogram rows survive an encode/decode round trip, including
/// empty histograms and rows with multiple sparse buckets.
#[test]
fn stats_v2_histogram_rows_round_trip() {
    use xdx_server::wire::StatsHistogram;
    let resp = ResponseFrame {
        id: 99,
        body: ResponseBody::StatsOk {
            counters: vec![("a".to_string(), 1)],
            histograms: vec![
                StatsHistogram {
                    name: "req.solution.s0.total".to_string(),
                    unit: 0,
                    count: 3,
                    sum: 3000,
                    min: 800,
                    max: 1400,
                    buckets: vec![(10, 2), (11, 1)],
                },
                StatsHistogram {
                    name: "store.fsync".to_string(),
                    unit: 0,
                    count: 0,
                    sum: 0,
                    min: 0,
                    max: 0,
                    buckets: vec![],
                },
            ],
        },
    };
    let bytes = encode_response(&resp);
    assert_eq!(Ok(resp), decode_response(&bytes, Codec::Text));
}
