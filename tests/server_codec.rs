//! Proptests for the `xdx-server` wire codec: every request/response shape
//! round-trips, and hostile inputs — random garbage, truncations and
//! corruptions of valid frames — decode to structured errors without ever
//! panicking. Sampling is deterministic per test (the proptest shim
//! derives the seed from the test name) and scales with `PROPTEST_CASES`.

use proptest::prelude::*;
use xdx_server::wire::{
    decode_request, decode_response, encode_request, encode_response, DocResult, ErrorCode,
    RequestBody, RequestFrame, ResponseBody, ResponseFrame, WireError, MAX_DOCS_PER_REQUEST,
};

fn cases(default: u32) -> u32 {
    ProptestConfig::env_cases().unwrap_or(default)
}

/// Strings exercising every shape the codec must carry: empties, quotes,
/// backslashes, multi-byte UTF-8 (incl. the null marker ⊥), long runs.
fn random_string(rng: &mut TestRng) -> String {
    const PIECES: [&str; 8] = [
        "",
        "db",
        "db[book(@title=\"T0\")]",
        "quote\"back\\slash",
        "⊥7 nulls and ünïcode",
        "($x) :- work(@title=$x)",
        "\0binary\u{1}",
        "spaces and , commas ] brackets",
    ];
    let mut s = PIECES[rng.next_u64() as usize % PIECES.len()].to_string();
    if rng.next_u64().is_multiple_of(7) {
        s.push_str(&"x".repeat((rng.next_u64() % 300) as usize));
    }
    s
}

fn random_docs(rng: &mut TestRng) -> Vec<String> {
    (0..rng.next_u64() % 5)
        .map(|_| random_string(rng))
        .collect()
}

fn random_request(rng: &mut TestRng) -> RequestFrame {
    let id = rng.next_u64();
    let body = match rng.next_u64() % 5 {
        0 => RequestBody::Ping,
        1 => RequestBody::CheckConsistency {
            docs: random_docs(rng),
        },
        2 => RequestBody::CanonicalSolution {
            docs: random_docs(rng),
        },
        3 => RequestBody::CertainAnswers {
            query: random_string(rng),
            docs: random_docs(rng),
        },
        _ => RequestBody::CertainAnswersBoolean {
            query: random_string(rng),
            docs: random_docs(rng),
        },
    };
    RequestFrame { id, body }
}

fn random_wire_error(rng: &mut TestRng) -> WireError {
    const CODES: [ErrorCode; 9] = [
        ErrorCode::MalformedFrame,
        ErrorCode::FrameTooLarge,
        ErrorCode::UnknownOp,
        ErrorCode::TreeParse,
        ErrorCode::QuerySyntax,
        ErrorCode::NotFullySpecified,
        ErrorCode::AttributeClash,
        ErrorCode::NoRepair,
        ErrorCode::ChaseBudgetExceeded,
    ];
    WireError::new(
        CODES[rng.next_u64() as usize % CODES.len()],
        random_string(rng),
    )
}

fn random_results<T>(
    rng: &mut TestRng,
    mut value: impl FnMut(&mut TestRng) -> T,
) -> Vec<DocResult<T>> {
    (0..rng.next_u64() % 5)
        .map(|_| {
            if rng.next_u64().is_multiple_of(3) {
                Err(random_wire_error(rng))
            } else {
                Ok(value(rng))
            }
        })
        .collect()
}

fn random_response(rng: &mut TestRng) -> ResponseFrame {
    let id = rng.next_u64();
    let body = match rng.next_u64() % 7 {
        0 => ResponseBody::Pong,
        1 => ResponseBody::Busy,
        2 => ResponseBody::Error(random_wire_error(rng)),
        3 => ResponseBody::Consistency((0..rng.next_u64() % 6).map(|i| i % 2 == 0).collect()),
        4 => ResponseBody::Solutions(random_results(rng, random_string)),
        5 => ResponseBody::Answers(random_results(rng, |rng| {
            (0..rng.next_u64() % 4)
                .map(|_| {
                    (0..rng.next_u64() % 3)
                        .map(|_| random_string(rng))
                        .collect()
                })
                .collect()
        })),
        _ => ResponseBody::Booleans(random_results(rng, |rng| rng.next_u64() % 2 == 0)),
    };
    ResponseFrame { id, body }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(256)))]

    #[test]
    fn every_request_shape_round_trips(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::new(seed);
        let req = random_request(&mut rng);
        let bytes = encode_request(&req);
        let back = decode_request(&bytes, MAX_DOCS_PER_REQUEST);
        prop_assert_eq!(Ok(req), back);
    }

    #[test]
    fn every_response_shape_round_trips(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::new(seed);
        let resp = random_response(&mut rng);
        let bytes = encode_response(&resp);
        let back = decode_response(&bytes);
        prop_assert_eq!(Ok(resp), back);
    }

    #[test]
    fn truncations_and_corruptions_never_panic(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::new(seed);
        let bytes = if seed % 2 == 0 {
            encode_request(&random_request(&mut rng))
        } else {
            encode_response(&random_response(&mut rng))
        };
        // Truncate at a random point.
        if !bytes.is_empty() {
            let cut = (rng.next_u64() as usize) % bytes.len();
            let _ = decode_request(&bytes[..cut], MAX_DOCS_PER_REQUEST);
            let _ = decode_response(&bytes[..cut]);
        }
        // Flip a random byte.
        let mut corrupted = bytes.clone();
        if !corrupted.is_empty() {
            let at = (rng.next_u64() as usize) % corrupted.len();
            corrupted[at] ^= 1 << (rng.next_u64() % 8);
            let _ = decode_request(&corrupted, MAX_DOCS_PER_REQUEST);
            let _ = decode_response(&corrupted);
        }
        // A decoded-then-re-encoded frame is stable (when it decodes).
        if let Ok(req) = decode_request(&corrupted, MAX_DOCS_PER_REQUEST) {
            prop_assert_eq!(encode_request(&req).len(), corrupted.len());
        }
    }

    #[test]
    fn pure_garbage_never_panics(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::new(seed);
        let len = (rng.next_u64() % 64) as usize;
        let garbage: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let _ = decode_request(&garbage, MAX_DOCS_PER_REQUEST);
        let _ = decode_response(&garbage);
    }
}
