//! Reproduction of the worked chase examples of Section 6.1
//! (Examples 6.3, 6.4 and 6.13 — Figures 5, 6 and 8).

use xml_data_exchange::core::is_solution;
use xml_data_exchange::core::setting::DataExchangeSetting;
use xml_data_exchange::core::solution::{canonical_presolution, canonical_solution};
use xml_data_exchange::xmltree::NullGen;
use xml_data_exchange::{impose_sibling_order, Dtd, Std, XmlTree};

/// Example 6.3 / Figure 5: the canonical pre-solution construction.
#[test]
fn example_6_3_canonical_presolution() {
    // ψ1(x,y,z) = r[A(@l=x), B[C(@n=y, @m=z)]]
    // ψ2(y)     = r[B[C, D], E(@m=y)]
    // ϕ(x,y,z)  = r[A(@a=x, @b=y, @c=z)]
    let source_dtd = Dtd::builder("r")
        .rule("r", "A*")
        .attributes("A", ["@a", "@b", "@c"])
        .build()
        .unwrap();
    let target_dtd = Dtd::builder("r")
        .rule("r", "A* B* E*")
        .rule("B", "C* D*")
        .rule("C", "eps")
        .rule("D", "eps")
        .rule("E", "eps")
        .rule("A", "eps")
        .attributes("A", ["@l"])
        .attributes("C", ["@n", "@m"])
        .attributes("E", ["@m"])
        .build()
        .unwrap();
    let stds = vec![
        Std::parse("r[A(@l=$x), B[C(@n=$y, @m=$z)]] :- r[A(@a=$x, @b=$y, @c=$z)]").unwrap(),
        Std::parse("r[B[C, D], E(@m=$y)] :- r[A(@a=$x, @b=$y, @c=$z)]").unwrap(),
    ];
    let setting = DataExchangeSetting::new(source_dtd, target_dtd, stds);

    // Figure 5(a): the source tree r[A(@a=4, @b=5, @c=6)].
    let mut source = XmlTree::new("r");
    let a = source.add_child(source.root(), "A");
    source.set_attr(a, "@a", "4");
    source.set_attr(a, "@b", "5");
    source.set_attr(a, "@c", "6");
    assert!(setting.source_dtd.conforms(&source));

    // Figure 5(d): cps(T) merges the roots of T_ψ1(4,5,6) and T_ψ2(5).
    let mut nulls = NullGen::new();
    let cps = canonical_presolution(&setting, &source, &mut nulls).unwrap();
    let root_children: Vec<String> = cps
        .children(cps.root())
        .iter()
        .map(|&c| cps.label(c).to_string())
        .collect();
    assert_eq!(root_children, vec!["A", "B", "B", "E"]);
    assert_eq!(cps.size(), 8);

    // The A child carries @l = 4, the first B's C child carries (@n, @m) = (5, 6),
    // the second B has children C and D without attributes yet, and E has @m = 5.
    let kids = cps.children(cps.root()).to_vec();
    assert_eq!(
        cps.attr(kids[0], &"@l".into()).unwrap().as_const(),
        Some("4")
    );
    let c1 = cps.children(kids[1])[0];
    assert_eq!(cps.attr(c1, &"@n".into()).unwrap().as_const(), Some("5"));
    assert_eq!(cps.attr(c1, &"@m".into()).unwrap().as_const(), Some("6"));
    let second_b_children: Vec<String> = cps
        .children(kids[2])
        .iter()
        .map(|&c| cps.label(c).to_string())
        .collect();
    assert_eq!(second_b_children, vec!["C", "D"]);
    assert_eq!(
        cps.attr(kids[3], &"@m".into()).unwrap().as_const(),
        Some("5")
    );

    // Chasing the pre-solution yields a genuine (weak) solution: the chase
    // only needs to add the missing attributes as fresh nulls.
    let solution = canonical_solution(&setting, &source).unwrap();
    assert!(is_solution(&setting, &source, &solution, false));
}

/// Example 6.4 / 6.13 and Figures 6 & 8: the chase against the target DTD
/// with content model `(B C)*`.
#[test]
fn example_6_13_chase_sequence_result() {
    let source_dtd = Dtd::builder("r")
        .rule("r", "A*")
        .attributes("A", ["@a"])
        .build()
        .unwrap();
    // Figure 6(b): r2 → (B C)*, C → D, with @m on B and @n on D.
    let target_dtd = Dtd::builder("r2")
        .rule("r2", "(B C)*")
        .rule("B", "eps")
        .rule("C", "D")
        .rule("D", "eps")
        .attributes("B", ["@m"])
        .attributes("D", ["@n"])
        .build()
        .unwrap();
    let std = Std::parse("r2[B(@m=$x)] :- r[A(@a=$x)]").unwrap();
    let setting = DataExchangeSetting::new(source_dtd, target_dtd, vec![std]);

    // Figure 6(c): the source with two A nodes valued 1 and 2.
    let mut source = XmlTree::new("r");
    for v in ["1", "2"] {
        let a = source.add_child(source.root(), "A");
        source.set_attr(a, "@a", v);
    }

    // Figure 6(d): the pre-solution has exactly the two B children.
    let mut nulls = NullGen::new();
    let cps = canonical_presolution(&setting, &source, &mut nulls).unwrap();
    assert_eq!(cps.size(), 3);
    assert!(!setting.target_dtd.conforms_unordered(&cps));

    // Figure 6(e) / Figure 8 end state: the chase adds two C children, each
    // with a D child carrying a fresh null @n.
    let solution = canonical_solution(&setting, &source).unwrap();
    assert_eq!(solution.size(), 7);
    assert!(setting.target_dtd.conforms_unordered(&solution));
    assert!(is_solution(&setting, &source, &solution, false));
    let d_nodes: Vec<_> = solution
        .nodes()
        .into_iter()
        .filter(|&n| solution.label(n).as_str() == "D")
        .collect();
    assert_eq!(d_nodes.len(), 2);
    let null_values: std::collections::BTreeSet<_> = d_nodes
        .iter()
        .map(|&n| solution.attr(n, &"@n".into()).unwrap().clone())
        .collect();
    assert_eq!(
        null_values.len(),
        2,
        "the two @n nulls are distinct (⊥1, ⊥2)"
    );

    // Materialising the solution orders the children as B C B C, conforming
    // to (B C)* in the ordered sense.
    let mut ordered = solution.clone();
    impose_sibling_order(&mut ordered, &setting.target_dtd).unwrap();
    assert!(setting.target_dtd.conforms(&ordered));
    let order: Vec<String> = ordered
        .children(ordered.root())
        .iter()
        .map(|&c| ordered.label(c).to_string())
        .collect();
    assert_eq!(order, vec!["B", "C", "B", "C"]);
}

/// The attribute-clash failure mode of `ChangeReg` (discussed after
/// Definition 6.9): merging nodes with distinct constants for the same
/// attribute means no solution exists.
#[test]
fn attribute_clash_means_no_solution() {
    let source_dtd = Dtd::builder("r")
        .rule("r", "A*")
        .attributes("A", ["@a"])
        .build()
        .unwrap();
    // The target allows a single B node only.
    let target_dtd = Dtd::builder("r2")
        .rule("r2", "B")
        .rule("B", "eps")
        .attributes("B", ["@m"])
        .build()
        .unwrap();
    let std = Std::parse("r2[B(@m=$x)] :- r[A(@a=$x)]").unwrap();
    let setting = DataExchangeSetting::new(source_dtd, target_dtd, vec![std]);
    let mut source = XmlTree::new("r");
    for v in ["1", "2"] {
        let a = source.add_child(source.root(), "A");
        source.set_attr(a, "@a", v);
    }
    let err = canonical_solution(&setting, &source).unwrap_err();
    assert!(matches!(
        err,
        xml_data_exchange::core::SolutionError::AttributeClash { .. }
    ));
}
