//! Thread-safety stress tests for the compiled layer and ordering/property
//! tests for the parallel batch engine.
//!
//! The compiled layer (`CompiledSetting` and everything reachable from it)
//! is `Send + Sync` since the batch-serving PR; these tests exercise that
//! claim the hard way — one shared compiled setting, many threads, mixed
//! call patterns — and pin the `BatchEngine`'s deterministic output ordering
//! for every parallelism level.

use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;
use xml_data_exchange::core::certain_tuples;
use xml_data_exchange::core::engine::BatchEngine;
use xml_data_exchange::core::setting::{books_to_writers_setting, figure_1_source_tree};
use xml_data_exchange::core::CompiledSetting;
use xml_data_exchange::patterns::{parse_pattern, ConjunctiveTreeQuery, UnionQuery};
use xml_data_exchange::XmlTree;

fn title_query() -> UnionQuery {
    UnionQuery::single(
        ConjunctiveTreeQuery::new(["t"], vec![parse_pattern("work(@title=$t)").unwrap()]).unwrap(),
    )
}

/// A family of distinct conforming source documents for the running-example
/// setting: document `i` has `i+1` books, book `b` carrying `b` authors.
fn sources(n: usize) -> Vec<XmlTree> {
    (0..n)
        .map(|i| {
            let mut t = XmlTree::new("db");
            for b in 0..=i {
                let book = t.add_child(t.root(), "book");
                t.set_attr(book, "@title", format!("T{b}"));
                for a in 0..b {
                    let author = t.add_child(book, "author");
                    t.set_attr(author, "@name", format!("N{a}"));
                    t.set_attr(author, "@aff", format!("U{a}"));
                }
            }
            t
        })
        .collect()
}

/// One shared `Arc<CompiledSetting>`, ≥ 4 threads, each running a mixed
/// workload of consistency checks, chases (canonical solutions) and
/// certain-answer evaluations; every thread must observe exactly the results
/// of the single-threaded reference run.
#[test]
fn shared_compiled_setting_survives_concurrent_mixed_workloads() {
    const THREADS: usize = 6;
    const ROUNDS: usize = 8;
    let setting = books_to_writers_setting();
    let compiled = Arc::new(CompiledSetting::new(&setting));
    let trees = sources(ROUNDS);
    let query = title_query();

    // Single-threaded reference results, computed on a *separate* compiled
    // setting so the shared one starts cold and threads race on cache fills.
    let reference = CompiledSetting::new(&setting);
    let expected_consistent = reference.check_consistency().consistent;
    let expected_sizes: Vec<usize> = trees
        .iter()
        .map(|t| reference.canonical_solution(t).unwrap().size())
        .collect();
    let expected_tuples: Vec<BTreeSet<Vec<String>>> = trees
        .iter()
        .map(|t| certain_tuples(&reference.canonical_solution(t).unwrap(), &query))
        .collect();

    std::thread::scope(|scope| {
        for thread_id in 0..THREADS {
            let compiled = Arc::clone(&compiled);
            let trees = &trees;
            let query = &query;
            let expected_sizes = &expected_sizes;
            let expected_tuples = &expected_tuples;
            scope.spawn(move || {
                // Stagger the per-thread schedule so threads hit different
                // call kinds (and different cache entries) at the same time.
                for round in 0..ROUNDS {
                    let i = (round + thread_id) % trees.len();
                    match (round + thread_id) % 3 {
                        0 => {
                            let verdict = compiled.check_consistency();
                            assert_eq!(verdict.consistent, expected_consistent);
                        }
                        1 => {
                            let solution = compiled.canonical_solution(&trees[i]).unwrap();
                            assert_eq!(solution.size(), expected_sizes[i], "tree {i}");
                            assert!(compiled.is_solution(&trees[i], &solution, false));
                        }
                        _ => {
                            let solution = compiled.canonical_solution(&trees[i]).unwrap();
                            let tuples = certain_tuples(&solution, query);
                            assert_eq!(tuples, expected_tuples[i], "tree {i}");
                        }
                    }
                }
            });
        }
    });
}

/// The chase's repair-context cache is the contended structure; hammer it
/// specifically with documents that force `ChangeReg` repairs on several
/// element types at once.
#[test]
fn concurrent_chases_share_repair_contexts() {
    let setting = books_to_writers_setting();
    let compiled = Arc::new(CompiledSetting::new(&setting));
    let source = figure_1_source_tree();
    let expected = compiled.canonical_solution(&source).unwrap().size();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let compiled = Arc::clone(&compiled);
            let source = &source;
            scope.spawn(move || {
                for _ in 0..16 {
                    let solution = compiled.canonical_solution(source).unwrap();
                    assert_eq!(solution.size(), expected);
                }
            });
        }
    });
}

/// One `Arc`'d engine — one shared `CompiledSetting`, one shared query plan
/// per batch call — hammered by several threads running
/// `certain_answers_batch` (each batch itself fanning out over the engine's
/// worker pool) while other threads run mixed chases. Every slot of every
/// concurrent batch must hold exactly the sequential path's output: same
/// order, same certain-tuple sets, same solution sizes. This pins the
/// planned evaluator's determinism under sharing: `PatternPlan`s live in the
/// compiled setting and are read concurrently; `TreeIndex`es are per-tree.
#[test]
fn shared_engine_certain_answers_batch_across_threads() {
    const THREADS: usize = 5;
    const ROUNDS: usize = 6;
    let setting = books_to_writers_setting();
    let trees = sources(10);
    let query = title_query();

    // Sequential reference: a separate engine pinned to parallelism 1, so
    // the shared engine starts cold and threads race on its cache fills.
    let sequential = BatchEngine::new(&setting).parallelism(1);
    let expected: Vec<(BTreeSet<Vec<String>>, usize)> = sequential
        .certain_answers_batch(&trees, &query)
        .into_iter()
        .map(|r| {
            let answers = r.unwrap();
            (answers.tuples, answers.solution.size())
        })
        .collect();

    let engine = Arc::new(BatchEngine::new(&setting).parallelism(3));
    std::thread::scope(|scope| {
        for thread_id in 0..THREADS {
            let engine = Arc::clone(&engine);
            let trees = &trees;
            let query = &query;
            let expected = &expected;
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    if (round + thread_id) % 3 == 0 {
                        // Mixed load on the same compiled caches.
                        let i = (round + thread_id) % trees.len();
                        let solution = engine.compiled().canonical_solution(&trees[i]).unwrap();
                        assert_eq!(solution.size(), expected[i].1, "tree {i}");
                    }
                    let got = engine.certain_answers_batch(trees, query);
                    assert_eq!(got.len(), expected.len());
                    for (i, r) in got.into_iter().enumerate() {
                        let answers = r.unwrap();
                        assert_eq!(answers.tuples, expected[i].0, "slot {i} match set");
                        assert_eq!(
                            answers.solution.size(),
                            expected[i].1,
                            "slot {i} solution size"
                        );
                    }
                }
            });
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `BatchEngine` output order matches input order for every parallelism
    /// in 1..=8, on batches of varying size: every slot of every batch API
    /// must hold exactly the sequential result for the same input index.
    #[test]
    fn batch_engine_output_order_matches_input_order(
        parallelism in 1usize..=8,
        batch_size in 0usize..=12,
    ) {
        let setting = books_to_writers_setting();
        let trees = sources(batch_size);
        let query = title_query();
        let sequential = BatchEngine::new(&setting).parallelism(1);
        let engine = BatchEngine::new(&setting).parallelism(parallelism);

        let expected: Vec<BTreeSet<Vec<String>>> = sequential
            .certain_answers_batch(&trees, &query)
            .into_iter()
            .map(|r| r.unwrap().tuples)
            .collect();
        let got: Vec<BTreeSet<Vec<String>>> = engine
            .certain_answers_batch(&trees, &query)
            .into_iter()
            .map(|r| r.unwrap().tuples)
            .collect();
        prop_assert_eq!(&got, &expected);

        let sizes: Vec<usize> = engine
            .canonical_solutions_batch(&trees)
            .into_iter()
            .map(|r| r.unwrap().size())
            .collect();
        let expected_sizes: Vec<usize> = sequential
            .canonical_solutions_batch(&trees)
            .into_iter()
            .map(|r| r.unwrap().size())
            .collect();
        prop_assert_eq!(&sizes, &expected_sizes);

        let consistent = engine.check_consistency_batch(&trees);
        prop_assert_eq!(consistent.len(), trees.len());
        prop_assert!(consistent.iter().all(|&c| c));
    }
}
