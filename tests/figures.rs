//! Reproduction of Figures 1 and 2 (experiments F1/F2 in EXPERIMENTS.md):
//! the running books→writers example, its canonical solution and the
//! hand-drawn target document of Figure 2.

use xml_data_exchange::core::setting::{books_to_writers_setting, figure_1_source_tree};
use xml_data_exchange::core::{certain_answers, check_consistency, classify_setting, is_solution};
use xml_data_exchange::patterns::homomorphism::find_homomorphism;
use xml_data_exchange::patterns::{parse_pattern, ConjunctiveTreeQuery, UnionQuery};
use xml_data_exchange::xmltree::{NullGen, XmlTree};
use xml_data_exchange::{canonical_solution, impose_sibling_order};

/// The target document of Figure 2(b), with ⊥1 shared between the two
/// "Combinatorial Optimization" works and ⊥2 on "Computational Complexity".
fn figure_2_target_tree() -> XmlTree {
    let mut gen = NullGen::new();
    let bottom1 = gen.fresh_value();
    let bottom2 = gen.fresh_value();
    let mut t = XmlTree::new("bib");
    let w1 = t.add_child(t.root(), "writer");
    t.set_attr(w1, "@name", "Papadimitriou");
    let k1 = t.add_child(w1, "work");
    t.set_attr(k1, "@title", "Combinatorial Optimization");
    t.set_attr(k1, "@year", bottom1.clone());
    let k2 = t.add_child(w1, "work");
    t.set_attr(k2, "@title", "Computational Complexity");
    t.set_attr(k2, "@year", bottom2);
    let w2 = t.add_child(t.root(), "writer");
    t.set_attr(w2, "@name", "Steiglitz");
    let k3 = t.add_child(w2, "work");
    t.set_attr(k3, "@title", "Combinatorial Optimization");
    t.set_attr(k3, "@year", bottom1);
    t
}

#[test]
fn figure_1_source_conforms_to_its_dtd() {
    let setting = books_to_writers_setting();
    let source = figure_1_source_tree();
    assert!(setting.source_dtd.conforms(&source));
    assert_eq!(source.size(), 6);
    assert_eq!(source.depth(), 3);
}

#[test]
fn figure_2_document_is_a_solution_for_figure_1() {
    let setting = books_to_writers_setting();
    let source = figure_1_source_tree();
    let figure2 = figure_2_target_tree();
    assert!(setting.target_dtd.conforms(&figure2));
    assert!(is_solution(&setting, &source, &figure2, true));
}

#[test]
fn the_running_example_is_consistent_and_tractable() {
    let setting = books_to_writers_setting();
    assert!(check_consistency(&setting).consistent);
    assert!(classify_setting(&setting).is_tractable());
}

#[test]
fn canonical_solution_embeds_into_figure_2() {
    // Lemma 6.15: the canonical solution maps homomorphically into every
    // solution, in particular into the hand-drawn Figure 2 document.
    let setting = books_to_writers_setting();
    let source = figure_1_source_tree();
    let canonical = canonical_solution(&setting, &source).unwrap();
    let figure2 = figure_2_target_tree();
    let h = find_homomorphism(&canonical, &figure2).expect("homomorphism exists");
    assert!(xml_data_exchange::patterns::is_homomorphism(
        &canonical, &figure2, &h
    ));
}

#[test]
fn canonical_solution_can_be_materialised_as_an_ordered_document() {
    let setting = books_to_writers_setting();
    let source = figure_1_source_tree();
    let mut solution = canonical_solution(&setting, &source).unwrap();
    assert!(setting.target_dtd.conforms_unordered(&solution));
    impose_sibling_order(&mut solution, &setting.target_dtd).unwrap();
    assert!(setting.target_dtd.conforms(&solution));
    assert!(is_solution(&setting, &source, &solution, true));
}

#[test]
fn introduction_queries_have_the_answers_the_paper_states() {
    let setting = books_to_writers_setting();
    let source = figure_1_source_tree();

    // "Who is the writer of the work named Computational Complexity?" — the
    // answer is Papadimitriou regardless of the particular solution.
    let q1 = UnionQuery::single(
        ConjunctiveTreeQuery::new(
            ["w"],
            vec![
                parse_pattern("writer(@name=$w)[work(@title=\"Computational Complexity\")]")
                    .unwrap(),
            ],
        )
        .unwrap(),
    );
    let a1 = certain_answers(&setting, &source, &q1).unwrap();
    assert_eq!(a1.tuples.len(), 1);
    assert!(a1.tuples.contains(&vec!["Papadimitriou".to_string()]));
    // The same query evaluated directly over the Figure 2 document agrees.
    assert!(q1
        .evaluate(&figure_2_target_tree())
        .iter()
        .any(|row| row[0].as_const() == Some("Papadimitriou")));

    // "What are the works written in 1994?" — cannot be answered with
    // certainty.
    let q2 = UnionQuery::single(
        ConjunctiveTreeQuery::new(
            ["t"],
            vec![parse_pattern("work(@title=$t, @year=\"1994\")").unwrap()],
        )
        .unwrap(),
    );
    let a2 = certain_answers(&setting, &source, &q2).unwrap();
    assert!(a2.tuples.is_empty());
}

#[test]
fn certain_answers_agree_between_canonical_and_figure_2_solutions_on_constants() {
    // Both are solutions, so every certain tuple must appear in the answers
    // over each of them.
    let setting = books_to_writers_setting();
    let source = figure_1_source_tree();
    let q = UnionQuery::single(
        ConjunctiveTreeQuery::new(
            ["w", "t"],
            vec![parse_pattern("writer(@name=$w)[work(@title=$t)]").unwrap()],
        )
        .unwrap(),
    );
    let certain = certain_answers(&setting, &source, &q).unwrap();
    assert_eq!(certain.tuples.len(), 3);
    let over_figure2 = q.evaluate(&figure_2_target_tree());
    for row in &certain.tuples {
        assert!(over_figure2.iter().any(|r| {
            r.iter()
                .map(|v| v.as_const().unwrap_or(""))
                .collect::<Vec<_>>()
                == row.iter().map(|s| s.as_str()).collect::<Vec<_>>()
        }));
    }
}
