//! Proptests for the `xmltree::binary` preorder codec against the text
//! codec as differential oracle: `decode ∘ encode` is the identity on
//! arbitrary trees (nulls, hostile names, deep chains included), and both
//! codecs carry exactly the same trees — a document round-tripped through
//! binary equals the same document round-tripped through text.

use proptest::prelude::*;
use xdx_xmltree::binary::{decode_tree, encode_tree, encoded_len};
use xdx_xmltree::{parse_tree, tree_to_text, NullId, Value, XmlTree};

fn cases(default: u32) -> u32 {
    ProptestConfig::env_cases().unwrap_or(default)
}

/// Names that stress both codecs: text-quoting hazards (quotes,
/// backslashes, brackets, commas) and multi-byte UTF-8 including the ⊥
/// null marker the text parser must not confuse with a real null.
fn random_name(rng: &mut TestRng) -> String {
    const PIECES: [&str; 8] = [
        "a",
        "book",
        "name with spaces",
        "qu\"ote",
        "back\\slash",
        "⊥7",
        "commas, and ] brackets [",
        "ünïcode·",
    ];
    let mut s = PIECES[rng.next_u64() as usize % PIECES.len()].to_string();
    if rng.next_u64().is_multiple_of(11) {
        s.push_str(&"n".repeat((rng.next_u64() % 40) as usize));
    }
    s
}

fn random_value(rng: &mut TestRng) -> Value {
    if rng.next_u64().is_multiple_of(3) {
        Value::Null(NullId(rng.next_u64()))
    } else {
        Value::constant(random_name(rng))
    }
}

/// An arbitrary tree: random fan-out/nesting, shared and unique labels,
/// 0–3 attributes per node mixing constants and nulls.
fn random_tree(rng: &mut TestRng) -> XmlTree {
    let mut tree = XmlTree::new(random_name(rng));
    let mut nodes = vec![tree.root()];
    for _ in 0..rng.next_u64() % 20 {
        let parent = nodes[rng.next_u64() as usize % nodes.len()];
        let node = tree.add_child(parent, random_name(rng));
        for _ in 0..rng.next_u64() % 4 {
            let value = random_value(rng);
            tree.set_attr(node, format!("@{}", random_name(rng)), value);
        }
        nodes.push(node);
    }
    tree
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(256)))]

    #[test]
    fn decode_of_encode_is_the_identity(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::new(seed);
        let tree = random_tree(&mut rng);
        let bytes = encode_tree(&tree);
        prop_assert_eq!(bytes.len(), encoded_len(&tree));
        let back = decode_tree(&bytes).expect("own encoding decodes");
        back.validate().expect("decoded tree is structurally valid");
        // Ordered canonical form pins labels, attribute maps (constants
        // AND null ids), sibling order and nesting exactly.
        prop_assert_eq!(back.ordered_canonical_form(), tree.ordered_canonical_form());
        // Re-encoding is deterministic byte-for-byte.
        prop_assert_eq!(encode_tree(&back), bytes);
    }

    #[test]
    fn binary_and_text_codecs_carry_the_same_trees(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::new(seed);
        let tree = random_tree(&mut rng);
        let via_binary = decode_tree(&encode_tree(&tree)).expect("binary round trip");
        let via_text = parse_tree(&tree_to_text(&tree)).expect("text round trip");
        prop_assert_eq!(
            via_binary.ordered_canonical_form(),
            via_text.ordered_canonical_form()
        );
        // And the text serialization of the binary round trip is stable.
        prop_assert_eq!(tree_to_text(&via_binary), tree_to_text(&tree));
    }

    #[test]
    fn deep_chains_round_trip_without_recursion(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::new(seed);
        // 10k–40k deep: a recursive encoder or decoder would blow the
        // stack long before this.
        let depth = 10_000 + (rng.next_u64() % 30_000) as usize;
        let mut tree = XmlTree::new("r");
        let mut cur = tree.root();
        for i in 0..depth {
            cur = tree.add_child(cur, if i % 2 == 0 { "a" } else { "b" });
        }
        tree.set_attr(cur, "@leaf", Value::Null(NullId(seed)));
        let back = decode_tree(&encode_tree(&tree)).expect("deep chain decodes");
        // (`XmlTree::depth` is recursive, so compare sizes and walk to the
        // leaf iteratively instead.)
        prop_assert_eq!(back.size(), tree.size());
        let mut node = back.root();
        while let Some(&child) = back.children(node).first() {
            node = child;
        }
        prop_assert_eq!(
            back.attr(node, &"@leaf".into()),
            Some(&Value::Null(NullId(seed)))
        );
    }

    #[test]
    fn truncated_encodings_are_errors_not_panics(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::new(seed);
        let tree = random_tree(&mut rng);
        let bytes = encode_tree(&tree);
        let cut = (rng.next_u64() as usize) % bytes.len();
        prop_assert!(decode_tree(&bytes[..cut]).is_err());
    }
}
