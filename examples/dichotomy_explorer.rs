//! Explore the dichotomy theorem (Theorem 6.2): which regular expressions and
//! which data exchange settings fall on the tractable side, and why.
//!
//! Run with `cargo run --example dichotomy_explorer`.

use xml_data_exchange::core::classify_setting;
use xml_data_exchange::core::setting::{books_to_writers_setting, DataExchangeSetting};
use xml_data_exchange::relang::{c_of, check_univocality, parse_regex, UnivocalityConfig};
use xml_data_exchange::{Dtd, Std};

fn main() {
    println!("== Univocality of regular expressions (Definition 6.9) ==");
    println!("{:<18} {:>6}  verdict", "expression", "c(r)");
    let zoo = [
        "b c+ d* e?",
        "(b*|c*)",
        "(b c)* (d e)*",
        "(a|b|c)*",
        "(B C)*",
        "a | a a b*",
        "(a b)|(a c)",
        "(c d)* (c d e)*",
    ];
    let config = UnivocalityConfig::default();
    for src in zoo {
        let r = parse_regex(src).unwrap();
        let verdict = check_univocality(&r, &config);
        println!("{src:<18} {:>6}  {verdict}", c_of(&r));
    }

    println!("\n== Classifying whole settings ==");
    // 1. The running example: fully specified, nested-relational target.
    let clio = books_to_writers_setting();
    println!("books→writers (Figures 1–2): {}", classify_setting(&clio));

    // 2. Univocal but not nested-relational target: still tractable.
    let source = Dtd::builder("r")
        .rule("r", "A*")
        .attributes("A", ["@a"])
        .build()
        .unwrap();
    let target = Dtd::builder("r2")
        .rule("r2", "(B C)*")
        .rule("C", "D")
        .attributes("B", ["@m"])
        .attributes("D", ["@n"])
        .build()
        .unwrap();
    let setting = DataExchangeSetting::new(
        source.clone(),
        target,
        vec![Std::parse("r2[B(@m=$x)] :- r[A(@a=$x)]").unwrap()],
    );
    println!(
        "Example 6.4 ((BC)* target):  {}",
        classify_setting(&setting)
    );

    // 3. Non-univocal target content model: coNP-complete class.
    let non_univocal_target = Dtd::builder("r2").rule("r2", "a | a a b*").build().unwrap();
    let setting2 = DataExchangeSetting::new(
        source.clone(),
        non_univocal_target,
        vec![Std::parse("r2[a] :- r[A(@a=$x)]").unwrap()],
    );
    println!(
        "c(r) = 2 target:             {}",
        classify_setting(&setting2)
    );

    // 4. Non-fully-specified STD: Theorem 5.11 applies.
    let target3 = Dtd::builder("r2")
        .rule("r2", "a*")
        .attributes("a", ["@v"])
        .build()
        .unwrap();
    let setting3 = DataExchangeSetting::new(
        source,
        target3,
        vec![Std::parse("//a(@v=$x) :- r[A(@a=$x)]").unwrap()],
    );
    println!(
        "descendant target pattern:   {}",
        classify_setting(&setting3)
    );
}
