//! Serve the running example over the wire — and smoke-test it.
//!
//! Server mode (runs until drained or killed; the CI smoke step writes
//! `drain` to its stdin — or just closes it — for a graceful exit that
//! flushes in-flight responses, answers new requests with `GoAway` and
//! checkpoints the store):
//!
//! ```text
//! cargo run --release --example serve -- --unix /tmp/xdx.sock
//! cargo run --release --example serve -- --tcp 127.0.0.1:7878
//! cargo run --release --example serve -- --tcp 127.0.0.1:0 --unix /tmp/xdx.sock
//! ```
//!
//! Client smoke mode (connects, runs every operation once, verifies the
//! results against in-process oracles, exits non-zero on any mismatch):
//!
//! ```text
//! cargo run --release --example serve -- --client-smoke /tmp/xdx.sock
//! cargo run --release --example serve -- --client-smoke 127.0.0.1:7878
//! cargo run --release --example serve -- --client-smoke /tmp/xdx.sock --codec binary
//! ```
//!
//! `--codec text` (the default) speaks protocol v1; `--codec binary`
//! negotiates the v2 binary document frames + chunked responses via `Hello`
//! first, so the CI smoke step exercises both serving paths.
//!
//! The served setting is the paper's books→writers running example
//! (Figures 1 and 2), so the smoke client's documents are Figure 1(b).

use std::path::Path;
use xdx_server::{Client, Server, ServerConfig};
use xml_data_exchange::core::certain_answers;
use xml_data_exchange::core::setting::{books_to_writers_setting, figure_1_source_tree};
use xml_data_exchange::patterns::{parse_pattern, ConjunctiveTreeQuery, UnionQuery};
use xml_data_exchange::xmltree::tree_to_text;
use xml_data_exchange::XmlTree;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tcp: Option<String> = None;
    let mut unix: Option<String> = None;
    let mut smoke: Option<String> = None;
    let mut codec = "text".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tcp" => {
                tcp = Some(args.get(i + 1).expect("--tcp needs an address").clone());
                i += 2;
            }
            "--unix" => {
                unix = Some(args.get(i + 1).expect("--unix needs a path").clone());
                i += 2;
            }
            "--client-smoke" => {
                smoke = Some(
                    args.get(i + 1)
                        .expect("--client-smoke needs a socket path or address")
                        .clone(),
                );
                i += 2;
            }
            "--codec" => {
                codec = args.get(i + 1).expect("--codec needs text|binary").clone();
                i += 2;
            }
            other => {
                eprintln!("unknown argument {other}");
                eprintln!(
                    "usage: serve [--tcp ADDR] [--unix PATH] | --client-smoke TARGET [--codec text|binary]"
                );
                std::process::exit(2);
            }
        }
    }
    let binary = match codec.as_str() {
        "text" => false,
        "binary" => true,
        other => {
            eprintln!("unknown codec {other} (expected text or binary)");
            std::process::exit(2);
        }
    };

    if let Some(target) = smoke {
        client_smoke(&target, binary);
        return;
    }
    if tcp.is_none() && unix.is_none() {
        eprintln!(
            "usage: serve [--tcp ADDR] [--unix PATH] | --client-smoke TARGET [--codec text|binary]"
        );
        std::process::exit(2);
    }

    let setting = books_to_writers_setting();
    let server = Server::bind(
        &setting,
        tcp.as_deref(),
        unix.as_deref().map(Path::new),
        ServerConfig::default(),
    )
    .expect("bind listeners");
    if let Some(addr) = server.tcp_addr() {
        println!("serving books→writers on tcp://{addr}");
    }
    if let Some(path) = &unix {
        println!("serving books→writers on unix://{path}");
    }
    println!("protocol: crates/server/PROTOCOL.md (ops: ping, consistency, solution, answers)");
    // A `drain` line on stdin — or stdin closing — triggers a graceful
    // drain: stop accepting, answer new requests with GoAway, flush
    // in-flight responses, checkpoint, exit. SIGKILL still works; drain
    // is just kinder, and the CI smoke step uses it.
    let control = server.control();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        let mut line = String::new();
        loop {
            line.clear();
            match std::io::BufRead::read_line(&mut stdin.lock(), &mut line) {
                Ok(0) => break, // stdin closed
                Ok(_) if line.trim() == "drain" => break,
                Ok(_) => {}
                Err(_) => break,
            }
        }
        println!("draining (grace 10s)...");
        control.drain(std::time::Duration::from_secs(10));
    });
    server.run().expect("event loop");
    println!("drained; exiting");
}

/// Connect, run every operation once, check against in-process oracles.
fn client_smoke(target: &str, binary: bool) {
    let mut client = if target.contains('/') {
        Client::connect_unix(target).expect("connect unix")
    } else {
        Client::connect_tcp(target).expect("connect tcp")
    };
    if binary {
        client.use_binary().expect("negotiate binary codec");
        println!("hello: binary documents + chunked responses negotiated");
    }
    client.ping().expect("ping");
    println!("ping: ok");

    let setting = books_to_writers_setting();
    let source = figure_1_source_tree();
    let docs: Vec<XmlTree> = vec![source.clone(), XmlTree::new("db")];

    let consistent = client.check_consistency(&docs).expect("consistency");
    assert_eq!(consistent, vec![true, true], "consistency verdicts");
    println!("check_consistency: {consistent:?}");

    let solutions = client
        .canonical_solution_texts(&docs)
        .expect("canonical solutions");
    let local = xml_data_exchange::canonical_solution(&setting, &source).expect("local chase");
    assert_eq!(
        solutions[0].as_ref().expect("remote chase"),
        &tree_to_text(&local),
        "served solution must equal the local one byte-for-byte"
    );
    println!(
        "canonical_solution: {} bytes (matches local result)",
        solutions[0].as_ref().unwrap().len()
    );

    let query = UnionQuery::single(
        ConjunctiveTreeQuery::new(
            ["w"],
            vec![
                parse_pattern("writer(@name=$w)[work(@title=\"Computational Complexity\")]")
                    .unwrap(),
            ],
        )
        .unwrap(),
    );
    let answers = client.certain_answers(&query, &docs[..1]).expect("answers");
    let expect: Vec<Vec<String>> = certain_answers(&setting, &source, &query)
        .unwrap()
        .tuples
        .into_iter()
        .collect();
    assert_eq!(answers[0].as_ref().unwrap(), &expect, "certain answers");
    println!("certain_answers: {answers:?}");

    let boolean = UnionQuery::single(ConjunctiveTreeQuery::boolean(vec![parse_pattern(
        "bib[writer(@name=\"Steiglitz\")]",
    )
    .unwrap()]));
    let booleans = client
        .certain_answers_boolean(&boolean, &docs[..1])
        .expect("booleans");
    assert_eq!(booleans[0].as_ref().unwrap(), &true, "boolean answer");
    println!("certain_answers_boolean: {booleans:?}");

    println!("smoke test passed");
}
