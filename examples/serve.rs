//! Serve the running example over the wire — and smoke-test it.
//!
//! Server mode (runs until drained or killed; the CI smoke step writes
//! `drain` to its stdin — or just closes it — for a graceful exit that
//! flushes in-flight responses, answers new requests with `GoAway` and
//! checkpoints the store):
//!
//! ```text
//! cargo run --release --example serve -- --unix /tmp/xdx.sock
//! cargo run --release --example serve -- --tcp 127.0.0.1:7878
//! cargo run --release --example serve -- --tcp 127.0.0.1:0 --unix /tmp/xdx.sock
//! ```
//!
//! Client smoke mode (connects, runs every operation once, verifies the
//! results against in-process oracles, exits non-zero on any mismatch):
//!
//! ```text
//! cargo run --release --example serve -- --client-smoke /tmp/xdx.sock
//! cargo run --release --example serve -- --client-smoke 127.0.0.1:7878
//! cargo run --release --example serve -- --client-smoke /tmp/xdx.sock --codec binary
//! ```
//!
//! `--codec text` (the default) speaks protocol v1; `--codec binary`
//! negotiates the v2 binary document frames + chunked responses via `Hello`
//! first, so the CI smoke step exercises both serving paths.
//!
//! The served setting is the paper's books→writers running example
//! (Figures 1 and 2), so the smoke client's documents are Figure 1(b).

use std::path::Path;
use xdx_server::{Client, Server, ServerConfig};
use xml_data_exchange::core::certain_answers;
use xml_data_exchange::core::setting::{books_to_writers_setting, figure_1_source_tree};
use xml_data_exchange::patterns::{parse_pattern, ConjunctiveTreeQuery, UnionQuery};
use xml_data_exchange::xmltree::tree_to_text;
use xml_data_exchange::XmlTree;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tcp: Option<String> = None;
    let mut unix: Option<String> = None;
    let mut smoke: Option<String> = None;
    let mut codec = "text".to_string();
    let mut stats_every: Option<u64> = None;
    let mut slow_ms: Option<u64> = None;
    let usage = "usage: serve [--tcp ADDR] [--unix PATH] [--stats-every SECS] [--slow-ms N] | --client-smoke TARGET [--codec text|binary]";
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tcp" => {
                tcp = Some(args.get(i + 1).expect("--tcp needs an address").clone());
                i += 2;
            }
            "--unix" => {
                unix = Some(args.get(i + 1).expect("--unix needs a path").clone());
                i += 2;
            }
            "--client-smoke" => {
                smoke = Some(
                    args.get(i + 1)
                        .expect("--client-smoke needs a socket path or address")
                        .clone(),
                );
                i += 2;
            }
            "--codec" => {
                codec = args.get(i + 1).expect("--codec needs text|binary").clone();
                i += 2;
            }
            "--stats-every" => {
                stats_every = Some(
                    args.get(i + 1)
                        .expect("--stats-every needs seconds")
                        .parse()
                        .expect("--stats-every takes an integer number of seconds"),
                );
                i += 2;
            }
            "--slow-ms" => {
                slow_ms = Some(
                    args.get(i + 1)
                        .expect("--slow-ms needs milliseconds")
                        .parse()
                        .expect("--slow-ms takes an integer number of milliseconds"),
                );
                i += 2;
            }
            other => {
                eprintln!("unknown argument {other}");
                eprintln!("{usage}");
                std::process::exit(2);
            }
        }
    }
    let binary = match codec.as_str() {
        "text" => false,
        "binary" => true,
        other => {
            eprintln!("unknown codec {other} (expected text or binary)");
            std::process::exit(2);
        }
    };

    if let Some(target) = smoke {
        client_smoke(&target, binary);
        return;
    }
    if tcp.is_none() && unix.is_none() {
        eprintln!("{usage}");
        std::process::exit(2);
    }

    let setting = books_to_writers_setting();
    let config = ServerConfig {
        slow_request_threshold: slow_ms.map(std::time::Duration::from_millis),
        ..ServerConfig::default()
    };
    let server = Server::bind(
        &setting,
        tcp.as_deref(),
        unix.as_deref().map(Path::new),
        config,
    )
    .expect("bind listeners");
    if let Some(addr) = server.tcp_addr() {
        println!("serving books→writers on tcp://{addr}");
    }
    if let Some(path) = &unix {
        println!("serving books→writers on unix://{path}");
    }
    println!("protocol: crates/server/PROTOCOL.md (ops: ping, consistency, solution, answers)");
    // A `drain` line on stdin — or stdin closing — triggers a graceful
    // drain: stop accepting, answer new requests with GoAway, flush
    // in-flight responses, checkpoint, exit. SIGKILL still works; drain
    // is just kinder, and the CI smoke step uses it. A `stats` line dumps
    // the Prometheus-style metrics rendering to stdout.
    let control = server.control();
    let stats_handle = server.stats_handle();
    {
        let stats_handle = stats_handle.clone();
        std::thread::spawn(move || {
            let stdin = std::io::stdin();
            let mut line = String::new();
            loop {
                line.clear();
                match std::io::BufRead::read_line(&mut stdin.lock(), &mut line) {
                    Ok(0) => break, // stdin closed
                    Ok(_) if line.trim() == "drain" => break,
                    Ok(_) if line.trim() == "stats" => {
                        print!("{}", stats_handle.render_prometheus());
                    }
                    Ok(_) => {}
                    Err(_) => break,
                }
            }
            println!("draining (grace 10s)...");
            control.drain(std::time::Duration::from_secs(10));
        });
    }
    if let Some(secs) = stats_every {
        let stats_handle = stats_handle.clone();
        let period = std::time::Duration::from_secs(secs.max(1));
        std::thread::spawn(move || loop {
            std::thread::sleep(period);
            print!("{}", stats_handle.render_prometheus());
        });
    }
    server.run().expect("event loop");
    println!("drained; exiting");
}

/// Connect, run every operation once, check against in-process oracles.
fn client_smoke(target: &str, binary: bool) {
    let mut client = if target.contains('/') {
        Client::connect_unix(target).expect("connect unix")
    } else {
        Client::connect_tcp(target).expect("connect tcp")
    };
    if binary {
        client.use_binary().expect("negotiate binary codec");
        println!("hello: binary documents + chunked responses negotiated");
    }
    client.ping().expect("ping");
    println!("ping: ok");

    let setting = books_to_writers_setting();
    let source = figure_1_source_tree();
    let docs: Vec<XmlTree> = vec![source.clone(), XmlTree::new("db")];

    let consistent = client.check_consistency(&docs).expect("consistency");
    assert_eq!(consistent, vec![true, true], "consistency verdicts");
    println!("check_consistency: {consistent:?}");

    let solutions = client
        .canonical_solution_texts(&docs)
        .expect("canonical solutions");
    let local = xml_data_exchange::canonical_solution(&setting, &source).expect("local chase");
    assert_eq!(
        solutions[0].as_ref().expect("remote chase"),
        &tree_to_text(&local),
        "served solution must equal the local one byte-for-byte"
    );
    println!(
        "canonical_solution: {} bytes (matches local result)",
        solutions[0].as_ref().unwrap().len()
    );

    let query = UnionQuery::single(
        ConjunctiveTreeQuery::new(
            ["w"],
            vec![
                parse_pattern("writer(@name=$w)[work(@title=\"Computational Complexity\")]")
                    .unwrap(),
            ],
        )
        .unwrap(),
    );
    let answers = client.certain_answers(&query, &docs[..1]).expect("answers");
    let expect: Vec<Vec<String>> = certain_answers(&setting, &source, &query)
        .unwrap()
        .tuples
        .into_iter()
        .collect();
    assert_eq!(answers[0].as_ref().unwrap(), &expect, "certain answers");
    println!("certain_answers: {answers:?}");

    let boolean = UnionQuery::single(ConjunctiveTreeQuery::boolean(vec![parse_pattern(
        "bib[writer(@name=\"Steiglitz\")]",
    )
    .unwrap()]));
    let booleans = client
        .certain_answers_boolean(&boolean, &docs[..1])
        .expect("booleans");
    assert_eq!(booleans[0].as_ref().unwrap(), &true, "boolean answer");
    println!("certain_answers_boolean: {booleans:?}");

    // Negotiate Stats-v2 and fetch the typed snapshot: the requests this
    // smoke run just made must already show up in the phase histograms.
    let accepted = client
        .negotiate(xdx_server::FEATURE_STATS_V2)
        .expect("negotiate stats v2");
    assert_ne!(
        accepted & xdx_server::FEATURE_STATS_V2,
        0,
        "server must accept FEATURE_STATS_V2"
    );
    let stats = client.stats().expect("stats");
    assert!(
        !stats.histograms.is_empty(),
        "stats v2 must carry histogram rows after served requests"
    );
    println!("stats (v2):\n{stats}");

    println!("smoke test passed");
}
