//! A nested-relational ("Clio-class") exchange scenario, the practically
//! relevant tractable case of Theorems 4.5 and Corollary 6.11.
//!
//! An HR database of departments with employees and projects is exchanged
//! into a personnel directory grouped by person. Demonstrates: the
//! polynomial-time consistency check for nested-relational DTDs, the
//! canonical solution, null invention, and certain answers.
//!
//! Run with `cargo run --example clio_nested_relational`.

use xml_data_exchange::core::consistency::check_consistency_nested_relational;
use xml_data_exchange::core::setting::DataExchangeSetting;
use xml_data_exchange::core::{certain_answers, classify_setting};
use xml_data_exchange::patterns::{parse_pattern, ConjunctiveTreeQuery, UnionQuery};
use xml_data_exchange::{canonical_solution, impose_sibling_order, Dtd, Std, TreeBuilder};

fn build_setting() -> DataExchangeSetting {
    let source_dtd = Dtd::builder("company")
        .rule("company", "dept*")
        .rule("dept", "employee* project*")
        .rule("employee", "eps")
        .rule("project", "eps")
        .attributes("dept", ["@dname"])
        .attributes("employee", ["@ename", "@role"])
        .attributes("project", ["@pname", "@budget"])
        .build()
        .unwrap();
    let target_dtd = Dtd::builder("directory")
        .rule("directory", "person* team*")
        .rule("person", "assignment*")
        .rule("assignment", "eps")
        .rule("team", "eps")
        .attributes("person", ["@name", "@phone"])
        .attributes("assignment", ["@dept", "@role"])
        .attributes("team", ["@dept", "@lead"])
        .build()
        .unwrap();
    let stds = vec![
        // every employee becomes a person with an assignment; the phone
        // number is unknown (a null)
        Std::parse(
            "directory[person(@name=$e, @phone=$ph)[assignment(@dept=$d, @role=$r)]] \
             :- company[dept(@dname=$d)[employee(@ename=$e, @role=$r)]]",
        )
        .unwrap(),
        // every department with a project gets a team entry with an unknown lead
        Std::parse(
            "directory[team(@dept=$d, @lead=$l)] :- company[dept(@dname=$d)[project(@pname=$p)]]",
        )
        .unwrap(),
    ];
    DataExchangeSetting::new(source_dtd, target_dtd, stds)
}

fn main() {
    let setting = build_setting();
    setting.validate(true).expect("well-formed setting");
    assert!(setting.is_nested_relational());
    println!("Setting is nested-relational (the class handled by Clio).");
    println!(
        "Consistency (O(n·m²) algorithm of Theorem 4.5): {}",
        check_consistency_nested_relational(&setting).unwrap()
    );
    println!("Classification: {}\n", classify_setting(&setting));

    let source = TreeBuilder::new("company")
        .child("dept", |d| {
            d.attr("@dname", "Databases")
                .child("employee", |e| {
                    e.attr("@ename", "Ada").attr("@role", "researcher")
                })
                .child("employee", |e| {
                    e.attr("@ename", "Edgar").attr("@role", "engineer")
                })
                .child("project", |p| {
                    p.attr("@pname", "Exchange").attr("@budget", "100")
                })
        })
        .child("dept", |d| {
            d.attr("@dname", "Systems").child("employee", |e| {
                e.attr("@ename", "Ada").attr("@role", "consultant")
            })
        })
        .build();
    assert!(setting.source_dtd.conforms(&source));
    println!("=== Source (company database) ===\n{source}");

    let mut solution = canonical_solution(&setting, &source).unwrap();
    impose_sibling_order(&mut solution, &setting.target_dtd).unwrap();
    println!("=== Canonical solution (personnel directory) ===\n{solution}");

    // Certain answers: which (person, dept) assignments hold in every solution?
    let q = UnionQuery::single(
        ConjunctiveTreeQuery::new(
            ["who", "dept"],
            vec![parse_pattern("person(@name=$who)[assignment(@dept=$dept)]").unwrap()],
        )
        .unwrap(),
    );
    let answers = certain_answers(&setting, &source, &q).unwrap();
    println!("Certain (person, department) assignments:");
    for row in &answers.tuples {
        println!("  {} works in {}", row[0], row[1]);
    }

    // Phone numbers are invented nulls, so asking for them certainly yields nothing.
    let phones = UnionQuery::single(
        ConjunctiveTreeQuery::new(["ph"], vec![parse_pattern("person(@phone=$ph)").unwrap()])
            .unwrap(),
    );
    let phone_answers = certain_answers(&setting, &source, &phones).unwrap();
    println!(
        "Certain phone numbers: {:?} (unknown in the source, hence none are certain)",
        phone_answers.tuples
    );
}
