//! The coNP-hardness reduction of Theorem 5.11, executed end to end.
//!
//! A 3-CNF formula θ is turned into a source document `T_θ`, a data exchange
//! setting whose second STD is *not* fully specified, and a Boolean query `Q`
//! with wildcards such that `certain(Q, T_θ) = false` iff θ is satisfiable.
//! For a satisfiable θ the example also materialises the counter-example
//! solution from the proof and shows that the query indeed fails on it.
//!
//! Run with `cargo run --example certain_answers_3sat`.

use xml_data_exchange::core::classify_setting;
use xml_data_exchange::core::gadgets::theorem_5_11;
use xml_data_exchange::core::gadgets::three_sat::CnfFormula;
use xml_data_exchange::core::is_solution;

fn report(name: &str, formula: &CnfFormula) {
    println!("== {name} ==");
    let gadget = theorem_5_11::build(formula);
    println!(
        "source tree T_θ: {} nodes ({} clauses, {} variables)",
        gadget.source_tree.size(),
        formula.clauses.len(),
        formula.num_vars
    );
    println!(
        "setting classification: {}",
        classify_setting(&gadget.setting)
    );
    let certain = theorem_5_11::certain_answer(formula);
    println!("certain(Q, T_θ) = {certain}");
    match formula.brute_force_satisfiable() {
        Some(assignment) => {
            let witness = theorem_5_11::solution_from_assignment(formula, &assignment);
            assert!(is_solution(
                &gadget.setting,
                &gadget.source_tree,
                &witness,
                false
            ));
            let q_holds = gadget.query.evaluate_boolean(&witness);
            println!(
                "θ is satisfiable; the proof's counter-example solution has {} nodes, Q holds on it: {q_holds}",
                witness.size()
            );
            assert!(!q_holds);
        }
        None => println!("θ is unsatisfiable: Q holds in every solution."),
    }
    println!();
}

fn main() {
    report(
        "paper example: (x1 ∨ x2 ∨ ¬x3) ∧ (¬x2 ∨ x3 ∨ ¬x4)",
        &CnfFormula::paper_example(),
    );
    report("unsatisfiable: x ∧ ¬x", &CnfFormula::tiny_unsatisfiable());

    // A slightly larger random instance to show the exponential flavour of
    // the decision on the intractable side.
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(2026);
    let formula = CnfFormula::random(12, 30, &mut rng);
    report("random 3-CNF with 12 variables and 30 clauses", &formula);
}
