//! Consistency analysis of XML data exchange settings (Section 4).
//!
//! Shows (a) the paper's introductory inconsistent setting, (b) how
//! consistency can hinge on whether problematic source patterns are
//! avoidable, (c) the polynomial nested-relational fast path versus the
//! general automata-based procedure, and (d) the 3SAT-to-consistency
//! reduction used for the NP-hardness of restricted consistency
//! (Proposition 4.4 flavour).
//!
//! Run with `cargo run --example consistency_analysis`.

use xml_data_exchange::core::consistency::{
    check_consistency, check_consistency_general, check_consistency_nested_relational,
};
use xml_data_exchange::core::gadgets::consistency_np;
use xml_data_exchange::core::gadgets::three_sat::CnfFormula;
use xml_data_exchange::core::setting::{books_to_writers_setting, DataExchangeSetting};
use xml_data_exchange::{Dtd, Std};

fn section_4_example() -> DataExchangeSetting {
    // STD r2[one[two(@a = x)]] :- r with target DTD r2 → one|two: inconsistent
    // no matter what the source DTD is.
    let source = Dtd::builder("r").rule("r", "a*").build().unwrap();
    let target = Dtd::builder("r2")
        .rule("r2", "one|two")
        .rule("one", "eps")
        .rule("two", "eps")
        .build()
        .unwrap();
    let std = Std::parse("r2[one[two(@a=$x)]] :- r").unwrap();
    DataExchangeSetting::new(source, target, vec![std])
}

fn main() {
    println!("== 1. The inconsistent setting from Section 4 ==");
    let bad = section_4_example();
    let verdict = check_consistency(&bad);
    println!(
        "   target DTD forbids the pattern forced by the STD → consistent = {} ({:?} method)\n",
        verdict.consistent, verdict.method
    );

    println!("== 2. Consistency hinges on whether the source pattern is avoidable ==");
    let target = Dtd::builder("r2")
        .rule("r2", "one?")
        .rule("one", "eps")
        .build()
        .unwrap();
    let relaxed_source = Dtd::builder("db")
        .rule("db", "book*")
        .rule("book", "author*")
        .build()
        .unwrap();
    let forced_source = Dtd::builder("db")
        .rule("db", "book+")
        .rule("book", "author+")
        .build()
        .unwrap();
    let std = || Std::parse("r2[one[ghost]] :- db[book[author]]").unwrap();
    let avoidable = DataExchangeSetting::new(relaxed_source, target.clone(), vec![std()]);
    let unavoidable = DataExchangeSetting::new(forced_source, target, vec![std()]);
    println!(
        "   books may have no authors  → consistent = {}",
        check_consistency_general(&avoidable)
    );
    println!(
        "   every book has an author   → consistent = {}\n",
        check_consistency_general(&unavoidable)
    );

    println!("== 3. Nested-relational fast path vs general procedure ==");
    let clio = books_to_writers_setting();
    println!(
        "   Theorem 4.5 O(n·m²) algorithm: {}",
        check_consistency_nested_relational(&clio).unwrap()
    );
    println!(
        "   general automata procedure:    {}\n",
        check_consistency_general(&clio)
    );

    println!("== 4. 3SAT encoded as a consistency question (Proposition 4.4) ==");
    for (name, formula) in [
        (
            "satisfiable   (x1∨x2∨¬x3)∧(¬x2∨x3∨¬x4)",
            CnfFormula::paper_example(),
        ),
        ("unsatisfiable (x)∧(¬x)", CnfFormula::tiny_unsatisfiable()),
    ] {
        let setting = consistency_np::build(&formula);
        let consistent = check_consistency_general(&setting);
        println!(
            "   {name}: setting with {} STDs over {} element types → consistent = {consistent}",
            setting.stds.len(),
            setting.source_dtd.element_types().len(),
        );
        assert_eq!(consistent, consistency_np::expected_consistent(&formula));
    }
}
