//! Quickstart: the paper's running example (Figures 1 and 2).
//!
//! Restructures a bibliography of books-with-authors (source schema) into
//! writers-with-works (target schema), materialises a canonical solution and
//! answers the two queries discussed in the paper's introduction with
//! certain-answer semantics.
//!
//! Run with `cargo run --example quickstart`.

use xml_data_exchange::core::setting::{books_to_writers_setting, figure_1_source_tree};
use xml_data_exchange::core::{certain_answers, check_consistency, classify_setting};
use xml_data_exchange::patterns::{parse_pattern, ConjunctiveTreeQuery, UnionQuery};
use xml_data_exchange::{canonical_solution, impose_sibling_order};

fn main() {
    let setting = books_to_writers_setting();
    let source = figure_1_source_tree();

    println!("=== Data exchange setting (Example 3.4) ===");
    println!("{setting}");
    println!("=== Source document (Figure 1) ===");
    println!("{source}");

    let verdict = check_consistency(&setting);
    println!(
        "Consistency: {} (checked with the {:?} method)",
        verdict.consistent, verdict.method
    );
    println!("Dichotomy classification: {}", classify_setting(&setting));

    // Build and materialise a canonical solution (Section 6.1 + Prop 5.2).
    let mut solution = canonical_solution(&setting, &source).expect("the setting is consistent");
    impose_sibling_order(&mut solution, &setting.target_dtd).expect("weakly conforming");
    println!("\n=== Canonical solution (cf. Figure 2; ⊥ are invented nulls) ===");
    println!("{solution}");

    // Query 1: who is the writer of the work named "Computational Complexity"?
    let q1 = UnionQuery::single(
        ConjunctiveTreeQuery::new(
            ["writer"],
            vec![
                parse_pattern("writer(@name=$writer)[work(@title=\"Computational Complexity\")]")
                    .unwrap(),
            ],
        )
        .unwrap(),
    );
    let a1 = certain_answers(&setting, &source, &q1).unwrap();
    println!(
        "Who wrote \"Computational Complexity\"?  certain answers = {:?}",
        a1.tuples
    );

    // Query 2: what are the works written in 1994? (not answerable with certainty)
    let q2 = UnionQuery::single(
        ConjunctiveTreeQuery::new(
            ["title"],
            vec![parse_pattern("work(@title=$title, @year=\"1994\")").unwrap()],
        )
        .unwrap(),
    );
    let a2 = certain_answers(&setting, &source, &q2).unwrap();
    println!(
        "Works written in 1994?                   certain answers = {:?}",
        a2.tuples
    );

    // Query 3: all (writer, title) pairs that hold in every solution.
    let q3 = UnionQuery::single(
        ConjunctiveTreeQuery::new(
            ["writer", "title"],
            vec![parse_pattern("writer(@name=$writer)[work(@title=$title)]").unwrap()],
        )
        .unwrap(),
    );
    let a3 = certain_answers(&setting, &source, &q3).unwrap();
    println!("All certain (writer, work) pairs:");
    for row in &a3.tuples {
        println!("  {} — {}", row[0], row[1]);
    }
}
