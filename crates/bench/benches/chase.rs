//! Experiment E13 — Section 6.1, the chase itself: restart-scan reference
//! vs the worklist (dirty-queue) chase.
//!
//! Three presolution shapes isolate the chase from pattern evaluation and
//! instantiation (trees are generated directly, then chased):
//!
//! * `repair_light/…` — complete structure, missing attributes: no
//!   structural repairs, both implementations do one pass (parity check);
//! * `repair_heavy/…` — `Θ(n)` merge/extend repairs: the reference restarts
//!   its `O(n)` scan after each (`O(n²)` total), the worklist re-checks
//!   only the touched nodes (`O(n)`);
//! * `deep/…` — a `d → d? e` chain missing every `e`: one repair per level,
//!   quadratic restart cost vs linear worklist cost.
//!
//! Every iteration clones the input tree (both rows pay the same clone).
//! `XDX_BENCH_FAST=1` shrinks the sweep and the measurement window — the CI
//! smoke step uses it so the bench cannot rot without failing fast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xdx_bench::{chase_deep_setting, chase_deep_tree, chase_setting, chase_tree};
use xdx_core::solution::chase_reference;
use xdx_core::CompiledSetting;
use xdx_xmltree::NullGen;

fn fast_mode() -> bool {
    std::env::var("XDX_BENCH_FAST").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn bench(c: &mut Criterion) {
    let fast = fast_mode();
    let mut group = c.benchmark_group("chase");
    if fast {
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(30))
            .measurement_time(Duration::from_millis(120));
    } else {
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(900));
    }

    let sizes: &[usize] = if fast { &[80] } else { &[80, 160, 320, 640] };
    let setting = chase_setting();
    let compiled = CompiledSetting::new(&setting);
    for shape in ["repair_light", "repair_heavy"] {
        for &nodes in sizes {
            let tree = chase_tree(shape, nodes);
            group.bench_with_input(
                BenchmarkId::new(format!("reference/{shape}"), nodes),
                &tree,
                |b, tree| {
                    b.iter(|| {
                        let mut t = tree.clone();
                        chase_reference(&mut t, &setting, &mut NullGen::new()).unwrap();
                        t
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("worklist/{shape}"), nodes),
                &tree,
                |b, tree| {
                    b.iter(|| {
                        let mut t = tree.clone();
                        compiled.chase(&mut t, &mut NullGen::new()).unwrap();
                        t
                    })
                },
            );
        }
    }

    let deep_setting = chase_deep_setting();
    let deep_compiled = CompiledSetting::new(&deep_setting);
    let depths: &[usize] = if fast { &[64] } else { &[64, 128, 256, 512] };
    for &depth in depths {
        let tree = chase_deep_tree(depth);
        group.bench_with_input(
            BenchmarkId::new("reference/deep", depth),
            &tree,
            |b, tree| {
                b.iter(|| {
                    let mut t = tree.clone();
                    chase_reference(&mut t, &deep_setting, &mut NullGen::new()).unwrap();
                    t
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("worklist/deep", depth),
            &tree,
            |b, tree| {
                b.iter(|| {
                    let mut t = tree.clone();
                    deep_compiled.chase(&mut t, &mut NullGen::new()).unwrap();
                    t
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
