//! Experiment E8 — Definition 6.9 / Proposition 6.10: deciding whether a
//! content model is univocal (the classification step of the dichotomy).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xdx_bench::univocality_zoo;
use xdx_relang::{check_univocality, UnivocalityConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("univocality");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    let config = UnivocalityConfig::default();
    for (name, regex) in univocality_zoo() {
        group.bench_with_input(BenchmarkId::new("zoo", name), &regex, |b, r| {
            b.iter(|| check_univocality(r, &config))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
