//! Experiment E2 — Theorem 4.1: general consistency checking is
//! EXPTIME-complete; the decision procedure blows up on adversarial settings
//! while the nested-relational fast path stays polynomial on Clio-class
//! settings of comparable size.
//!
//! The adversarial family is the 3SAT reduction of `gadgets::consistency_np`
//! (Proposition 4.4(b) flavour): the number of propositional variables
//! controls the blow-up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;
use xdx_bench::clio_setting;
use xdx_core::consistency::{check_consistency_general, check_consistency_nested_relational};
use xdx_core::gadgets::consistency_np;
use xdx_core::gadgets::three_sat::CnfFormula;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("consistency_general");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));

    // Adversarial: 3SAT-encoding settings, growing number of variables.
    let mut rng = StdRng::seed_from_u64(42);
    for vars in [2usize, 3, 4, 5] {
        let formula = CnfFormula::random(vars, 4, &mut rng);
        let setting = consistency_np::build(&formula);
        group.bench_with_input(
            BenchmarkId::new("sat_gadget_vars", vars),
            &setting,
            |b, s| b.iter(|| check_consistency_general(s)),
        );
    }

    // Control: the general procedure and the fast path on the same benign
    // Clio-class setting.
    for stds in [2usize, 4, 6] {
        let setting = clio_setting(4, stds);
        group.bench_with_input(
            BenchmarkId::new("general_on_clio_stds", stds),
            &setting,
            |b, s| b.iter(|| check_consistency_general(s)),
        );
        group.bench_with_input(
            BenchmarkId::new("nested_fast_path_on_clio_stds", stds),
            &setting,
            |b, s| b.iter(|| check_consistency_nested_relational(s).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
