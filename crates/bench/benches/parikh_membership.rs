//! Experiment E3 — Proposition 5.3: membership in the permutation language
//! `π(r)` is NP-complete in general but polynomial in `|w|` for every fixed
//! `r`.
//!
//! For a fixed expression `(a0 … a{k-1})*` the counting simulation scales
//! polynomially with the word length; growing the alphabet (`k`) makes the
//! problem harder. The brute-force permutation search is included on tiny
//! inputs as the exponential baseline.
//!
//! Three implementations are compared on the fixed-regex sweep:
//! `reference/…` (counting simulation over `BTreeSet` state sets),
//! `bitset/…` (the same memoised search over bit masks), and
//! `semilinear/…` (membership in the compiled Pilling normal form of
//! Lemma 5.4 — compile once, O(vector) per query).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;
use std::time::Duration;
use xdx_bench::{balanced_star_regex, balanced_word};
use xdx_relang::parikh::{parikh_image, perm_accepts, perm_accepts_bruteforce, AlphabetMap};
use xdx_relang::{BitsetNfa, Nfa};

fn counts_of(word: &[String]) -> BTreeMap<String, u64> {
    let mut counts = BTreeMap::new();
    for s in word {
        *counts.entry(s.clone()).or_insert(0) += 1;
    }
    counts
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("parikh_membership");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    // Fixed r, growing |w|: polynomial (Proposition 5.3, second part).
    for reps in [4usize, 16, 64, 128] {
        let regex = balanced_star_regex(3);
        let nfa = Nfa::from_regex(&regex);
        let counts = counts_of(&balanced_word(3, reps));
        group.bench_with_input(
            BenchmarkId::new("reference/fixed_regex_word_length", 3 * reps),
            &(&nfa, &counts),
            |b, (nfa, counts)| b.iter(|| perm_accepts(nfa, counts)),
        );
        let bitset = BitsetNfa::from_nfa(&nfa);
        group.bench_with_input(
            BenchmarkId::new("bitset/fixed_regex_word_length", 3 * reps),
            &(&bitset, &counts),
            |b, (bitset, counts)| b.iter(|| bitset.perm_accepts(counts)),
        );
        let alphabet = AlphabetMap::of_regex(&regex);
        let image = parikh_image(&regex, &alphabet);
        let vector = alphabet.counts_of_map(&counts).unwrap();
        group.bench_with_input(
            BenchmarkId::new("semilinear/fixed_regex_word_length", 3 * reps),
            &(&image, &vector),
            |b, (image, vector)| b.iter(|| image.contains(vector)),
        );
    }

    // Growing alphabet at fixed word length per symbol.
    for k in [2usize, 3, 4, 5] {
        let regex = balanced_star_regex(k);
        let nfa = Nfa::from_regex(&regex);
        let counts = counts_of(&balanced_word(k, 8));
        group.bench_with_input(
            BenchmarkId::new("reference/growing_alphabet", k),
            &(&nfa, &counts),
            |b, (nfa, counts)| b.iter(|| perm_accepts(nfa, counts)),
        );
        let bitset = BitsetNfa::from_nfa(&nfa);
        group.bench_with_input(
            BenchmarkId::new("bitset/growing_alphabet", k),
            &(&bitset, &counts),
            |b, (bitset, counts)| b.iter(|| bitset.perm_accepts(counts)),
        );
    }

    // Exponential baseline: enumerate permutations (tiny inputs only).
    for reps in [2usize, 3] {
        let regex = balanced_star_regex(3);
        let nfa = Nfa::from_regex(&regex);
        let word = balanced_word(3, reps);
        group.bench_with_input(
            BenchmarkId::new("bruteforce_permutations", 3 * reps),
            &(&nfa, &word),
            |b, (nfa, word)| b.iter(|| perm_accepts_bruteforce(nfa, word)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
