//! Experiment E17 — the multi-tenant setting registry: what does the
//! content-addressed compiled-setting cache buy, and what does an eviction
//! cost to undo?
//!
//! * `put_cold` — uploading a never-seen setting text: parse + semantic
//!   validation + engine compilation, the full admission path.
//! * `put_hit` — re-uploading byte-identical text: canonicalize + hash +
//!   artifact reuse under the registry lock; this is the multi-tenant
//!   steady state (every replica of a tenant uploads the same text).
//! * `request_compiled` — a canonical-solution request addressed to a
//!   setting whose artifact is resident: the per-request resolve is a hash
//!   lookup plus an `Arc` clone.
//! * `request_recompile` — the same request after `EvictSetting`: resolve
//!   recompiles from the retained canonical text on demand, which prices
//!   exactly what the LRU trades away under cost pressure.
//!
//! All rows go over a loopback Unix socket through the v3
//! (`FEATURE_SETTINGS`) framing, so they include the wire cost a real
//! tenant pays. `XDX_BENCH_FAST=1` shrinks sampling for the CI smoke step.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use xdx_server::{Client, Server, ServerConfig, FEATURE_SETTINGS};
use xdx_xmltree::XmlTree;

fn fast_mode() -> bool {
    std::env::var("XDX_BENCH_FAST").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// A small self-contained exchange setting; `salt` lands in an attribute
/// name so every salt yields a distinct canonical text (and content hash)
/// that still compiles.
fn items_text(salt: u64) -> String {
    format!(
        "source {{ root db; rule db = item*; rule item = eps; \
         attrs item = @k, @s{salt}; }} \
         target {{ root out; rule out = rec*; rule rec = eps; \
         attrs rec = @k; }} \
         std out[rec(@k=$x)] :- db[item(@k=$x)];"
    )
}

/// A document conforming to the `items` source DTD.
fn item_doc(n: usize) -> XmlTree {
    let mut t = XmlTree::new("db");
    for k in 0..n {
        let item = t.add_child(t.root(), "item");
        t.set_attr(item, "@k", format!("K{k}"));
    }
    t
}

fn bench(c: &mut Criterion) {
    let fast = fast_mode();
    let mut group = c.benchmark_group("registry");
    if fast {
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(30))
            .measurement_time(Duration::from_millis(120));
    } else {
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(900));
    }

    let setting = xdx_core::settext::parse_setting(&items_text(0)).expect("bench setting parses");
    let sock = std::env::temp_dir().join(format!("xdx-bench-registry-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    std::thread::scope(|scope| {
        let config = ServerConfig {
            workers: 2,
            // Cold puts rebind one id with ever-new text; keep the cost
            // budget tight so stale artifacts rotate out instead of
            // growing the compiled map for the whole run.
            max_compiled_cost: 1 << 16,
            ..ServerConfig::default()
        };
        let server = Server::bind(&setting, None, Some(&sock), config).expect("bind bench server");
        let control = server.control();
        scope.spawn(move || server.run());
        let mut client = Client::connect_unix(&sock).expect("connect bench client");
        let accepted = client.negotiate(FEATURE_SETTINGS).expect("negotiate v3");
        assert_ne!(accepted & FEATURE_SETTINGS, 0, "server must accept v3");

        // -- put_cold: a never-seen text every iteration --------------------
        let mut salt = 1u64;
        group.bench_function("put_cold", |b| {
            b.iter(|| {
                salt += 1;
                let (hash, reused) = client.put_setting(1, &items_text(salt)).unwrap();
                assert!(!reused, "salted text must be a fresh compile");
                hash
            })
        });

        // -- put_hit: byte-identical re-upload ------------------------------
        let fixed = items_text(1);
        client.put_setting(2, &fixed).unwrap();
        group.bench_function("put_hit", |b| {
            b.iter(|| {
                let (hash, reused) = client.put_setting(2, &fixed).unwrap();
                assert!(reused, "identical text must hit the cache");
                hash
            })
        });

        // -- request_compiled vs request_recompile --------------------------
        let doc = [item_doc(if fast { 8 } else { 64 })];
        client.set_setting(2);
        group.bench_function("request_compiled", |b| {
            b.iter(|| {
                let results = client.canonical_solution_docs(&doc).unwrap();
                assert!(results.iter().all(Result::is_ok));
                results.len()
            })
        });
        group.bench_function("request_recompile", |b| {
            b.iter(|| {
                assert!(client.evict_setting(2).unwrap(), "artifact was resident");
                let results = client.canonical_solution_docs(&doc).unwrap();
                assert!(results.iter().all(Result::is_ok));
                results.len()
            })
        });

        control.shutdown();
    });
    let _ = std::fs::remove_file(&sock);
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
