//! Experiment E10 — batch throughput vs. thread count.
//!
//! One compiled setting (now `Send + Sync`) serves a whole slice of source
//! documents through `BatchEngine`'s scoped thread pool. The sweep holds the
//! workload fixed (one batch of Clio-class documents, chased end-to-end to
//! canonical solutions, plus a certain-answers variant) and varies only the
//! `parallelism(n)` knob, so `threads/1` vs `threads/4` is exactly the
//! scaling headroom of the shared compiled layer.
//!
//! Interpretation note: wall-clock scaling is bounded by the *hardware*
//! parallelism of the machine running the suite. On a single-core container
//! every `threads/n` row measures the same serial work plus pool overhead
//! (expect ~1×, i.e. the pool costs little); the >1× scaling claim is only
//! observable on multi-core hosts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xdx_bench::{clio_query, clio_setting, clio_source};
use xdx_core::engine::BatchEngine;
use xdx_xmltree::XmlTree;

fn batch(num_fields: usize, docs: usize, nodes: usize) -> Vec<XmlTree> {
    (0..docs)
        .map(|i| clio_source(num_fields, nodes, 1000 + i as u64))
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_engine");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));

    let setting = clio_setting(8, 8);
    let trees = batch(8, 32, 48);
    let query = clio_query();

    for threads in [1usize, 2, 4, 8] {
        let engine = BatchEngine::new(&setting).parallelism(threads);
        // Warm the per-setting caches once so the sweep measures steady-state
        // serving, not first-call compilation.
        let warm = engine.canonical_solutions_batch(&trees[..1]);
        assert!(warm[0].is_ok());
        group.bench_with_input(
            BenchmarkId::new("canonical_solutions/threads", threads),
            &threads,
            |b, _| b.iter(|| engine.canonical_solutions_batch(&trees)),
        );
        group.bench_with_input(
            BenchmarkId::new("certain_answers/threads", threads),
            &threads,
            |b, _| b.iter(|| engine.certain_answers_batch(&trees, &query)),
        );
        group.bench_with_input(
            BenchmarkId::new("check_consistency/threads", threads),
            &threads,
            |b, _| b.iter(|| engine.check_consistency_batch(&trees)),
        );
    }

    // Control: the same batch through the sequential per-document API (no
    // engine, no pool) — the `threads/1` rows should sit on top of this.
    let engine = BatchEngine::new(&setting).parallelism(1);
    group.bench_with_input(BenchmarkId::new("sequential_map/control", 0), &0, |b, _| {
        b.iter(|| {
            trees
                .iter()
                .map(|t| engine.compiled().canonical_solution(t))
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
