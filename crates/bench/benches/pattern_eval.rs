//! Experiment E12 — the join-ordered pattern evaluator (`patterns::plan`)
//! vs the enumerate-then-merge reference (`eval::all_matches_reference`)
//! across pattern shapes and tree sizes.
//!
//! `reference/<shape>` re-enumerates every node per sub-pattern with linear
//! dedup scans; `planned/<shape>` evaluates a pre-built [`PatternPlan`]
//! against a per-tree [`TreeIndex`] (both amortised exactly as the compiled
//! layer amortises them: one plan per pattern per setting, one index per
//! tree shared by all patterns).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xdx_bench::{pattern_eval_dtd, pattern_eval_patterns, pattern_eval_tree};
use xdx_patterns::eval::all_matches_reference;
use xdx_patterns::plan::{PatternPlan, TreeIndex};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("pattern_eval");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));

    let dtd = pattern_eval_dtd();
    for nodes in [40usize, 160, 640] {
        let tree = pattern_eval_tree(nodes, 11);
        assert!(dtd.conforms(&tree), "E12 trees must conform");
        for (shape, pattern) in pattern_eval_patterns() {
            group.bench_with_input(
                BenchmarkId::new(format!("reference/{shape}"), nodes),
                &(&tree, &pattern),
                |b, (tree, pattern)| b.iter(|| all_matches_reference(tree, pattern)),
            );
            let plan = PatternPlan::new(&pattern, dtd.compiled());
            let index = TreeIndex::new(&tree, dtd.compiled());
            group.bench_with_input(
                BenchmarkId::new(format!("planned/{shape}"), nodes),
                &(&tree, &plan, &index),
                |b, (tree, plan, index)| b.iter(|| plan.all_matches(tree, index)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
