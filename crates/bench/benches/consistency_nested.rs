//! Experiment E1 — Theorem 4.5: consistency of nested-relational (Clio-class)
//! settings is `O(n·m²)`.
//!
//! Sweeps the DTD size (`n`, via the number of record fields) and the total
//! STD size (`m`, via the number of dependencies) independently; the measured
//! time should grow roughly linearly in `n` and at most quadratically in `m`.
//!
//! Each point is measured twice: `reference/…` rebuilds `D°`/`D*`, their
//! unique trees and the erased patterns on every call (the uncompiled path),
//! while `compiled/…` holds a [`CompiledSetting`] and only re-evaluates the
//! pre-compiled patterns against the cached trees — the compile-once,
//! evaluate-many fast path this suite tracks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xdx_bench::clio_setting;
use xdx_core::consistency::check_consistency_nested_relational_reference;
use xdx_core::CompiledSetting;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("consistency_nested_relational");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));

    // Sweep n (DTD size) at fixed m.
    for fields in [4usize, 8, 16, 32, 64] {
        let setting = clio_setting(fields, 8);
        group.bench_with_input(
            BenchmarkId::new("reference/sweep_dtd_size_n", setting.dtds_size()),
            &setting,
            |b, s| b.iter(|| check_consistency_nested_relational_reference(s).unwrap()),
        );
        let compiled = CompiledSetting::new(&setting);
        // Fill the lazy caches outside the timed region: the compiled path's
        // contract is compile once, evaluate many.
        compiled.check_consistency_nested_relational().unwrap();
        group.bench_with_input(
            BenchmarkId::new("compiled/sweep_dtd_size_n", setting.dtds_size()),
            &compiled,
            |b, s| b.iter(|| s.check_consistency_nested_relational().unwrap()),
        );
    }

    // Sweep m (STD size) at fixed n.
    for stds in [4usize, 16, 64, 256] {
        let setting = clio_setting(8, stds);
        group.bench_with_input(
            BenchmarkId::new("reference/sweep_std_size_m", setting.stds_size()),
            &setting,
            |b, s| b.iter(|| check_consistency_nested_relational_reference(s).unwrap()),
        );
        let compiled = CompiledSetting::new(&setting);
        compiled.check_consistency_nested_relational().unwrap();
        group.bench_with_input(
            BenchmarkId::new("compiled/sweep_std_size_m", setting.stds_size()),
            &compiled,
            |b, s| b.iter(|| s.check_consistency_nested_relational().unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
