//! Experiment E4 — Proposition 5.2: an unordered tree weakly conforming to a
//! DTD can be re-ordered into an ordered conforming tree in polynomial time.
//!
//! The workload shuffles the children of a node with content model
//! `(a b)* (c d)*`; the measured time should grow polynomially (roughly
//! quadratically for this content model) with the number of children.
//!
//! `reference/…` is the `BTreeSet` NFA-simulation path; `compiled/…` runs
//! the same greedy algorithm on the pre-built bit-parallel NFA with a shared
//! memo table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xdx_bench::shuffled_children;
use xdx_core::impose_sibling_order;
use xdx_core::ordering::impose_sibling_order_reference;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sibling_ordering");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));

    for groups in [5usize, 10, 20, 40] {
        let (dtd, tree) = shuffled_children(groups, 20260614);
        // Compile outside the timed region.
        dtd.compiled();
        group.bench_with_input(
            BenchmarkId::new("reference/children", groups * 4),
            &(&dtd, &tree),
            |b, (dtd, tree)| {
                b.iter(|| {
                    let mut t = (*tree).clone();
                    impose_sibling_order_reference(&mut t, dtd).unwrap();
                    t
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("compiled/children", groups * 4),
            &(&dtd, &tree),
            |b, (dtd, tree)| {
                b.iter(|| {
                    let mut t = (*tree).clone();
                    impose_sibling_order(&mut t, dtd).unwrap();
                    t
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
