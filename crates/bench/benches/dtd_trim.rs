//! Experiment E9 — Lemma 2.2: trimming a DTD to an equivalent consistent DTD
//! is polynomial-time in the DTD size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xdx_bench::trimmable_dtd;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("dtd_trim");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    for size in [8usize, 32, 128, 256] {
        let dtd = trimmable_dtd(size, size);
        group.bench_with_input(
            BenchmarkId::new("element_types", 2 * size),
            &dtd,
            |b, d| b.iter(|| d.trim_to_consistent().unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
