//! Experiment E9 — Lemma 2.2: trimming a DTD to an equivalent consistent DTD
//! is polynomial-time in the DTD size.
//!
//! Alongside the trimming sweep, conformance of a wide document against the
//! trimmable DTD is measured on both paths: `conforms_reference/…` (per-node
//! NFA simulation) versus `conforms_compiled/…` (dense-table DFA over
//! interned symbols).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xdx_bench::trimmable_dtd;
use xdx_xmltree::XmlTree;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("dtd_trim");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    for size in [8usize, 32, 128, 256] {
        let dtd = trimmable_dtd(size, size);
        group.bench_with_input(BenchmarkId::new("element_types", 2 * size), &dtd, |b, d| {
            b.iter(|| d.trim_to_consistent().unwrap())
        });
    }

    // Conformance of a wide flat document (1024 children cycling over the
    // live element kinds) on the reference vs compiled path.
    for size in [8usize, 32, 128] {
        let dtd = trimmable_dtd(size, size);
        let mut tree = XmlTree::new("r");
        for i in 0..1024usize {
            tree.add_child(tree.root(), format!("a{}", i % size));
        }
        assert!(dtd.conforms_reference(&tree));
        dtd.compiled(); // compile outside the timed region
        group.bench_with_input(
            BenchmarkId::new("conforms_reference/live_kinds", size),
            &(&dtd, &tree),
            |b, (d, t)| b.iter(|| d.conforms_reference(t)),
        );
        group.bench_with_input(
            BenchmarkId::new("conforms_compiled/live_kinds", size),
            &(&dtd, &tree),
            |b, (d, t)| b.iter(|| d.conforms(t)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
