//! Experiment E18 — observability overhead: the cost of the `xdx-obs`
//! primitives themselves (histogram record, snapshot, trace step) and the
//! end-to-end cost of per-request phase tracing on the serving path.
//!
//! The primitive rows bound the per-event cost (a record is a handful of
//! relaxed atomic RMWs; a trace step is one `Instant::now()` plus an
//! add). The `served/*` rows run the same micro-batch workload as E14
//! against two servers that differ only in
//! [`ServerConfig::instrumentation`] — the on/off delta is the whole
//! tracing tax (trace allocation, eight phase steps, histogram folds at
//! finalize), and the acceptance bar is that it stays within noise
//! (< 3%) of the uninstrumented server.
//!
//! `XDX_BENCH_FAST=1` shrinks the sweep — the CI smoke step uses it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xdx_bench::{clio_setting, clio_source};
use xdx_obs::{Histogram, Trace};
use xdx_server::{Client, Server, ServerConfig};
use xdx_xmltree::XmlTree;

fn fast_mode() -> bool {
    std::env::var("XDX_BENCH_FAST").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn bench(c: &mut Criterion) {
    let fast = fast_mode();
    let mut group = c.benchmark_group("obs");
    if fast {
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(30))
            .measurement_time(Duration::from_millis(120));
    } else {
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(900));
    }

    // Primitive costs. The record loop cycles values across buckets so the
    // measurement is not one perfectly predicted cache line.
    let hist = Histogram::new();
    group.bench_with_input(BenchmarkId::new("histogram_record", 0), &(), |b, ()| {
        let mut v = 1u64;
        b.iter(|| {
            hist.record(v);
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            v >> 32
        })
    });
    group.bench_with_input(BenchmarkId::new("histogram_snapshot", 0), &(), |b, ()| {
        b.iter(|| hist.snapshot().count)
    });
    group.bench_with_input(BenchmarkId::new("trace_step", 0), &(), |b, ()| {
        let mut t = Trace::new();
        let mut i = 0usize;
        b.iter(|| {
            t.step(i % 8);
            i += 1;
            t.phase_ns(0)
        })
    });

    // End-to-end: the E14 served workload against instrumentation on/off.
    let setting = clio_setting(4, 4);
    let batch = if fast { 4 } else { 8 };
    let docs: Vec<XmlTree> = (0..batch)
        .map(|i| clio_source(4, 64, 0xE18_0000 + i as u64))
        .collect();
    for (label, instrumentation) in [("on", true), ("off", false)] {
        let sock =
            std::env::temp_dir().join(format!("xdx-bench-obs-{}-{label}.sock", std::process::id()));
        let _ = std::fs::remove_file(&sock);
        std::thread::scope(|scope| {
            let config = ServerConfig {
                workers: 2,
                instrumentation,
                ..ServerConfig::default()
            };
            let server =
                Server::bind(&setting, None, Some(&sock), config).expect("bind bench server");
            let control = server.control();
            scope.spawn(move || server.run());
            let mut client = Client::connect_unix(&sock).expect("connect bench client");
            client.ping().expect("bench server alive");
            group.bench_with_input(
                BenchmarkId::new(format!("served/instrumentation/{label}"), batch),
                &docs,
                |b, docs| {
                    b.iter(|| {
                        let results = client.canonical_solution_docs(docs).expect("served batch");
                        assert!(results.iter().all(Result::is_ok));
                        results.len()
                    })
                },
            );
            control.shutdown();
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
