//! Experiment E16 — the resident document store: what does keeping
//! documents resident actually buy over the ship-per-request path?
//!
//! * `load/*` — cold-start cost of getting documents back after a restart:
//!   opening a checkpointed snapshot (checksum-verified, trees left
//!   undecoded until first access) vs re-parsing the same documents from
//!   tree text (protocol v1) or decoding binary frames (protocol v2). The
//!   `snapshot_touch` row opens *and* materializes every document — the
//!   full deferred cost, for honesty about what lazy loading postpones.
//! * `wal_replay/*` — replay throughput of an edit-heavy WAL over a
//!   snapshot-less directory (the crash-recovery path).
//! * `revalidate/*` — conformance re-validation after a single-node edit:
//!   the store's `O(dirty)` incremental check vs a full document re-scan.
//! * `rechase/*` — chase re-validation after a single-node edit: the
//!   dirty-seeded `chase_incremental` vs a full worklist re-chase. The
//!   randomized differential in `tests/store.rs` proves the verdicts
//!   identical; this experiment prices the asymptotic gap.
//!
//! `XDX_BENCH_FAST=1` shrinks sampling and sizes for the CI smoke step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::path::{Path, PathBuf};
use std::time::Duration;
use xdx_bench::{chase_setting, chase_tree, clio_source};
use xdx_core::compiled::CompiledSetting;
use xdx_store::{DocEdit, DocStore, StoreConfig, SyncPolicy};
use xdx_xmltree::binary::{decode_tree, encode_tree};
use xdx_xmltree::{parse_tree, tree_to_text, NullGen, XmlTree};

fn fast_mode() -> bool {
    std::env::var("XDX_BENCH_FAST").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xdx-bench-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(dir: &Path) -> StoreConfig {
    StoreConfig {
        sync: SyncPolicy::Never,
        ..StoreConfig::new(dir.to_path_buf())
    }
}

fn bench(c: &mut Criterion) {
    let fast = fast_mode();
    let mut group = c.benchmark_group("store");
    if fast {
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(30))
            .measurement_time(Duration::from_millis(120));
    } else {
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(900));
    }

    // -- load: snapshot open vs text parse vs binary decode ----------------
    let num_docs = 8usize;
    let docs: Vec<XmlTree> = (0..num_docs)
        .map(|i| clio_source(4, if fast { 32 } else { 256 }, 0xE16 + i as u64))
        .collect();
    let nodes = docs[0].size();
    let texts: Vec<String> = docs.iter().map(tree_to_text).collect();
    let frames: Vec<Vec<u8>> = docs.iter().map(encode_tree).collect();

    let snap_dir = fresh_dir("load");
    {
        let mut store: DocStore = DocStore::open(config(&snap_dir)).unwrap();
        for (i, doc) in docs.iter().enumerate() {
            store.put(i as u64, doc.clone()).unwrap();
        }
        store.checkpoint().unwrap();
    }
    group.bench_with_input(
        BenchmarkId::new(format!("load/snapshot/{num_docs}docs"), nodes),
        &snap_dir,
        |b, dir| {
            b.iter(|| {
                let store: DocStore = DocStore::open(config(dir)).expect("snapshot loads");
                store.len()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new(format!("load/snapshot_touch/{num_docs}docs"), nodes),
        &snap_dir,
        |b, dir| {
            b.iter(|| {
                let mut store: DocStore = DocStore::open(config(dir)).expect("snapshot loads");
                let ids: Vec<xdx_store::DocKey> = store.doc_ids().collect();
                ids.into_iter()
                    .map(|id| store.get(id).expect("resident").0.size())
                    .sum::<usize>()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new(format!("load/text/{num_docs}docs"), nodes),
        &texts,
        |b, texts| {
            b.iter(|| {
                texts
                    .iter()
                    .map(|t| parse_tree(t).expect("text decodes").size())
                    .sum::<usize>()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new(format!("load/binary/{num_docs}docs"), nodes),
        &frames,
        |b, frames| {
            b.iter(|| {
                frames
                    .iter()
                    .map(|f| decode_tree(f).expect("binary decodes").size())
                    .sum::<usize>()
            })
        },
    );

    // -- wal_replay: crash recovery over an edit-heavy log ------------------
    let num_edits = if fast { 64 } else { 512 };
    let wal_dir = fresh_dir("replay");
    {
        let mut store: DocStore = DocStore::open(config(&wal_dir)).unwrap();
        store.put(1, docs[0].clone()).unwrap();
        for i in 0..num_edits {
            store
                .edit(
                    1,
                    0,
                    &[DocEdit::SetAttr {
                        node: (i % nodes) as u32,
                        name: "@bench".into(),
                        value: format!("v{i}").into(),
                    }],
                )
                .unwrap();
        }
        store.sync().unwrap();
    }
    group.bench_with_input(
        BenchmarkId::new("wal_replay/edit_records", num_edits),
        &wal_dir,
        |b, dir| {
            b.iter(|| {
                let store: DocStore = DocStore::open(config(dir)).expect("WAL replays");
                store.wal_len()
            })
        },
    );

    // -- revalidate: O(dirty) conformance check vs full re-scan -------------
    let setting = chase_setting();
    let compiled = CompiledSetting::new(&setting);
    let dtd = setting.target_dtd.clone();
    let chase_nodes = if fast { 512 } else { 4096 };
    let mut clean = chase_tree("repair_light", chase_nodes);
    let mut nulls = NullGen::new();
    compiled
        .chase(&mut clean, &mut nulls)
        .expect("repair_light chases clean");
    // Rank 1 is the first `sec`: both rows flip its `@id` between two
    // constants, a conforming single-node edit.
    let store_dir = fresh_dir("revalidate");
    let mut store: DocStore = DocStore::open(config(&store_dir)).unwrap();
    store.put(1, clean.clone()).unwrap();
    store.validate(1, dtd.compiled()).unwrap();
    let mut flip = 0u64;
    group.bench_function(
        BenchmarkId::new("revalidate/incremental", chase_nodes),
        |b| {
            b.iter(|| {
                flip += 1;
                store
                    .edit(
                        1,
                        0,
                        &[DocEdit::SetAttr {
                            node: 1,
                            name: "@id".into(),
                            value: if flip.is_multiple_of(2) {
                                "a".into()
                            } else {
                                "b".into()
                            },
                        }],
                    )
                    .expect("edit applies");
                store.validate(1, dtd.compiled()).expect("doc resident")
            })
        },
    );
    let mut full_tree = clean.clone();
    let mut full_order = None;
    group.bench_function(BenchmarkId::new("revalidate/full", chase_nodes), |b| {
        b.iter(|| {
            flip += 1;
            xdx_store::apply_edits(
                &mut full_tree,
                &mut full_order,
                &[DocEdit::SetAttr {
                    node: 1,
                    name: "@id".into(),
                    value: if flip.is_multiple_of(2) {
                        "a".into()
                    } else {
                        "b".into()
                    },
                }],
            )
            .expect("edit applies");
            dtd.compiled().conforms(&full_tree)
        })
    });

    // -- rechase: dirty-seeded incremental chase vs full re-chase -----------
    // Each iteration removes `@id` from one `sec`; the chase must re-invent
    // it (a real `ChangeAtt` repair), so both rows do one unit of repair
    // work — the difference is pure traversal.
    let mut inc_tree = clean.clone();
    let mut inc_nulls = NullGen::starting_at(1 << 40);
    let mut inc_order = None;
    group.bench_function(BenchmarkId::new("rechase/incremental", chase_nodes), |b| {
        b.iter(|| {
            let applied = xdx_store::apply_edits(
                &mut inc_tree,
                &mut inc_order,
                &[DocEdit::RemoveAttr {
                    node: 1,
                    name: "@id".into(),
                }],
            )
            .expect("sec 1 carries @id");
            compiled
                .chase_incremental(&mut inc_tree, &mut inc_nulls, &applied.dirty)
                .expect("chase repairs the removal");
            inc_tree.arena_len()
        })
    });
    let mut full_chase_tree = clean.clone();
    let mut full_chase_nulls = NullGen::starting_at(1 << 40);
    let mut full_chase_order = None;
    group.bench_function(BenchmarkId::new("rechase/full", chase_nodes), |b| {
        b.iter(|| {
            xdx_store::apply_edits(
                &mut full_chase_tree,
                &mut full_chase_order,
                &[DocEdit::RemoveAttr {
                    node: 1,
                    name: "@id".into(),
                }],
            )
            .expect("sec 1 carries @id");
            compiled
                .chase(&mut full_chase_tree, &mut full_chase_nulls)
                .expect("chase repairs the removal");
            full_chase_tree.arena_len()
        })
    });

    group.finish();
    for dir in [snap_dir, wal_dir, store_dir] {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
