//! Experiment E11 — pattern/DTD satisfiability: bitset profiles vs. the
//! `BTreeSet` reference.
//!
//! The satisfiability engine behind the general consistency check
//! (Theorem 4.1) computes achievable profiles of witnessed subformulae by a
//! fixpoint over the content-model automata. `bitset/…` runs the interned
//! fast path (profiles as `u64`-block masks over dense subformula indices,
//! pre-compiled bit-parallel NFAs); `reference/…` runs the original
//! `BTreeSet<usize>` transcription on the same queries. The sweeps grow the
//! number of patterns (more subformulae → wider profiles) and the DTD width
//! (more element types → more fixpoint work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xdx_automata::PatternSatisfiability;
use xdx_patterns::{parse_pattern, TreePattern};
use xdx_xmltree::Dtd;

/// A DTD with `width` record fields under the root, each field optionally
/// nesting one level (`fi → gi?`), so descendant patterns have depth to work
/// with.
fn layered_dtd(width: usize) -> Dtd {
    let mut b = Dtd::builder("r").rule(
        "r",
        &(0..width)
            .map(|i| format!("f{i}*"))
            .collect::<Vec<_>>()
            .join(" "),
    );
    for i in 0..width {
        b = b.rule(format!("f{i}"), &format!("g{i}?"));
        b = b.rule(format!("g{i}"), "eps");
    }
    b.build().expect("well-formed generated DTD")
}

/// `count` mixed positive patterns against [`layered_dtd`]: direct children,
/// nested children and descendants, cycling over the fields.
fn patterns(width: usize, count: usize) -> Vec<TreePattern> {
    (0..count)
        .map(|k| {
            let i = k % width;
            let src = match k % 3 {
                0 => format!("r[f{i}]"),
                1 => format!("r[f{i}[g{i}]]"),
                _ => format!("//g{i}"),
            };
            parse_pattern(&src).expect("well-formed generated pattern")
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("satisfiability");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));

    // Sweep pattern count at fixed DTD width (profile width grows).
    let width = 6;
    let dtd = layered_dtd(width);
    let solver = PatternSatisfiability::new(&dtd);
    for count in [2usize, 4, 8] {
        let pos = patterns(width, count);
        let neg = vec![parse_pattern(&format!("r[f0[g0], f{}]", width - 1)).unwrap()];
        assert_eq!(
            solver.satisfiable(&pos, &neg),
            solver.satisfiable_reference(&pos, &neg)
        );
        group.bench_with_input(
            BenchmarkId::new("bitset/patterns", count),
            &count,
            |b, _| b.iter(|| solver.satisfiable(&pos, &neg)),
        );
        group.bench_with_input(
            BenchmarkId::new("reference/patterns", count),
            &count,
            |b, _| b.iter(|| solver.satisfiable_reference(&pos, &neg)),
        );
    }

    // Sweep DTD width at fixed pattern count (fixpoint work grows).
    for width in [4usize, 8, 12] {
        let dtd = layered_dtd(width);
        let solver = PatternSatisfiability::new(&dtd);
        let pos = patterns(width, 4);
        let neg: Vec<TreePattern> = vec![];
        group.bench_with_input(
            BenchmarkId::new("bitset/dtd_width", width),
            &width,
            |b, _| b.iter(|| solver.satisfiable(&pos, &neg)),
        );
        group.bench_with_input(
            BenchmarkId::new("reference/dtd_width", width),
            &width,
            |b, _| b.iter(|| solver.satisfiable_reference(&pos, &neg)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
