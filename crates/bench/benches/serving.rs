//! Experiment E14 — serving overhead: requests/sec over a loopback Unix
//! socket (the `xdx-server` front-end: framing + document codec + event
//! loop + worker handoff) vs direct `BatchEngine` calls on the same
//! documents.
//!
//! One request carries one micro-batch of `batch` documents (sizes 1/8/64),
//! and each document runs the full canonical-solution pipeline, so the rows
//! isolate the per-request wire cost at different amortisation levels: at
//! batch 1 the framing/parse cost dominates; by batch 64 the server should
//! sit within a few percent of the direct call.
//!
//! The served rows run once per wire codec — `text` (protocol v1) and
//! `binary` (v2 `Hello`-negotiated preorder frames + chunked responses) —
//! so the codec's share of the wire overhead is directly visible.
//! `XDX_WIRE_CODEC=text|binary` restricts the sweep to one codec. Both
//! codec rows use the no-decode client path ([`Client::canonical_solution_docs`]),
//! so they measure the wire, not the client's parser.
//!
//! `XDX_BENCH_FAST=1` shrinks the sweep and measurement windows — the CI
//! smoke step uses it so the bench (and the server it spins up) cannot rot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xdx_bench::{clio_setting, clio_source};
use xdx_core::engine::BatchEngine;
use xdx_server::{Client, Server, ServerConfig};
use xdx_xmltree::XmlTree;

fn fast_mode() -> bool {
    std::env::var("XDX_BENCH_FAST").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Codecs to sweep: both by default, one if `XDX_WIRE_CODEC` names it.
fn codecs() -> Vec<&'static str> {
    match std::env::var("XDX_WIRE_CODEC").as_deref() {
        Ok("text") => vec!["text"],
        Ok("binary") => vec!["binary"],
        _ => vec!["text", "binary"],
    }
}

fn bench(c: &mut Criterion) {
    let fast = fast_mode();
    let mut group = c.benchmark_group("serving");
    if fast {
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(30))
            .measurement_time(Duration::from_millis(120));
    } else {
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(900));
    }

    let setting = clio_setting(4, 4);
    let engine = BatchEngine::new(&setting).parallelism(2);
    let batches: &[usize] = if fast { &[1, 8] } else { &[1, 8, 64] };
    let docs: Vec<XmlTree> = (0..64)
        .map(|i| clio_source(4, 64, 0xE14_0000 + i as u64))
        .collect();

    let sock = std::env::temp_dir().join(format!("xdx-bench-serving-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    std::thread::scope(|scope| {
        let config = ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        };
        let server = Server::bind(&setting, None, Some(&sock), config).expect("bind bench server");
        let control = server.control();
        scope.spawn(move || server.run());
        let mut client = Client::connect_unix(&sock).expect("connect bench client");
        client.ping().expect("bench server alive");

        for &batch in batches {
            let slice = &docs[..batch];
            group.bench_with_input(
                BenchmarkId::new("direct/canonical_solutions", batch),
                &slice,
                |b, slice| {
                    b.iter(|| {
                        let results = engine.canonical_solutions_batch(slice);
                        assert!(results.iter().all(Result::is_ok));
                        results.len()
                    })
                },
            );
        }

        for codec in codecs() {
            // One fresh connection per codec; the binary one negotiates the
            // v2 fast path (binary documents + chunked responses).
            let mut client = Client::connect_unix(&sock).expect("connect bench client");
            if codec == "binary" {
                client.use_binary().expect("negotiate binary codec");
            }
            for &batch in batches {
                let slice = &docs[..batch];
                group.bench_with_input(
                    BenchmarkId::new(format!("served/canonical_solutions/{codec}"), batch),
                    &slice,
                    |b, slice| {
                        b.iter(|| {
                            let results =
                                client.canonical_solution_docs(slice).expect("served batch");
                            assert!(results.iter().all(Result::is_ok));
                            results.len()
                        })
                    },
                );
            }
        }

        // The cheapest possible request: wire + event-loop round-trip floor.
        group.bench_with_input(BenchmarkId::new("served/ping", 0), &(), |b, ()| {
            b.iter(|| client.ping().expect("ping"))
        });

        control.shutdown();
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
