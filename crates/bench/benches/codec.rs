//! Experiment E15 — document codec cost: µs/document to serialize and
//! deserialize trees under the text codec (protocol v1, the differential
//! oracle) vs the `xmltree::binary` preorder codec (protocol v2's
//! zero-copy serving path).
//!
//! Two tree shapes per codec: a clio *source* document (constants only)
//! and its canonical *solution* (invented nulls, duplicated labels — the
//! shape the serving path actually ships back). Encode rows measure
//! tree → bytes, decode rows bytes → tree; the binary decode row is the
//! arena bulk-reservation path (`append_forest`), the text decode row is
//! the recursive-descent parser.
//!
//! `XDX_BENCH_FAST=1` shrinks sampling for the CI smoke step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xdx_bench::{clio_setting, clio_source};
use xdx_core::compiled::CompiledSetting;
use xdx_xmltree::binary::{decode_tree, encode_tree};
use xdx_xmltree::{parse_tree, tree_to_text, XmlTree};

fn fast_mode() -> bool {
    std::env::var("XDX_BENCH_FAST").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn bench(c: &mut Criterion) {
    let fast = fast_mode();
    let mut group = c.benchmark_group("codec");
    if fast {
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(30))
            .measurement_time(Duration::from_millis(120));
    } else {
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(900));
    }

    let setting = clio_setting(4, 4);
    let compiled = CompiledSetting::new(&setting);
    let source = clio_source(4, if fast { 32 } else { 256 }, 0xE15);
    let solution = compiled
        .canonical_solution(&source)
        .expect("clio source has a solution");
    let shapes: Vec<(&str, XmlTree)> = vec![("source", source), ("solution", solution)];

    for (shape, tree) in &shapes {
        let nodes = tree.size();
        let text = tree_to_text(tree);
        let binary = encode_tree(tree);
        group.bench_with_input(
            BenchmarkId::new(format!("encode/text/{shape}"), nodes),
            tree,
            |b, tree| b.iter(|| tree_to_text(tree).len()),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("encode/binary/{shape}"), nodes),
            tree,
            |b, tree| b.iter(|| encode_tree(tree).len()),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("decode/text/{shape}"), nodes),
            &text,
            |b, text| b.iter(|| parse_tree(text).expect("text decodes").size()),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("decode/binary/{shape}"), nodes),
            &binary,
            |b, binary| b.iter(|| decode_tree(binary).expect("binary decodes").size()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
