//! Experiment E7 — Theorem 5.11 / the intractable side of the dichotomy.
//!
//! Outside the fully-specified/univocal class, certain answering is
//! coNP-complete. The executable reduction of `gadgets::theorem_5_11` turns
//! a 3-CNF formula into a source document and Boolean query whose certain
//! answer is decided (through the theorem's equivalence) by an exponential
//! satisfiability search; the tractable control is the canonical-solution
//! algorithm on a Clio-class setting whose source document has a comparable
//! number of nodes. The paper's claim to reproduce is the *shape*: the
//! intractable side grows exponentially with the number of variables while
//! the tractable side stays polynomial — the crossover appears almost
//! immediately.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;
use xdx_bench::{clio_query, clio_setting, clio_source};
use xdx_core::certain_answers;
use xdx_core::gadgets::theorem_5_11;
use xdx_core::gadgets::three_sat::CnfFormula;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("certain_answers_hardness");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));

    let mut rng = StdRng::seed_from_u64(5);
    for vars in [8usize, 12, 16, 20] {
        let formula = CnfFormula::random(vars, 2 * vars, &mut rng);
        // The gadget instance itself (source tree + setting + query) is built
        // outside the timed section; what is measured is deciding the
        // certain answer, i.e. the exponential search.
        let gadget = theorem_5_11::build(&formula);
        group.bench_with_input(
            BenchmarkId::new("intractable_gadget_vars", vars),
            &formula,
            |b, f| b.iter(|| theorem_5_11::certain_answer(f)),
        );

        // Tractable control with a source document of comparable size.
        let source_size = gadget.source_tree.size();
        let setting = clio_setting(4, 4);
        let source = clio_source(4, source_size, 13);
        let query = clio_query();
        group.bench_with_input(
            BenchmarkId::new("tractable_control_source_nodes", source_size),
            &(setting, source, query),
            |b, (setting, source, query)| {
                b.iter(|| certain_answers(setting, source, query).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
