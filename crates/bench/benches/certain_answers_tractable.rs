//! Experiment E6 — Theorem 6.2 (tractable side) / Corollary 6.11: certain
//! answers over univocal (here: nested-relational, Clio-class) targets are
//! computable in polynomial time by evaluating the query on the canonical
//! solution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xdx_bench::{clio_query, clio_setting, clio_source};
use xdx_core::certain_answers;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("certain_answers_tractable");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));

    for nodes in [20usize, 40, 80, 160] {
        let setting = clio_setting(4, 4);
        let source = clio_source(4, nodes, 11);
        let query = clio_query();
        group.bench_with_input(
            BenchmarkId::new("source_nodes", nodes),
            &(setting, source, query),
            |b, (setting, source, query)| {
                b.iter(|| certain_answers(setting, source, query).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
