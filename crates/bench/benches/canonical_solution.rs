//! Experiment E5 — Section 6.1: for univocal target DTDs the canonical
//! solution (canonical pre-solution + chase) is computable in polynomial
//! time in the size of the source document.
//!
//! Each point is measured twice: `reference/…` re-derives per-setting
//! artefacts (pattern analyses, repair contexts) on every document, while
//! `compiled/…` holds a [`CompiledSetting`] across documents — the
//! compile-once, evaluate-many fast path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xdx_bench::{clio_setting, clio_source};
use xdx_core::solution::canonical_solution_reference;
use xdx_core::CompiledSetting;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("canonical_solution");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));

    // Sweep source size at a fixed schema.
    for nodes in [20usize, 40, 80, 160, 320] {
        let setting = clio_setting(4, 4);
        let source = clio_source(4, nodes, 7);
        group.bench_with_input(
            BenchmarkId::new("reference/source_nodes", nodes),
            &(&setting, &source),
            |b, (setting, source)| {
                b.iter(|| canonical_solution_reference(setting, source).unwrap())
            },
        );
        let compiled = CompiledSetting::new(&setting);
        compiled.canonical_solution(&source).unwrap();
        group.bench_with_input(
            BenchmarkId::new("compiled/source_nodes", nodes),
            &(&compiled, &source),
            |b, (compiled, source)| b.iter(|| compiled.canonical_solution(source).unwrap()),
        );
    }

    // Sweep schema width at a fixed source size.
    for fields in [2usize, 4, 8] {
        let setting = clio_setting(fields, fields);
        let source = clio_source(fields, 80, 7);
        group.bench_with_input(
            BenchmarkId::new("reference/schema_fields", fields),
            &(&setting, &source),
            |b, (setting, source)| {
                b.iter(|| canonical_solution_reference(setting, source).unwrap())
            },
        );
        let compiled = CompiledSetting::new(&setting);
        compiled.canonical_solution(&source).unwrap();
        group.bench_with_input(
            BenchmarkId::new("compiled/schema_fields", fields),
            &(&compiled, &source),
            |b, (compiled, source)| b.iter(|| compiled.canonical_solution(source).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
