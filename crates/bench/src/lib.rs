//! Workload generators shared by the benchmark suite.
//!
//! Each generator corresponds to one of the experiments catalogued in
//! `EXPERIMENTS.md` (E1–E12): scalable nested-relational ("Clio-class")
//! settings and source documents, shuffled children for the re-ordering
//! experiment, regular-expression families for the Parikh/univocality
//! experiments, the bibliography trees and pattern shapes of the
//! pattern-evaluation experiment, and the hardness gadgets re-exported from
//! `xdx-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use xdx_core::setting::{DataExchangeSetting, Std};
use xdx_patterns::parse_pattern;
use xdx_patterns::query::{ConjunctiveTreeQuery, UnionQuery};
use xdx_relang::{parse_regex, Regex};
use xdx_xmltree::{Dtd, XmlTree};

pub use xdx_core::gadgets;

/// A nested-relational (Clio-class) data exchange setting with `num_fields`
/// record fields and `num_stds` source-to-target dependencies (cycling over
/// the fields). DTD size grows linearly with `num_fields`, STD size linearly
/// with `num_stds` — the `n` and `m` of Theorem 4.5.
pub fn clio_setting(num_fields: usize, num_stds: usize) -> DataExchangeSetting {
    assert!(num_fields >= 1);
    let mut src = Dtd::builder("src").rule(
        "src",
        &(0..num_fields)
            .map(|i| format!("f{i}*"))
            .collect::<Vec<_>>()
            .join(" "),
    );
    let mut tgt = Dtd::builder("tgt").rule(
        "tgt",
        &(0..num_fields)
            .map(|i| format!("g{i}*"))
            .collect::<Vec<_>>()
            .join(" "),
    );
    for i in 0..num_fields {
        src = src
            .rule(format!("f{i}"), "eps")
            .attributes(format!("f{i}"), ["@v"]);
        tgt = tgt
            .rule(format!("g{i}"), "eps")
            .attributes(format!("g{i}"), ["@v", "@extra"]);
    }
    let source_dtd = src.build().expect("well-formed generated source DTD");
    let target_dtd = tgt.build().expect("well-formed generated target DTD");
    let stds: Vec<Std> = (0..num_stds)
        .map(|k| {
            let i = k % num_fields;
            Std::parse(&format!("tgt[g{i}(@v=$x, @extra=$z)] :- src[f{i}(@v=$x)]"))
                .expect("well-formed generated STD")
        })
        .collect();
    DataExchangeSetting::new(source_dtd, target_dtd, stds)
}

/// A source document for [`clio_setting`]: `num_nodes` field nodes spread
/// round-robin over the fields, with pseudo-random values.
pub fn clio_source(num_fields: usize, num_nodes: usize, seed: u64) -> XmlTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tree = XmlTree::new("src");
    // Children are grouped by field so the document also conforms in the
    // ordered sense (the content model is f0* f1* … f{k-1}*).
    for i in 0..num_fields {
        let share = num_nodes / num_fields + usize::from(i < num_nodes % num_fields);
        for _ in 0..share {
            let node = tree.add_child(tree.root(), format!("f{i}"));
            tree.set_attr(
                node,
                "@v",
                format!("v{}", rng.gen_range(0..(num_nodes / 2 + 1))),
            );
        }
    }
    tree
}

/// A query over the target of [`clio_setting`]: all values stored in field 0.
pub fn clio_query() -> UnionQuery {
    UnionQuery::single(
        ConjunctiveTreeQuery::new(
            ["x"],
            vec![parse_pattern("tgt[g0(@v=$x)]").expect("well-formed query pattern")],
        )
        .expect("well-formed query"),
    )
}

/// The DTD of the pattern-evaluation experiment (E12): a bibliography-like
/// schema with nesting depth 4 so path, branching and descendant patterns
/// all have work to do.
pub fn pattern_eval_dtd() -> Dtd {
    Dtd::builder("lib")
        .rule("lib", "shelf*")
        .rule("shelf", "book*")
        .rule("book", "author* note?")
        .rule("author", "eps")
        .rule("note", "eps")
        .attributes("shelf", ["@room"])
        .attributes("book", ["@title", "@year"])
        .attributes("author", ["@name"])
        .attributes("note", ["@text"])
        .build()
        .expect("well-formed E12 DTD")
}

/// A conforming tree for [`pattern_eval_dtd`] with roughly `num_nodes`
/// nodes: shelves of books with 0–3 authors and occasional notes, values
/// drawn from small pools so joins on shared variables hit.
pub fn pattern_eval_tree(num_nodes: usize, seed: u64) -> XmlTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tree = XmlTree::new("lib");
    let mut nodes = 1usize;
    while nodes < num_nodes {
        let shelf = tree.add_child(tree.root(), "shelf");
        tree.set_attr(shelf, "@room", format!("r{}", rng.gen_range(0..4)));
        nodes += 1;
        for _ in 0..rng.gen_range(2..6) {
            if nodes >= num_nodes {
                break;
            }
            let book = tree.add_child(shelf, "book");
            tree.set_attr(
                book,
                "@title",
                format!("t{}", rng.gen_range(0..(num_nodes / 2 + 1))),
            );
            tree.set_attr(book, "@year", format!("y{}", rng.gen_range(0..8)));
            nodes += 1;
            for _ in 0..rng.gen_range(0..4) {
                if nodes >= num_nodes {
                    break;
                }
                let author = tree.add_child(book, "author");
                tree.set_attr(author, "@name", format!("n{}", rng.gen_range(0..12)));
                nodes += 1;
            }
            if nodes < num_nodes && rng.gen_range(0..3) == 0 {
                let note = tree.add_child(book, "note");
                tree.set_attr(note, "@text", "x");
                nodes += 1;
            }
        }
    }
    tree
}

/// The pattern shapes of E12, from most selective to broadest: a rooted
/// path, a branching join on a shared variable, a descendant sweep, and a
/// wildcard scan.
pub fn pattern_eval_patterns() -> Vec<(&'static str, xdx_patterns::TreePattern)> {
    [
        ("path", "lib[shelf[book(@title=$t)[author(@name=$n)]]]"),
        (
            "join",
            "shelf[book(@year=$y)[author(@name=$n)], book(@title=$t)[author(@name=$n)]]",
        ),
        ("descendant", "//book[//author(@name=$n)]"),
        ("wildcard", "_[_(@name=$n)]"),
    ]
    .into_iter()
    .map(|(name, src)| (name, parse_pattern(src).expect("well-formed E12 pattern")))
    .collect()
}

/// A DTD containing `num_live` element kinds reachable in conforming trees
/// and `num_dead` unsatisfiable ones, exercising the trimming construction of
/// Lemma 2.2.
pub fn trimmable_dtd(num_live: usize, num_dead: usize) -> Dtd {
    let mut alts: Vec<String> = (0..num_live).map(|i| format!("a{i}")).collect();
    alts.extend((0..num_dead).map(|i| format!("d{i}")));
    let mut builder = Dtd::builder("r").rule("r", &format!("({})*", alts.join("|")));
    for i in 0..num_live {
        builder = builder.rule(format!("a{i}"), "eps");
    }
    for i in 0..num_dead {
        // each dead element requires itself, so it can never be completed
        builder = builder.rule(format!("d{i}"), &format!("d{i}"));
    }
    builder.build().expect("well-formed generated DTD")
}

/// A DTD with rule `r → (a b)* (c d)*` and a tree whose root has
/// `4 * groups` children in random order — the workload of the re-ordering
/// experiment (Proposition 5.2).
pub fn shuffled_children(groups: usize, seed: u64) -> (Dtd, XmlTree) {
    let dtd = Dtd::builder("r")
        .rule("r", "(a b)* (c d)*")
        .build()
        .expect("well-formed DTD");
    let mut labels: Vec<&str> = Vec::new();
    for _ in 0..groups {
        labels.extend(["a", "b", "c", "d"]);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    labels.shuffle(&mut rng);
    let mut tree = XmlTree::new("r");
    for l in labels {
        tree.add_child(tree.root(), l);
    }
    (dtd, tree)
}

/// The regular expression `(a0 a1 … a{k-1})*` over `k` distinct symbols,
/// whose permutation language requires equal counts of all symbols.
pub fn balanced_star_regex(k: usize) -> Regex<String> {
    let body = (0..k)
        .map(|i| format!("a{i}"))
        .collect::<Vec<_>>()
        .join(" ");
    parse_regex(&format!("({body})*")).expect("well-formed generated regex")
}

/// A word consisting of `reps` repetitions of each of the `k` symbols of
/// [`balanced_star_regex`] (thus inside the permutation language).
pub fn balanced_word(k: usize, reps: usize) -> Vec<String> {
    let mut out = Vec::with_capacity(k * reps);
    for i in 0..k {
        for _ in 0..reps {
            out.push(format!("a{i}"));
        }
    }
    out
}

/// The flat setting of the chase experiment (E13). The target schema makes
/// `ChangeReg` do real structural work: every `sec` needs exactly one
/// `title` (absences extend, duplicates merge) and `par`s are free; `meta`
/// is at-most-one at the root. The STD forces `doc`/`sec`/`title` into the
/// compiled chase's shared repair-context alphabet; the chase benches drive
/// the chase directly on generated presolution-shaped trees.
pub fn chase_setting() -> DataExchangeSetting {
    let source_dtd = Dtd::builder("src")
        .rule("src", "item*")
        .attributes("item", ["@v"])
        .build()
        .expect("well-formed E13 source DTD");
    let target_dtd = Dtd::builder("doc")
        .rule("doc", "sec* meta?")
        .rule("sec", "title par*")
        .rule("title", "eps")
        .rule("par", "eps")
        .rule("meta", "eps")
        .attributes("sec", ["@id"])
        .attributes("title", ["@t"])
        .attributes("par", ["@w"])
        .build()
        .expect("well-formed E13 target DTD");
    let std = Std::parse("doc[sec(@id=$x)[title(@t=$x)]] :- src[item(@v=$x)]")
        .expect("well-formed E13 STD");
    DataExchangeSetting::new(source_dtd, target_dtd, vec![std])
}

/// A presolution-shaped tree for [`chase_setting`] with roughly `num_nodes`
/// nodes.
///
/// * `repair_light` — complete `sec[title par]` fragments whose
///   attributes are all missing: the chase only runs `ChangeAtt` fills, no
///   structural repairs (every node is visited exactly once either way).
/// * `repair_heavy` — half the `sec`s are empty (a repair must invent the
///   `title`) and half carry three duplicate `title`s (a repair must merge
///   them), so the chase performs `Θ(n)` repairs: the restart-scan
///   reference pays `O(n)` per repair, the worklist chase `O(1)`.
pub fn chase_tree(shape: &str, num_nodes: usize) -> XmlTree {
    let mut tree = XmlTree::new("doc");
    let mut nodes = 1usize;
    let mut sec_index = 0usize;
    while nodes < num_nodes {
        let sec = tree.add_child(tree.root(), "sec");
        nodes += 1;
        sec_index += 1;
        match shape {
            "repair_light" => {
                // Complete structure, missing attributes: `ChangeAtt` fills
                // @id/@t/@w with fresh nulls, `ChangeReg` never fires.
                tree.add_child(sec, "title");
                tree.add_child(sec, "par");
                nodes += 2;
            }
            "repair_heavy" => {
                if sec_index.is_multiple_of(2) {
                    // Duplicate titles with one shared constant: the chase
                    // merges them (constants equal, so no clash).
                    for _ in 0..3 {
                        let title = tree.add_child(sec, "title");
                        tree.set_attr(title, "@t", "t");
                        nodes += 1;
                    }
                }
                // Odd secs stay empty: the chase must invent the title.
            }
            other => panic!("unknown chase tree shape {other:?}"),
        }
    }
    tree
}

/// The deep-nesting setting of E13: `r → d`, `d → d? e`, so a chain of `d`s
/// missing their `e` children needs one repair per level — the restart-scan
/// reference re-walks the whole chain after each, the worklist chase does
/// not.
pub fn chase_deep_setting() -> DataExchangeSetting {
    let source_dtd = Dtd::builder("src")
        .rule("src", "eps")
        .build()
        .expect("well-formed E13 deep source DTD");
    let target_dtd = Dtd::builder("r")
        .rule("r", "d")
        .rule("d", "d? e")
        .rule("e", "eps")
        .attributes("e", ["@v"])
        .build()
        .expect("well-formed E13 deep target DTD");
    DataExchangeSetting::new(source_dtd, target_dtd, vec![])
}

/// A `depth`-deep chain of `d` nodes under the `r` root of
/// [`chase_deep_setting`], every `d` missing its mandatory `e` child.
pub fn chase_deep_tree(depth: usize) -> XmlTree {
    let mut tree = XmlTree::new("r");
    let mut node = tree.root();
    for _ in 0..depth {
        node = tree.add_child(node, "d");
    }
    tree
}

/// The regular-expression zoo used by the univocality experiment: pairs of a
/// display name and the expression.
pub fn univocality_zoo() -> Vec<(&'static str, Regex<String>)> {
    [
        ("simple", "(a|b|c)*"),
        ("nested_relational", "a b+ c* d?"),
        ("paper_bc_de", "(b c)* (d e)*"),
        ("paper_b_or_c", "(b*|c*)"),
        ("paper_bcde", "b c+ d* e?"),
        ("non_univocal_c2", "a | a a b*"),
        ("non_univocal_branch", "(a b)|(a c)"),
    ]
    .into_iter()
    .map(|(name, src)| (name, parse_regex(src).expect("well-formed zoo regex")))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdx_core::consistency::check_consistency_nested_relational;
    use xdx_core::{canonical_solution, certain_answers, classify_setting, is_solution};

    #[test]
    fn clio_setting_is_well_formed_and_tractable() {
        let setting = clio_setting(4, 8);
        setting.validate(true).unwrap();
        assert!(setting.is_nested_relational());
        assert!(setting.is_fully_specified());
        assert!(classify_setting(&setting).is_tractable());
        assert!(check_consistency_nested_relational(&setting).unwrap());
    }

    #[test]
    fn clio_source_conforms_and_has_solutions() {
        let setting = clio_setting(4, 4);
        let source = clio_source(4, 40, 1);
        assert!(setting.source_dtd.conforms(&source));
        let solution = canonical_solution(&setting, &source).unwrap();
        assert!(is_solution(&setting, &source, &solution, false));
        let answers = certain_answers(&setting, &source, &clio_query()).unwrap();
        assert!(!answers.tuples.is_empty());
    }

    #[test]
    fn chase_workloads_chase_identically_on_both_paths() {
        use xdx_core::solution::chase_reference;
        use xdx_core::CompiledSetting;
        use xdx_xmltree::NullGen;
        for (setting, trees) in [
            (
                chase_setting(),
                vec![
                    chase_tree("repair_light", 60),
                    chase_tree("repair_heavy", 60),
                ],
            ),
            (chase_deep_setting(), vec![chase_deep_tree(40)]),
        ] {
            let compiled = CompiledSetting::new(&setting);
            for tree in trees {
                let mut reference = tree.clone();
                chase_reference(&mut reference, &setting, &mut NullGen::new()).unwrap();
                let mut worklist = tree.clone();
                compiled.chase(&mut worklist, &mut NullGen::new()).unwrap();
                assert!(worklist.unordered_eq(&reference));
                assert!(setting.target_dtd.conforms_unordered(&worklist));
            }
        }
    }

    #[test]
    fn trimmable_dtd_has_dead_elements() {
        let dtd = trimmable_dtd(5, 5);
        assert!(dtd.is_satisfiable());
        assert!(!dtd.is_consistent());
        let trimmed = dtd.trim_to_consistent().unwrap();
        assert!(trimmed.is_consistent());
        assert_eq!(trimmed.element_types().len(), 6);
    }

    #[test]
    fn shuffled_children_weakly_conform() {
        let (dtd, tree) = shuffled_children(5, 3);
        assert!(dtd.conforms_unordered(&tree));
        assert_eq!(tree.children(tree.root()).len(), 20);
    }

    #[test]
    fn balanced_regex_and_word_agree() {
        use std::collections::BTreeMap;
        use xdx_relang::{perm_accepts, Nfa};
        let r = balanced_star_regex(3);
        let nfa = Nfa::from_regex(&r);
        let word = balanced_word(3, 4);
        let mut counts: BTreeMap<String, u64> = BTreeMap::new();
        for s in &word {
            *counts.entry(s.clone()).or_insert(0) += 1;
        }
        assert!(perm_accepts(&nfa, &counts));
    }

    #[test]
    fn zoo_classification_matches_expectations() {
        use xdx_relang::is_univocal;
        for (name, regex) in univocality_zoo() {
            let expected = !name.starts_with("non_univocal");
            assert_eq!(is_univocal(&regex), expected, "zoo entry {name}");
        }
    }
}
