//! Classification of data exchange settings into the tractable and
//! (potentially) intractable sides of the dichotomy (Theorem 6.2).
//!
//! Certain-answer computation is tractable when (a) every STD is fully
//! specified (otherwise Theorem 5.11 gives coNP-hardness even for simple
//! DTDs) and (b) every content model of the target DTD is *univocal*
//! (Definition 6.9). If some content model is provably non-univocal the
//! setting falls on the strongly coNP-complete side (Proposition 6.19).

use crate::setting::DataExchangeSetting;
use std::fmt;
use xdx_relang::{check_univocality, UnivocalityConfig, UnivocalityVerdict};
use xdx_xmltree::ElementType;

/// Which side of the dichotomy a setting falls on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SettingClass {
    /// Certain answers are computable in polynomial time via the canonical
    /// solution (Theorem 6.2, tractable side; Corollary 6.11).
    Tractable {
        /// True when the target DTD is nested-relational (the Clio class).
        nested_relational_target: bool,
    },
    /// Some STD target pattern is not fully specified: Theorem 5.11 applies
    /// and certain answers may be coNP-hard.
    NotFullySpecified {
        /// Index of the first offending STD.
        std_index: usize,
    },
    /// Some target content model is not univocal: Proposition 6.19 applies
    /// and certain answers are coNP-complete for this class of DTDs.
    NonUnivocalTarget {
        /// The element type whose content model is non-univocal.
        element: ElementType,
        /// The verdict explaining why.
        verdict: UnivocalityVerdict<ElementType>,
    },
    /// Univocality could not be decided within the configured budget.
    Unknown {
        /// The element type whose content model could not be classified.
        element: ElementType,
        /// Human-readable reason.
        reason: String,
    },
}

impl SettingClass {
    /// Is the setting on the provably tractable side?
    pub fn is_tractable(&self) -> bool {
        matches!(self, SettingClass::Tractable { .. })
    }
}

impl fmt::Display for SettingClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SettingClass::Tractable {
                nested_relational_target,
            } => write!(
                f,
                "tractable (PTIME certain answers{})",
                if *nested_relational_target {
                    ", nested-relational target"
                } else {
                    ""
                }
            ),
            SettingClass::NotFullySpecified { std_index } => {
                write!(
                    f,
                    "STD #{std_index} is not fully specified (Theorem 5.11 applies)"
                )
            }
            SettingClass::NonUnivocalTarget { element, .. } => {
                write!(
                    f,
                    "content model of {element} is not univocal (coNP-complete class)"
                )
            }
            SettingClass::Unknown { element, reason } => {
                write!(
                    f,
                    "univocality of {element}'s content model undecided: {reason}"
                )
            }
        }
    }
}

/// Classify a setting according to the dichotomy theorem, using the default
/// univocality-checking budget.
pub fn classify_setting(setting: &DataExchangeSetting) -> SettingClass {
    classify_setting_with(setting, &UnivocalityConfig::default())
}

/// Classify a setting with an explicit univocality-checking budget.
pub fn classify_setting_with(
    setting: &DataExchangeSetting,
    config: &UnivocalityConfig,
) -> SettingClass {
    for (i, std) in setting.stds.iter().enumerate() {
        if !std.target.is_fully_specified(setting.target_dtd.root()) {
            return SettingClass::NotFullySpecified { std_index: i };
        }
    }
    for element in setting.target_dtd.element_types() {
        let rule = setting.target_dtd.rule(element);
        match check_univocality(&rule, config) {
            UnivocalityVerdict::Univocal { .. } => {}
            v @ UnivocalityVerdict::NotUnivocal { .. } => {
                return SettingClass::NonUnivocalTarget {
                    element: element.clone(),
                    verdict: v,
                }
            }
            UnivocalityVerdict::Unknown { reason } => {
                return SettingClass::Unknown {
                    element: element.clone(),
                    reason,
                }
            }
        }
    }
    SettingClass::Tractable {
        nested_relational_target: setting.target_dtd.is_nested_relational(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setting::{books_to_writers_setting, DataExchangeSetting, Std};
    use xdx_xmltree::Dtd;

    #[test]
    fn running_example_is_tractable_and_clio_class() {
        let setting = books_to_writers_setting();
        let class = classify_setting(&setting);
        assert_eq!(
            class,
            SettingClass::Tractable {
                nested_relational_target: true
            }
        );
        assert!(class.is_tractable());
    }

    #[test]
    fn univocal_but_not_nested_relational_targets_are_still_tractable() {
        let source = Dtd::builder("r")
            .rule("r", "A*")
            .attributes("A", ["@a"])
            .build()
            .unwrap();
        let target = Dtd::builder("r2")
            .rule("r2", "(B C)*")
            .attributes("B", ["@m"])
            .build()
            .unwrap();
        let std = Std::parse("r2[B(@m=$x)] :- r[A(@a=$x)]").unwrap();
        let setting = DataExchangeSetting::new(source, target, vec![std]);
        let class = classify_setting(&setting);
        assert_eq!(
            class,
            SettingClass::Tractable {
                nested_relational_target: false
            }
        );
    }

    #[test]
    fn non_fully_specified_stds_are_flagged() {
        let mut setting = books_to_writers_setting();
        setting
            .stds
            .push(Std::parse("//writer(@name=$n) :- db[book(@title=$n)]").unwrap());
        assert_eq!(
            classify_setting(&setting),
            SettingClass::NotFullySpecified { std_index: 1 }
        );
    }

    #[test]
    fn non_univocal_targets_are_flagged() {
        // c(a | aab*) = 2: the target content model is non-univocal.
        let source = Dtd::builder("r")
            .rule("r", "X*")
            .attributes("X", ["@v"])
            .build()
            .unwrap();
        let target = Dtd::builder("r2").rule("r2", "a | a a b*").build().unwrap();
        let std = Std::parse("r2[a] :- r[X(@v=$x)]").unwrap();
        let setting = DataExchangeSetting::new(source, target, vec![std]);
        match classify_setting(&setting) {
            SettingClass::NonUnivocalTarget { element, .. } => {
                assert_eq!(element.as_str(), "r2");
            }
            other => panic!("expected NonUnivocalTarget, got {other}"),
        }
    }
}
