//! Parallel batch serving: compile once, fan documents out over threads.
//!
//! Data-exchange workloads are naturally batch-shaped — many source trees
//! checked, chased and queried against one fixed setting. The compiled layer
//! ([`CompiledSetting`]) already amortises every setting-dependent artefact
//! across documents; since it is `Send + Sync`, a single compiled setting
//! can also serve documents *concurrently*. A [`BatchEngine`] wraps one
//! compiled setting and runs whole slices of source trees across a scoped
//! thread pool:
//!
//! * workers are plain `std::thread::scope` threads (no external runtime);
//! * work distribution is a shared atomic next-index counter, so fast
//!   documents never wait behind slow ones (work stealing at item
//!   granularity);
//! * results are written back by input index, so output order always
//!   matches input order regardless of which worker finished first — the
//!   batch APIs are deterministic drop-in replacements for a sequential
//!   `iter().map(...)` over the same slice.
//!
//! The engine is synchronous by design: it is the substrate the ROADMAP's
//! async-serving step will sit on (an async front-end only needs to hand
//! batches — or single documents — to a long-lived `BatchEngine`).

use crate::certain::CertainAnswers;
use crate::compiled::{CompiledSetting, ExchangeScratch};
use crate::setting::DataExchangeSetting;
use crate::solution::SolutionError;
use std::sync::atomic::{AtomicUsize, Ordering};
use xdx_patterns::plan::QueryPlan;
use xdx_patterns::query::UnionQuery;
use xdx_xmltree::XmlTree;

/// Default worker count: the machine's available parallelism, probed once
/// at engine construction (never again on the request path — serving
/// decisions gate on [`BatchEngine::configured_parallelism`] alone).
fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A compiled setting plus a thread pool configuration; see the module docs.
///
/// Build one per setting with [`BatchEngine::new`], tune the worker count
/// with [`BatchEngine::parallelism`], then call the `*_batch` methods as
/// often as needed — all per-setting caches (repair contexts, consistency
/// plans, solvers) warm up once and are shared by every worker of every
/// batch.
pub struct BatchEngine<'s> {
    compiled: CompiledSetting<'s>,
    parallelism: usize,
}

impl<'s> BatchEngine<'s> {
    /// Compile `setting` and configure as many workers as the machine has
    /// available parallelism.
    pub fn new(setting: &'s DataExchangeSetting) -> Self {
        BatchEngine {
            compiled: CompiledSetting::new(setting),
            parallelism: default_parallelism(),
        }
    }

    /// As [`BatchEngine::new`], but owning the setting behind an `Arc` —
    /// the engine is `'static` and can live in a registry of settings
    /// uploaded at runtime (see [`CompiledSetting::new_owned`]).
    pub fn new_owned(setting: std::sync::Arc<DataExchangeSetting>) -> BatchEngine<'static> {
        BatchEngine {
            compiled: CompiledSetting::new_owned(setting),
            parallelism: default_parallelism(),
        }
    }

    /// Set the number of worker threads (clamped to ≥ 1). `parallelism(1)`
    /// runs batches on the calling thread with no pool at all.
    pub fn parallelism(mut self, n: usize) -> Self {
        self.parallelism = n.max(1);
        self
    }

    /// The configured worker count.
    pub fn configured_parallelism(&self) -> usize {
        self.parallelism
    }

    /// The underlying compiled setting (for single-document calls on the
    /// same warm caches).
    pub fn compiled(&self) -> &CompiledSetting<'s> {
        &self.compiled
    }

    /// For every source tree: is it a conforming source instance that admits
    /// a solution? Per-instance consistency is decided by running the chase
    /// (a canonical solution exists iff any solution does — Lemma 6.15), so
    /// like [`CompiledSetting::canonical_solution`] this requires
    /// fully-specified STDs; outside that class the per-tree answer is
    /// `false` exactly when the sequential call would error.
    pub fn check_consistency_batch(&self, trees: &[XmlTree]) -> Vec<bool> {
        self.run(trees, |scratch, tree| {
            self.compiled.check_instance_consistency_with(tree, scratch)
        })
    }

    /// The canonical solution of every source tree, in input order
    /// (parallel analogue of [`CompiledSetting::canonical_solution`]).
    pub fn canonical_solutions_batch(
        &self,
        trees: &[XmlTree],
    ) -> Vec<Result<XmlTree, SolutionError>> {
        self.run(trees, |scratch, tree| {
            self.compiled.canonical_solution_with(tree, scratch)
        })
    }

    /// The canonical solution of every source tree, delivered to `sink` as
    /// each finishes (completion order, tagged with the input index) rather
    /// than collected into a batch vector. This is the segment-friendly
    /// form the serving layer's chunked response path wants: the consumer
    /// can serialize and release each solution immediately, so peak memory
    /// is the handful of solutions in flight — not the whole batch. With
    /// `parallelism(1)` the sink is called in input order on the calling
    /// thread; otherwise results cross a channel and arrive unordered.
    pub fn canonical_solutions_for_each<F>(&self, trees: &[XmlTree], mut sink: F)
    where
        F: FnMut(usize, Result<XmlTree, SolutionError>),
    {
        let workers = self.parallelism.min(trees.len());
        if workers <= 1 {
            let mut scratch = ExchangeScratch::new();
            for (i, tree) in trees.iter().enumerate() {
                sink(i, self.compiled.canonical_solution_with(tree, &mut scratch));
            }
            return;
        }
        let next = AtomicUsize::new(0);
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                scope.spawn(move || {
                    let mut scratch = ExchangeScratch::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(tree) = trees.get(i) else { break };
                        let result = self.compiled.canonical_solution_with(tree, &mut scratch);
                        if tx.send((i, result)).is_err() {
                            break; // receiver gone: the scope is unwinding
                        }
                    }
                });
            }
            drop(tx); // workers hold the only senders left
            for (i, result) in rx {
                sink(i, result);
            }
        });
    }

    /// The certain answers of `query` for every source tree, in input order
    /// (parallel analogue of [`crate::certain::certain_answers`] against one
    /// shared compiled setting). The query is planned **once** per batch
    /// against the target DTD; every worker evaluates the shared plan over a
    /// per-solution index kept warm in its [`ExchangeScratch`].
    pub fn certain_answers_batch(
        &self,
        trees: &[XmlTree],
        query: &UnionQuery,
    ) -> Vec<Result<CertainAnswers, SolutionError>> {
        let plan = QueryPlan::new(query, self.compiled.target_dtd());
        self.run(trees, |scratch, tree| {
            self.compiled
                .certain_answers_planned_with(tree, &plan, scratch)
        })
    }

    /// Map `f` over `items` on the worker pool, returning results in input
    /// order. Workers claim items through a shared atomic cursor; each
    /// worker holds one [`ExchangeScratch`] for the whole batch (per-document
    /// heap blocks — tree indexes, assignment stores — are reused across
    /// every item it claims) and accumulates `(index, result)` pairs locally;
    /// the results are stitched together by index after the scope joins, so
    /// no locks are held while working and the output permutation is the
    /// identity.
    fn run<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&mut ExchangeScratch, &T) -> R + Sync,
    {
        let workers = self.parallelism.min(items.len());
        if workers <= 1 {
            let mut scratch = ExchangeScratch::new();
            return items.iter().map(|item| f(&mut scratch, item)).collect();
        }
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut scratch = ExchangeScratch::new();
                        let mut local: Vec<(usize, R)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(item) = items.get(i) else { break };
                            local.push((i, f(&mut scratch, item)));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                for (i, result) in handle.join().expect("batch worker panicked") {
                    slots[i] = Some(result);
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every input index was claimed by exactly one worker"))
            .collect()
    }
}

impl std::fmt::Debug for BatchEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchEngine")
            .field("parallelism", &self.parallelism)
            .field("compiled", &self.compiled)
            .finish()
    }
}

// Compile-time audit (issue requirement): everything reachable from the
// batch engine must be shareable across its worker threads.
#[allow(dead_code)]
fn assert_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<BatchEngine<'static>>();
    check::<CertainAnswers>();
    check::<SolutionError>();
    check::<XmlTree>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setting::{books_to_writers_setting, figure_1_source_tree};
    use xdx_patterns::parse_pattern;
    use xdx_patterns::query::{ConjunctiveTreeQuery, UnionQuery};

    fn sources(n: usize) -> Vec<XmlTree> {
        // Distinct documents of growing size (book i has i authors).
        (0..n)
            .map(|i| {
                let mut t = XmlTree::new("db");
                for b in 0..=i {
                    let book = t.add_child(t.root(), "book");
                    t.set_attr(book, "@title", format!("T{b}"));
                    for a in 0..b {
                        let author = t.add_child(book, "author");
                        t.set_attr(author, "@name", format!("N{a}"));
                        t.set_attr(author, "@aff", format!("U{a}"));
                    }
                }
                t
            })
            .collect()
    }

    fn title_query() -> UnionQuery {
        UnionQuery::single(
            ConjunctiveTreeQuery::new(["t"], vec![parse_pattern("work(@title=$t)").unwrap()])
                .unwrap(),
        )
    }

    #[test]
    fn batch_results_match_sequential_for_every_parallelism() {
        let setting = books_to_writers_setting();
        let trees = sources(9);
        let query = title_query();
        let reference = BatchEngine::new(&setting).parallelism(1);
        let expected_solutions = reference.canonical_solutions_batch(&trees);
        let expected_answers = reference.certain_answers_batch(&trees, &query);
        let expected_consistent = reference.check_consistency_batch(&trees);
        for p in 1..=8 {
            let engine = BatchEngine::new(&setting).parallelism(p);
            assert_eq!(engine.configured_parallelism(), p);
            let solutions = engine.canonical_solutions_batch(&trees);
            for (got, want) in solutions.iter().zip(&expected_solutions) {
                // Canonical solutions are unique up to null renaming and
                // sibling order; sizes and solution-hood pin them down.
                assert_eq!(got.as_ref().unwrap().size(), want.as_ref().unwrap().size());
            }
            let answers = engine.certain_answers_batch(&trees, &query);
            for (got, want) in answers.iter().zip(&expected_answers) {
                assert_eq!(got.as_ref().unwrap().tuples, want.as_ref().unwrap().tuples);
            }
            assert_eq!(engine.check_consistency_batch(&trees), expected_consistent);
        }
    }

    #[test]
    fn batch_preserves_input_order() {
        // Each source is identifiable by its certain answer set, so a
        // permuted output would be caught immediately.
        let setting = books_to_writers_setting();
        let trees = sources(16);
        let query = title_query();
        let engine = BatchEngine::new(&setting).parallelism(4);
        let answers = engine.certain_answers_batch(&trees, &query);
        for (i, ans) in answers.iter().enumerate() {
            let tuples = &ans.as_ref().unwrap().tuples;
            // Source i carries titles T0..=Ti (T0 has no authors so it
            // produces no work node — titles reach the target via authors).
            let expect: std::collections::BTreeSet<Vec<String>> = (0..=i)
                .filter(|&b| b > 0)
                .map(|b| vec![format!("T{b}")])
                .collect();
            assert_eq!(tuples, &expect, "source {i}");
        }
    }

    #[test]
    fn repair_heavy_batches_match_the_reference_chase() {
        // A target whose chase must do real structural work per document:
        // every exported entry forces a `detail` sibling chain
        // (entry → meta detail, both invented by `ChangeReg`), so this
        // drives the worklist chase — concurrently, on shared warm repair
        // contexts — and pins its results to the restart-scan reference.
        use crate::setting::Std;
        use crate::solution::canonical_solution_reference;
        use xdx_xmltree::Dtd;
        let source_dtd = Dtd::builder("src")
            .rule("src", "rec*")
            .attributes("rec", ["@k"])
            .build()
            .unwrap();
        let target_dtd = Dtd::builder("out")
            .rule("out", "entry*")
            .rule("entry", "meta detail")
            .rule("meta", "eps")
            .rule("detail", "eps")
            .attributes("entry", ["@k"])
            .attributes("detail", ["@d"])
            .build()
            .unwrap();
        let std = Std::parse("out[entry(@k=$x)] :- src[rec(@k=$x)]").unwrap();
        let setting = DataExchangeSetting::new(source_dtd, target_dtd, vec![std]);
        let trees: Vec<XmlTree> = (1..10)
            .map(|n| {
                let mut t = XmlTree::new("src");
                for i in 0..n {
                    let r = t.add_child(t.root(), "rec");
                    t.set_attr(r, "@k", format!("k{i}"));
                }
                t
            })
            .collect();
        let engine = BatchEngine::new(&setting).parallelism(4);
        let got = engine.canonical_solutions_batch(&trees);
        for (tree, result) in trees.iter().zip(got) {
            let want = canonical_solution_reference(&setting, tree).unwrap();
            assert!(result.unwrap().unordered_eq(&want));
        }
    }

    #[test]
    fn for_each_delivery_matches_the_batch_form() {
        let setting = books_to_writers_setting();
        let trees = sources(9);
        let reference = BatchEngine::new(&setting).parallelism(1);
        let expected = reference.canonical_solutions_batch(&trees);
        for p in [1, 4] {
            let engine = BatchEngine::new(&setting).parallelism(p);
            let mut seen: Vec<Option<XmlTree>> = vec![None; trees.len()];
            engine.canonical_solutions_for_each(&trees, |i, result| {
                assert!(seen[i].is_none(), "index {i} delivered twice");
                seen[i] = Some(result.unwrap());
            });
            for (i, (got, want)) in seen.iter().zip(&expected).enumerate() {
                let got = got.as_ref().expect("every index delivered");
                assert_eq!(
                    got.size(),
                    want.as_ref().unwrap().size(),
                    "solution {i} at parallelism {p}"
                );
            }
        }
    }

    #[test]
    fn inconsistent_documents_are_reported_in_place() {
        let setting = books_to_writers_setting();
        let mut trees = sources(3);
        // A non-conforming source (wrong root) in the middle of the batch.
        trees.insert(1, XmlTree::new("not_db"));
        let engine = BatchEngine::new(&setting).parallelism(3);
        let consistent = engine.check_consistency_batch(&trees);
        assert_eq!(consistent, vec![true, false, true, true]);
    }

    #[test]
    fn empty_batches_and_oversized_pools_are_fine() {
        let setting = books_to_writers_setting();
        let engine = BatchEngine::new(&setting).parallelism(64);
        assert!(engine.canonical_solutions_batch(&[]).is_empty());
        let one = vec![figure_1_source_tree()];
        assert_eq!(engine.canonical_solutions_batch(&one).len(), 1);
        // parallelism(0) clamps to 1.
        let engine = BatchEngine::new(&setting).parallelism(0);
        assert_eq!(engine.configured_parallelism(), 1);
    }
}
