//! Template-stamped target instantiation.
//!
//! The canonical pre-solution instantiates every STD's target pattern once
//! per (shared-variable-restricted) source match. The reference path
//! ([`crate::solution::instantiate_target_with`]) rebuilds a
//! `BTreeMap<Var, Value>` of the whole assignment and recurses over the
//! pattern label by label for every match — per-match allocation and
//! pointer-chasing that dominates pre-solution construction once pattern
//! evaluation itself is fast.
//!
//! A [`TargetTemplate`] is built **once per STD** (inside
//! [`crate::compiled::CompiledStd`]): the fully-specified target pattern is
//! flattened into a preorder forest of `(parent slot, label)` pairs plus a
//! flat list of attribute slots classified at build time as
//!
//! * [`AttrSlot::Const`] — a constant fixed by the pattern (the `Value` is
//!   pre-built; stamping clones an `Arc`),
//! * [`AttrSlot::Shared`] — a variable shared with the source pattern
//!   (dense index into the template's shared-variable order; stamping does
//!   one assignment lookup per *variable*, not per binding), or
//! * [`AttrSlot::TargetOnly`] — a target-only variable (dense null slot; one
//!   fresh null per variable per stamp, shared by all its occurrences).
//!
//! Stamping a match then bulk-reserves the arena nodes with
//! [`XmlTree::append_forest`] and fills the slots — no recursion, no
//! per-match `BTreeMap`, no label re-hashing. The reference path is kept
//! verbatim and the two are differential-tested (unit tests below and the
//! randomized `tests/chase_differential.rs` harness).

use std::collections::BTreeSet;
use xdx_patterns::eval::Assignment;
use xdx_patterns::{LabelTest, Term, TreePattern, Var};
use xdx_xmltree::{AttrName, ElementType, NodeId, NullGen, Value, XmlTree};

/// Where one stamped attribute value comes from (see the module docs).
#[derive(Debug, Clone)]
enum AttrSlot {
    /// A constant fixed by the pattern.
    Const(Value),
    /// A shared variable: index into [`TargetTemplate::shared`].
    Shared(u32),
    /// A target-only variable: index into the per-stamp fresh-null table.
    TargetOnly(u32),
}

/// A fully-specified STD target pattern flattened for stamping; build with
/// [`TargetTemplate::new`], instantiate matches with
/// [`TargetTemplate::stamp`].
#[derive(Debug, Clone)]
pub(crate) struct TargetTemplate {
    /// Preorder forest encoding for [`XmlTree::append_forest`]: the target
    /// pattern is `r[ϕ1, …, ϕk]` and the pre-solution root plays the role
    /// of `r`, so the template holds the `ϕi` subtrees (`u32::MAX` parent =
    /// the pre-solution root).
    nodes: Vec<(u32, ElementType)>,
    /// `(slot, attribute, value source)` triples, grouped by slot.
    attrs: Vec<(u32, AttrName, AttrSlot)>,
    /// Shared variables in dense-index order ([`AttrSlot::Shared`]).
    shared: Vec<Var>,
    /// Number of distinct target-only variables (fresh nulls per stamp).
    num_target_only: u32,
}

impl TargetTemplate {
    /// Flatten `target` against the STD's shared-variable set. Returns
    /// `None` when the pattern uses a wildcard or a descendant step — those
    /// STDs are rejected with `WildcardInTarget` / `NotFullySpecified`
    /// before instantiation ever runs, so every fully-specified,
    /// wildcard-free target has a template.
    pub(crate) fn new(target: &TreePattern, shared_vars: &BTreeSet<Var>) -> Option<TargetTemplate> {
        let TreePattern::Node { attr: _, children } = target else {
            return None; // rooted at a descendant step: not fully specified
        };
        let mut template = TargetTemplate {
            nodes: Vec::new(),
            attrs: Vec::new(),
            shared: Vec::new(),
            num_target_only: 0,
        };
        let mut target_only: Vec<Var> = Vec::new();
        for child in children {
            template.flatten(child, u32::MAX, shared_vars, &mut target_only)?;
        }
        template.num_target_only = target_only.len() as u32;
        Some(template)
    }

    fn flatten(
        &mut self,
        pattern: &TreePattern,
        parent_slot: u32,
        shared_vars: &BTreeSet<Var>,
        target_only: &mut Vec<Var>,
    ) -> Option<()> {
        let TreePattern::Node { attr, children } = pattern else {
            return None;
        };
        let LabelTest::Element(label) = &attr.label else {
            return None;
        };
        let slot = self.nodes.len() as u32;
        self.nodes.push((parent_slot, label.clone()));
        for binding in &attr.bindings {
            let source = match &binding.term {
                Term::Const(c) => AttrSlot::Const(Value::constant(c)),
                Term::Var(v) if shared_vars.contains(v) => {
                    AttrSlot::Shared(dense_index(&mut self.shared, v))
                }
                Term::Var(v) => AttrSlot::TargetOnly(dense_index(target_only, v)),
            };
            self.attrs.push((slot, binding.attr.clone(), source));
        }
        for child in children {
            self.flatten(child, slot, shared_vars, target_only)?;
        }
        Some(())
    }

    /// Stamp one restricted match below `root`, inventing fresh nulls for
    /// the target-only variables. `assignment` must bind every shared
    /// variable of the template (source matches always bind every shared
    /// variable). `shared_scratch` / `null_scratch` are caller-held buffers
    /// so a pre-solution's stamp loop allocates nothing per match.
    pub(crate) fn stamp(
        &self,
        tree: &mut XmlTree,
        root: NodeId,
        assignment: &Assignment,
        nulls: &mut NullGen,
        shared_scratch: &mut Vec<Value>,
        null_scratch: &mut Vec<Value>,
    ) {
        if self.nodes.is_empty() {
            return;
        }
        shared_scratch.clear();
        for var in &self.shared {
            shared_scratch.push(
                assignment
                    .get(var)
                    .expect("every shared template variable is bound by the source match")
                    .clone(),
            );
        }
        null_scratch.clear();
        for _ in 0..self.num_target_only {
            null_scratch.push(nulls.fresh_value());
        }
        let base = tree
            .append_forest(root, &self.nodes)
            .expect("non-empty template forest")
            .index();
        for (slot, name, source) in &self.attrs {
            let value = match source {
                AttrSlot::Const(v) => v.clone(),
                AttrSlot::Shared(i) => shared_scratch[*i as usize].clone(),
                AttrSlot::TargetOnly(i) => null_scratch[*i as usize].clone(),
            };
            tree.set_attr(
                NodeId::from_index(base + *slot as usize),
                name.clone(),
                value,
            );
        }
    }
}

/// The dense index of `var` in `table`, appending it on first sight. Target
/// patterns bind a handful of variables, so a linear probe beats a map.
fn dense_index(table: &mut Vec<Var>, var: &Var) -> u32 {
    match table.iter().position(|v| v == var) {
        Some(i) => i as u32,
        None => {
            table.push(var.clone());
            (table.len() - 1) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setting::Std;
    use crate::solution::instantiate_target_with;

    /// Stamp and reference-instantiate the same matches; the trees must be
    /// identical (same construction order ⇒ same null ids, ordered-equal).
    fn assert_stamp_matches_reference(std_src: &str, assignments: Vec<Assignment>) {
        let std = Std::parse(std_src).unwrap();
        let shared = std.shared_vars();
        let target_only: Vec<Var> = std.target_only_vars().into_iter().collect();
        let template = TargetTemplate::new(&std.target, &shared).expect("fully-specified target");

        let mut stamped = XmlTree::new("root");
        let mut reference = XmlTree::new("root");
        let mut stamped_nulls = NullGen::new();
        let mut reference_nulls = NullGen::new();
        let (mut shared_scratch, mut null_scratch) = (Vec::new(), Vec::new());
        for assignment in &assignments {
            let root = stamped.root();
            template.stamp(
                &mut stamped,
                root,
                assignment,
                &mut stamped_nulls,
                &mut shared_scratch,
                &mut null_scratch,
            );
            instantiate_target_with(
                &mut reference,
                &std.target,
                &target_only,
                assignment,
                &mut reference_nulls,
            )
            .unwrap();
        }
        stamped.validate().unwrap();
        assert_eq!(
            stamped.ordered_canonical_form(),
            reference.ordered_canonical_form(),
            "template stamp diverged from instantiate_target_with on {std_src}"
        );
    }

    fn assign(pairs: &[(&str, Value)]) -> Assignment {
        pairs
            .iter()
            .map(|(v, value)| (Var::new(v), value.clone()))
            .collect()
    }

    #[test]
    fn stamping_agrees_with_reference_instantiation() {
        assert_stamp_matches_reference(
            "bib[writer(@name=$y)[work(@title=$x, @year=$z)]] :- db[book(@title=$x)[author(@name=$y)]]",
            vec![
                assign(&[("x", Value::constant("CO")), ("y", Value::constant("P"))]),
                assign(&[("x", Value::constant("CC")), ("y", Value::constant("P"))]),
            ],
        );
        // Constants, repeated target-only variables, siblings and depth.
        assert_stamp_matches_reference(
            "r[a(@k=\"fixed\", @v=$x)[b(@m=$z, @n=$z)], c(@v=$x)[d[e(@w=$u)]]] :- s[t(@v=$x)]",
            vec![
                assign(&[("x", Value::constant("1"))]),
                assign(&[("x", Value::constant("2"))]),
            ],
        );
        // No shared variables at all (Boolean source side).
        assert_stamp_matches_reference("r[a(@v=$z)] :- s", vec![assign(&[]), assign(&[])]);
        // Root-only target: nothing to stamp.
        assert_stamp_matches_reference(
            "r :- s[t(@v=$x)]",
            vec![assign(&[("x", Value::constant("1"))])],
        );
    }

    #[test]
    fn wildcard_and_descendant_targets_have_no_template() {
        let std = Std::parse("//writer(@name=$y) :- db[book[author(@name=$y)]]").unwrap();
        assert!(TargetTemplate::new(&std.target, &std.shared_vars()).is_none());
        let std = Std::parse("bib[_(@name=$y)] :- db[author(@name=$y)]").unwrap();
        assert!(TargetTemplate::new(&std.target, &std.shared_vars()).is_none());
    }

    #[test]
    fn shared_and_target_only_slots_are_deduplicated() {
        let std = Std::parse("r[a(@p=$x, @q=$x)[b(@m=$z)], c(@n=$z)] :- s[t(@v=$x)]").unwrap();
        let template = TargetTemplate::new(&std.target, &std.shared_vars()).unwrap();
        assert_eq!(template.shared.len(), 1, "repeated $x shares one slot");
        assert_eq!(template.num_target_only, 1, "repeated $z shares one null");
        // The repeated target-only variable really receives ONE null per
        // stamp (both occurrences equal), fresh across stamps.
        let mut tree = XmlTree::new("root");
        let mut nulls = NullGen::new();
        let (mut s1, mut s2) = (Vec::new(), Vec::new());
        let a = assign(&[("x", Value::constant("1"))]);
        let root = tree.root();
        template.stamp(&mut tree, root, &a, &mut nulls, &mut s1, &mut s2);
        template.stamp(&mut tree, root, &a, &mut nulls, &mut s1, &mut s2);
        let tops = tree.children(tree.root()).to_vec();
        assert_eq!(tops.len(), 4); // a, c (twice)
        let b1 = tree.children(tops[0])[0];
        let z1 = tree.attr(b1, &"@m".into()).unwrap().clone();
        assert_eq!(tree.attr(tops[1], &"@n".into()), Some(&z1));
        let b2 = tree.children(tops[2])[0];
        let z2 = tree.attr(b2, &"@m".into()).unwrap();
        assert_ne!(&z1, z2, "nulls are fresh per stamp");
    }
}
