//! Data exchange settings and source-to-target dependencies (Section 3.2).

use std::collections::BTreeSet;
use std::fmt;
use xdx_patterns::{parse_pattern, PatternParseError, TreePattern, Var};
use xdx_xmltree::Dtd;

/// A source-to-target dependency `ψ_T(x̄, z̄) :– φ_S(x̄, ȳ)`.
///
/// The shared variables `x̄` are those occurring on both sides; source-only
/// variables `ȳ` are implicitly existentially quantified on the source side,
/// and target-only variables `z̄` are the ones for which solutions must
/// invent (null) values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Std {
    /// The target-side pattern `ψ_T`.
    pub target: TreePattern,
    /// The source-side pattern `φ_S`.
    pub source: TreePattern,
}

impl Std {
    /// Build an STD from target and source patterns.
    pub fn new(target: TreePattern, source: TreePattern) -> Self {
        Std { target, source }
    }

    /// Parse an STD written as `target :- source` using the pattern syntax of
    /// [`xdx_patterns::parser`].
    pub fn parse(rule: &str) -> Result<Self, PatternParseError> {
        let (target_src, source_src) = rule.split_once(":-").ok_or_else(|| PatternParseError {
            position: 0,
            message: "an STD must contain ':-' separating target and source patterns".to_string(),
        })?;
        Ok(Std {
            target: parse_pattern(target_src.trim())?,
            source: parse_pattern(source_src.trim())?,
        })
    }

    /// The shared variables `x̄` (free in both source and target).
    pub fn shared_vars(&self) -> BTreeSet<Var> {
        self.source
            .free_vars()
            .intersection(&self.target.free_vars())
            .cloned()
            .collect()
    }

    /// The source-only variables `ȳ`.
    pub fn source_only_vars(&self) -> BTreeSet<Var> {
        self.source
            .free_vars()
            .difference(&self.target.free_vars())
            .cloned()
            .collect()
    }

    /// The target-only variables `z̄` (to be filled with nulls).
    pub fn target_only_vars(&self) -> BTreeSet<Var> {
        self.target
            .free_vars()
            .difference(&self.source.free_vars())
            .cloned()
            .collect()
    }

    /// A size measure (total pattern size), the `m` of Theorem 4.5.
    pub fn size(&self) -> usize {
        self.source.size() + self.target.size()
    }
}

impl fmt::Display for Std {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- {}", self.target, self.source)
    }
}

/// Errors detected when validating a data exchange setting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SettingError {
    /// A source pattern mentions an element type the source DTD does not
    /// declare.
    UnknownSourceElement {
        /// Index of the offending STD in `Σ_ST`.
        std_index: usize,
        /// The unknown element type, as a string.
        element: String,
    },
    /// A target pattern mentions an element type the target DTD does not
    /// declare.
    UnknownTargetElement {
        /// Index of the offending STD in `Σ_ST`.
        std_index: usize,
        /// The unknown element type, as a string.
        element: String,
    },
    /// A source pattern repeats a variable, violating the distinct-variable
    /// proviso of Section 4 (only enforced when explicitly requested).
    RepeatedSourceVariable {
        /// Index of the offending STD in `Σ_ST`.
        std_index: usize,
    },
}

impl fmt::Display for SettingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SettingError::UnknownSourceElement { std_index, element } => write!(
                f,
                "STD #{std_index}: source pattern mentions element type {element} not in the source DTD"
            ),
            SettingError::UnknownTargetElement { std_index, element } => write!(
                f,
                "STD #{std_index}: target pattern mentions element type {element} not in the target DTD"
            ),
            SettingError::RepeatedSourceVariable { std_index } => write!(
                f,
                "STD #{std_index}: source pattern repeats a variable (distinct-variable proviso)"
            ),
        }
    }
}

impl std::error::Error for SettingError {}

/// An XML data exchange setting `(D_S, D_T, Σ_ST)` (Definition 3.2).
#[derive(Debug, Clone)]
pub struct DataExchangeSetting {
    /// The source DTD `D_S`.
    pub source_dtd: Dtd,
    /// The target DTD `D_T`.
    pub target_dtd: Dtd,
    /// The source-to-target dependencies `Σ_ST`.
    pub stds: Vec<Std>,
}

impl DataExchangeSetting {
    /// Build a setting from its three components.
    pub fn new(source_dtd: Dtd, target_dtd: Dtd, stds: Vec<Std>) -> Self {
        DataExchangeSetting {
            source_dtd,
            target_dtd,
            stds,
        }
    }

    /// Validate that every pattern only mentions element types declared by
    /// the corresponding DTD; optionally enforce the distinct-variable
    /// proviso on source patterns (Section 4).
    pub fn validate(&self, enforce_distinct_source_vars: bool) -> Result<(), SettingError> {
        for (i, std) in self.stds.iter().enumerate() {
            for e in std.source.element_types() {
                if !self.source_dtd.has_element(&e) {
                    return Err(SettingError::UnknownSourceElement {
                        std_index: i,
                        element: e.to_string(),
                    });
                }
            }
            for e in std.target.element_types() {
                if !self.target_dtd.has_element(&e) {
                    return Err(SettingError::UnknownTargetElement {
                        std_index: i,
                        element: e.to_string(),
                    });
                }
            }
            if enforce_distinct_source_vars && !std.source.has_distinct_variables() {
                return Err(SettingError::RepeatedSourceVariable { std_index: i });
            }
        }
        Ok(())
    }

    /// Are all STD target patterns fully specified (Definition 5.10) with
    /// respect to the target DTD's root?
    pub fn is_fully_specified(&self) -> bool {
        self.stds
            .iter()
            .all(|s| s.target.is_fully_specified(self.target_dtd.root()))
    }

    /// Are both DTDs nested-relational (the Clio class of Theorem 4.5)?
    pub fn is_nested_relational(&self) -> bool {
        self.source_dtd.is_nested_relational() && self.target_dtd.is_nested_relational()
    }

    /// The `m` of Theorem 4.5: total size of the dependencies.
    pub fn stds_size(&self) -> usize {
        self.stds.iter().map(|s| s.size()).sum()
    }

    /// The `n` of Theorem 4.5: total size of the two DTDs.
    pub fn dtds_size(&self) -> usize {
        self.source_dtd.size() + self.target_dtd.size()
    }
}

impl fmt::Display for DataExchangeSetting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "source DTD:\n{}", self.source_dtd)?;
        writeln!(f, "target DTD:\n{}", self.target_dtd)?;
        writeln!(f, "STDs:")?;
        for s in &self.stds {
            writeln!(f, "  {s}")?;
        }
        Ok(())
    }
}

/// The running example of the paper (Figures 1 and 2, Example 3.4):
/// books/authors restructured into writers/works. Exposed because tests,
/// examples and benchmarks across the workspace keep coming back to it.
pub fn books_to_writers_setting() -> DataExchangeSetting {
    let source_dtd = Dtd::builder("db")
        .rule("db", "book*")
        .rule("book", "author*")
        .rule("author", "eps")
        .attributes("book", ["@title"])
        .attributes("author", ["@name", "@aff"])
        .build()
        .expect("well-formed source DTD");
    let target_dtd = Dtd::builder("bib")
        .rule("bib", "writer*")
        .rule("writer", "work*")
        .rule("work", "eps")
        .attributes("writer", ["@name"])
        .attributes("work", ["@title", "@year"])
        .build()
        .expect("well-formed target DTD");
    let std = Std::parse(
        "bib[writer(@name=$y)[work(@title=$x, @year=$z)]] :- db[book(@title=$x)[author(@name=$y)]]",
    )
    .expect("well-formed STD");
    DataExchangeSetting::new(source_dtd, target_dtd, vec![std])
}

/// The source document of Figure 1(b).
pub fn figure_1_source_tree() -> xdx_xmltree::XmlTree {
    xdx_xmltree::TreeBuilder::new("db")
        .child("book", |b| {
            b.attr("@title", "Combinatorial Optimization")
                .child("author", |a| {
                    a.attr("@name", "Papadimitriou").attr("@aff", "UCB")
                })
                .child("author", |a| {
                    a.attr("@name", "Steiglitz").attr("@aff", "Princeton")
                })
        })
        .child("book", |b| {
            b.attr("@title", "Computational Complexity")
                .child("author", |a| {
                    a.attr("@name", "Papadimitriou").attr("@aff", "UCB")
                })
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_parsing_and_variable_partition() {
        let std = Std::parse(
            "bib[writer(@name=$y)[work(@title=$x, @year=$z)]] :- db[book(@title=$x)[author(@name=$y)]]",
        )
        .unwrap();
        let shared: Vec<String> = std
            .shared_vars()
            .iter()
            .map(|v| v.as_str().to_string())
            .collect();
        assert_eq!(shared, vec!["x", "y"]);
        let target_only: Vec<String> = std
            .target_only_vars()
            .iter()
            .map(|v| v.as_str().to_string())
            .collect();
        assert_eq!(target_only, vec!["z"]);
        assert!(std.source_only_vars().is_empty());
        assert!(std.size() > 6);
        assert!(std.to_string().contains(":-"));
    }

    #[test]
    fn std_parse_requires_separator() {
        assert!(Std::parse("bib[writer]").is_err());
    }

    #[test]
    fn running_example_setting_is_well_formed() {
        let setting = books_to_writers_setting();
        setting.validate(true).unwrap();
        assert!(setting.is_fully_specified());
        assert!(setting.is_nested_relational());
        assert!(setting.dtds_size() > 0);
        assert!(setting.stds_size() > 0);
        let t = figure_1_source_tree();
        assert!(setting.source_dtd.conforms(&t));
    }

    #[test]
    fn validation_catches_unknown_element_types() {
        let mut setting = books_to_writers_setting();
        setting
            .stds
            .push(Std::parse("bib[writer(@name=$n)] :- db[journal(@name=$n)]").unwrap());
        let err = setting.validate(false).unwrap_err();
        assert!(matches!(
            err,
            SettingError::UnknownSourceElement { std_index: 1, .. }
        ));

        let mut setting2 = books_to_writers_setting();
        setting2
            .stds
            .push(Std::parse("bib[editor(@name=$n)] :- db[book(@title=$n)]").unwrap());
        let err2 = setting2.validate(false).unwrap_err();
        assert!(matches!(
            err2,
            SettingError::UnknownTargetElement { std_index: 1, .. }
        ));
    }

    #[test]
    fn distinct_variable_proviso_is_optional() {
        let mut setting = books_to_writers_setting();
        setting.stds.push(
            Std::parse("bib[writer(@name=$v)] :- db[book(@title=$v)[author(@name=$v)]]").unwrap(),
        );
        assert!(setting.validate(false).is_ok());
        let err = setting.validate(true).unwrap_err();
        assert!(matches!(
            err,
            SettingError::RepeatedSourceVariable { std_index: 1 }
        ));
    }

    #[test]
    fn fully_specified_detection() {
        let mut setting = books_to_writers_setting();
        assert!(setting.is_fully_specified());
        setting
            .stds
            .push(Std::parse("//writer(@name=$n) :- db[book(@title=$n)]").unwrap());
        assert!(!setting.is_fully_specified());
    }
}
