//! Compile-once, evaluate-many data exchange settings.
//!
//! Every entry point of this crate used to recompute per call (and often per
//! *node*) artefacts that only depend on the setting: regex→NFA compilation,
//! pattern variable analyses, attribute-erased patterns, `D°`/`D*`
//! transformations, Parikh images for the repair machinery. A
//! [`CompiledSetting`] is built once per [`DataExchangeSetting`] and caches
//! all of it:
//!
//! * the [`CompiledDtd`]s of both schemas (interned symbols + dense-table
//!   DFAs; shared with the `Dtd` itself, so repeated `CompiledSetting`
//!   construction is cheap);
//! * per-STD compiled patterns ([`CompiledPattern`]), shared/target-only
//!   variable sets and fully-specified/wildcard flags;
//! * lazily, per-element [`RepairContext`]s for the chase (`ChangeReg`), the
//!   `D°`/`D*` unique-tree plan for the nested-relational consistency check
//!   of Theorem 4.5, and the automata solvers of the general check of
//!   Theorem 4.1.
//!
//! The original implementations remain available as `*_reference` functions
//! in [`crate::solution`] and [`crate::consistency`]; the compiled paths are
//! differential-tested against them.

use crate::consistency::{ConsistencyMethod, ConsistencyVerdict};
use crate::setting::DataExchangeSetting;
use crate::solution::{apply_change_reg, chase_budget, children_multiset, SolutionError};
use crate::template::TargetTemplate;
use std::collections::hash_map::DefaultHasher;
use std::collections::VecDeque;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock, RwLock};
use xdx_automata::PatternSatisfiability;
use xdx_patterns::compiled::{holds_in_matches, CompiledPattern, InternedLabels};
use xdx_patterns::plan::{EvalScratch, PatternPlan, TreeIndex};
use xdx_patterns::{TreePattern, Var};
use xdx_relang::repair::{RepairConfig, RepairContext};
use xdx_xmltree::{CompiledDtd, DtdError, ElementType, NodeId, NullGen, Sym, Value, XmlTree};

/// One STD with its setting-dependent analyses precomputed.
#[derive(Debug, Clone)]
pub struct CompiledStd {
    /// Variables shared between source and target patterns (`x̄`).
    pub shared_vars: BTreeSet<Var>,
    /// Target-only variables (`z̄`), precomputed so every instantiation of
    /// the target pattern skips the per-match set algebra.
    pub target_only_vars: Vec<Var>,
    /// The source pattern compiled against the source DTD's interner.
    pub source_compiled: CompiledPattern,
    /// The target pattern compiled against the target DTD's interner.
    pub target_compiled: CompiledPattern,
    /// The source pattern's join-ordered evaluation plan, built on first
    /// document and reused across every source document of every batch.
    /// Lazy so consistency-only callers (which never evaluate STD patterns
    /// against documents) pay nothing for it.
    source_plan: OnceLock<PatternPlan>,
    /// The target pattern's join-ordered evaluation plan (lazy, see above).
    target_plan: OnceLock<PatternPlan>,
    /// The target pattern flattened for template stamping (`None` exactly
    /// when the target uses a wildcard or is not fully specified — those
    /// STDs error out of pre-solution construction before instantiation).
    target_template: Option<TargetTemplate>,
    /// `ϕ°` — the attribute-erased source pattern (Claim 4.2).
    pub erased_source: TreePattern,
    /// `ψ°` — the attribute-erased target pattern.
    pub erased_target: TreePattern,
    /// Is the target pattern fully specified (Definition 5.10)?
    pub target_fully_specified: bool,
    /// Does the target pattern use a wildcard?
    pub target_uses_wildcard: bool,
}

impl CompiledStd {
    /// The source pattern's join-ordered evaluation plan.
    pub fn source_plan(&self) -> &PatternPlan {
        self.source_plan
            .get_or_init(|| PatternPlan::from_compiled(&self.source_compiled))
    }

    /// The target pattern's join-ordered evaluation plan.
    pub fn target_plan(&self) -> &PatternPlan {
        self.target_plan
            .get_or_init(|| PatternPlan::from_compiled(&self.target_compiled))
    }
}

/// Precomputed plan for the nested-relational consistency check of
/// Theorem 4.5. The `D°_S`/`D*_T` unique trees and the erased STD patterns
/// are all fixed by the setting, so the per-STD pattern verdicts are
/// evaluated **once** here (with the planned evaluator) and every
/// consistency call after the first reads the cached booleans.
struct NestedRelationalPlan {
    /// Per STD: does the erased source pattern hold in the `D°_S` tree?
    source_holds: Vec<bool>,
    /// Per STD: does the erased target pattern hold in the `D*_T` tree?
    target_holds: Vec<bool>,
}

/// Per-worker reusable document-processing state.
///
/// The per-*setting* artefacts (compiled DTDs, plans, repair contexts) are
/// amortised by [`CompiledSetting`]; what remains per *document* is heap
/// churn: the source-tree [`TreeIndex`], the solution-tree index of the
/// certain-answer path, the pattern evaluator's assignment store
/// ([`EvalScratch`]) and the template-stamping value buffers. An
/// `ExchangeScratch` owns all of them, and the `*_with` methods of
/// [`CompiledSetting`] reset-and-reuse instead of reallocating — the
/// ROADMAP's per-document amortisation step for batch and serving hot
/// paths. [`crate::engine::BatchEngine`] keeps one per worker thread, as
/// does the `xdx-server` dispatcher.
///
/// Per-request engine work counters, accumulated on the worker's
/// [`ExchangeScratch`]: chase node visits and applied repairs. The serving
/// layer zeroes them before a request and reads them after, turning them
/// into per-request histograms — no atomics, because a scratch belongs to
/// one worker by construction.
#[derive(Debug, Default, Clone, Copy)]
pub struct EngineCounters {
    /// Worklist pops of the chase (each is one node visit: a fast accept
    /// or a repair attempt).
    pub chase_steps: u64,
    /// Repairs the chase actually applied (the budgeted step count).
    pub chase_repairs: u64,
}

/// Deliberately not `Sync`: one scratch belongs to one worker.
#[derive(Debug, Default)]
pub struct ExchangeScratch {
    /// Source-document index slot (rebuilt in place per document).
    pub(crate) source_index: Option<TreeIndex>,
    /// Canonical-solution index slot (certain-answer evaluation).
    pub(crate) solution_index: Option<TreeIndex>,
    /// Assignment-store scratch shared by presolution and query evaluation
    /// (never live at the same time).
    pub(crate) eval: EvalScratch,
    /// Template-stamping buffer: shared-variable values of one match.
    shared_vals: Vec<Value>,
    /// Template-stamping buffer: per-instantiation null values.
    null_vals: Vec<Value>,
    /// Chase work counters of requests run on this scratch (see
    /// [`EngineCounters`]); the caller zeroes and reads them per request.
    pub counters: EngineCounters,
}

impl ExchangeScratch {
    /// A fresh scratch (what the non-`_with` entry points build per call).
    pub fn new() -> Self {
        ExchangeScratch::default()
    }

    /// Zero the per-request [`EngineCounters`] (serving-layer hook: call
    /// before a request, read `self.counters` after).
    pub fn reset_counters(&mut self) {
        self.counters = EngineCounters::default();
    }

    /// The assignment-store high-watermark of the pattern evaluator (see
    /// [`xdx_patterns::plan::EvalScratch::assign_highwater`]).
    pub fn assign_highwater(&self) -> usize {
        self.eval.assign_highwater()
    }

    /// The index slot for `tree`, rebuilt in place (or built on first use).
    pub(crate) fn index_for<'a>(
        slot: &'a mut Option<TreeIndex>,
        tree: &XmlTree,
        dtd: &CompiledDtd,
    ) -> &'a TreeIndex {
        match slot {
            Some(index) => {
                index.rebuild(tree, dtd);
                index
            }
            None => slot.insert(TreeIndex::new(tree, dtd)),
        }
    }
}

/// Number of shards of the repair-context cache. Shard contention is rare
/// (the cache is read-mostly after warm-up), so a small power of two keeps
/// the footprint negligible while letting unrelated element types warm up
/// concurrently.
const REPAIR_SHARDS: usize = 8;

/// A sharded, thread-safe map from target element symbols to their (lazily
/// built, then immutable) repair contexts. Shard selection hashes the `Sym`
/// so consecutive symbol ids spread across shards; each shard is a
/// `RwLock`-protected map, and contexts are handed out behind `Arc`s so a
/// reader never holds a lock while chasing.
#[derive(Debug)]
struct RepairContextCache {
    shards: [RwLock<HashMap<Sym, Arc<RepairContext<ElementType>>>>; REPAIR_SHARDS],
}

impl RepairContextCache {
    fn new() -> Self {
        RepairContextCache {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
        }
    }

    fn shard(&self, sym: Sym) -> &RwLock<HashMap<Sym, Arc<RepairContext<ElementType>>>> {
        let mut hasher = DefaultHasher::new();
        sym.hash(&mut hasher);
        &self.shards[hasher.finish() as usize % REPAIR_SHARDS]
    }

    /// The context for `sym`, building it with `build` on first use. Two
    /// threads racing on a cold symbol at worst build twice and keep one —
    /// `build` is pure, so this is only wasted work, never inconsistency.
    fn get_or_build(
        &self,
        sym: Sym,
        build: impl FnOnce() -> RepairContext<ElementType>,
    ) -> Arc<RepairContext<ElementType>> {
        let shard = self.shard(sym);
        if let Some(ctx) = shard.read().expect("repair cache lock poisoned").get(&sym) {
            return Arc::clone(ctx);
        }
        let built = Arc::new(build());
        let mut guard = shard.write().expect("repair cache lock poisoned");
        Arc::clone(guard.entry(sym).or_insert(built))
    }
}

/// A [`DataExchangeSetting`] compiled for repeated evaluation (see the
/// module docs). Borrows the setting; build it once and reuse it for every
/// source document / consistency query.
///
/// Every cache inside is thread-safe (`OnceLock`s and a sharded
/// [`RwLock`] map), so a `CompiledSetting` is `Send + Sync`: one compiled
/// setting can serve concurrent requests — share it behind an `Arc` or via
/// scoped threads, or use [`crate::engine::BatchEngine`] for whole batches.
pub struct CompiledSetting<'s> {
    setting: SettingHold<'s>,
    source: Arc<CompiledDtd>,
    target: Arc<CompiledDtd>,
    stds: Vec<CompiledStd>,
    /// Element types forced by target patterns; repair contexts must cover
    /// them in addition to the content-model alphabet.
    forced_target_elements: BTreeSet<ElementType>,
    /// Per-target-element repair contexts, built on first `ChangeReg` use
    /// and reused across chase invocations (and across threads).
    repair_contexts: RepairContextCache,
    nested: OnceLock<Option<NestedRelationalPlan>>,
    source_solver: OnceLock<PatternSatisfiability>,
    target_solver: OnceLock<PatternSatisfiability>,
}

/// How a [`CompiledSetting`] holds its setting: borrowed (the historical
/// embed-in-your-stack shape, zero indirection) or owned behind an `Arc`
/// (what a *registry* of settings uploaded at runtime needs — a
/// `CompiledSetting<'static>` with no external lifetime to thread through
/// caches and worker pools).
#[derive(Debug)]
enum SettingHold<'s> {
    Borrowed(&'s DataExchangeSetting),
    Owned(Arc<DataExchangeSetting>),
}

impl std::ops::Deref for SettingHold<'_> {
    type Target = DataExchangeSetting;

    fn deref(&self) -> &DataExchangeSetting {
        match self {
            SettingHold::Borrowed(s) => s,
            SettingHold::Owned(s) => s,
        }
    }
}

// Compile-time audit: the whole compiled layer must stay shareable across
// threads — `BatchEngine` and any future async server depend on it. If a
// refactor reintroduces `RefCell`/`Rc`/raw-`OnceCell` state anywhere in
// these types, this function stops compiling.
#[allow(dead_code)]
fn assert_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<CompiledSetting<'static>>();
    check::<CompiledStd>();
    check::<CompiledDtd>();
    check::<CompiledPattern>();
    check::<InternedLabels>();
    check::<PatternPlan>();
    check::<TreeIndex>();
    check::<NestedRelationalPlan>();
    check::<RepairContextCache>();
    check::<PatternSatisfiability>();
}

impl<'s> CompiledSetting<'s> {
    /// Compile `setting`. The DTD compilations are shared with the `Dtd`
    /// values themselves, so this is cheap to call repeatedly; the heavier
    /// caches (repair contexts, consistency plans) fill in lazily on first
    /// use and then persist for the lifetime of this value.
    pub fn new(setting: &'s DataExchangeSetting) -> Self {
        CompiledSetting::from_hold(SettingHold::Borrowed(setting))
    }

    /// As [`CompiledSetting::new`], but owning the setting behind an `Arc`.
    /// The result is `'static`: the shape a setting *registry* needs, where
    /// settings arrive over the wire at runtime and compiled artefacts are
    /// cached and shared with no enclosing stack frame to borrow from.
    pub fn new_owned(setting: Arc<DataExchangeSetting>) -> CompiledSetting<'static> {
        CompiledSetting::from_hold(SettingHold::Owned(setting))
    }

    fn from_hold(hold: SettingHold<'s>) -> Self {
        let setting: &DataExchangeSetting = &hold;
        let source = setting.source_dtd.compiled_arc();
        let target = setting.target_dtd.compiled_arc();
        let target_root = setting.target_dtd.root();
        let mut forced_target_elements: BTreeSet<ElementType> = BTreeSet::new();
        let stds = setting
            .stds
            .iter()
            .map(|std| {
                forced_target_elements.extend(std.target.element_types());
                let source_compiled = CompiledPattern::new(&std.source, &source);
                let target_compiled = CompiledPattern::new(&std.target, &target);
                // One free-vars pass per side covers both variable sets
                // (`Std::{shared,target_only}_vars` would each redo both).
                let source_vars = std.source.free_vars();
                let target_vars = std.target.free_vars();
                let shared_vars: BTreeSet<Var> =
                    source_vars.intersection(&target_vars).cloned().collect();
                CompiledStd {
                    target_template: TargetTemplate::new(&std.target, &shared_vars),
                    shared_vars,
                    target_only_vars: target_vars.difference(&source_vars).cloned().collect(),
                    source_plan: OnceLock::new(),
                    target_plan: OnceLock::new(),
                    source_compiled,
                    target_compiled,
                    erased_source: std.source.erase_attributes(),
                    erased_target: std.target.erase_attributes(),
                    target_fully_specified: std.target.is_fully_specified(target_root),
                    target_uses_wildcard: std.target.uses_wildcard(),
                }
            })
            .collect();
        CompiledSetting {
            setting: hold,
            source,
            target,
            stds,
            forced_target_elements,
            repair_contexts: RepairContextCache::new(),
            nested: OnceLock::new(),
            source_solver: OnceLock::new(),
            target_solver: OnceLock::new(),
        }
    }

    /// The underlying setting.
    pub fn setting(&self) -> &DataExchangeSetting {
        &self.setting
    }

    /// The compiled source DTD.
    pub fn source_dtd(&self) -> &CompiledDtd {
        &self.source
    }

    /// The compiled target DTD.
    pub fn target_dtd(&self) -> &CompiledDtd {
        &self.target
    }

    /// The compiled STDs, in setting order.
    pub fn stds(&self) -> &[CompiledStd] {
        &self.stds
    }

    // ------------------------------------------------------------------
    // Canonical pre-solution and chase (Section 6.1)
    // ------------------------------------------------------------------

    /// Build the canonical pre-solution `cps(T)` (compiled fast path of
    /// [`crate::solution::canonical_presolution`]).
    pub fn canonical_presolution(
        &self,
        source_tree: &XmlTree,
        nulls: &mut NullGen,
    ) -> Result<XmlTree, SolutionError> {
        self.canonical_presolution_with(source_tree, nulls, &mut ExchangeScratch::new())
    }

    /// As [`CompiledSetting::canonical_presolution`] on a caller-held
    /// [`ExchangeScratch`]: the source-tree index and the evaluator's
    /// assignment store keep their heap blocks across documents.
    pub fn canonical_presolution_with(
        &self,
        source_tree: &XmlTree,
        nulls: &mut NullGen,
        scratch: &mut ExchangeScratch,
    ) -> Result<XmlTree, SolutionError> {
        let mut tree = XmlTree::new(self.setting.target_dtd.root().clone());
        let root = tree.root();
        let ExchangeScratch {
            source_index,
            eval,
            shared_vals: shared_scratch,
            null_vals: null_scratch,
            ..
        } = scratch;
        let index = ExchangeScratch::index_for(source_index, source_tree, &self.source);
        for (std_index, cstd) in self.stds.iter().enumerate() {
            if cstd.target_uses_wildcard {
                return Err(SolutionError::WildcardInTarget { std_index });
            }
            if !cstd.target_fully_specified {
                return Err(SolutionError::NotFullySpecified { std_index });
            }
            let template = cstd
                .target_template
                .as_ref()
                .expect("fully-specified, wildcard-free targets always have a template");
            // Matches restricted to the shared variables, deduplicated
            // (instantiations that differ only in source-only variables are
            // homomorphically equivalent); restriction and dedup run on
            // interned assignment ids inside the plan's store, and each
            // surviving match is template-stamped — bulk arena reservation
            // plus slot fills, no per-match recursion or `BTreeMap`.
            cstd.source_plan().try_for_each_restricted_match_with(
                source_tree,
                index,
                &cstd.shared_vars,
                &mut *eval,
                |restricted| {
                    template.stamp(
                        &mut tree,
                        root,
                        restricted,
                        nulls,
                        shared_scratch,
                        null_scratch,
                    );
                    Ok::<(), SolutionError>(())
                },
            )?;
        }
        Ok(tree)
    }

    /// Run the chase of Section 6.1 (`ChangeAtt` / `ChangeReg`) on `tree`
    /// (compiled fast path of [`crate::solution::chase`]).
    ///
    /// Unlike the reference (which re-snapshots `tree.nodes()` and restarts
    /// its full scan after every `ChangeReg` — `O(n)` per repair, `O(n²)`
    /// chases on repair-heavy trees), this is a **worklist chase**: both
    /// chase steps are local to one node (`ChangeAtt` reads and writes only
    /// the node's own attributes; `ChangeReg` only its child multiset), so
    /// a repair at `n` cannot invalidate the check of any node it did not
    /// create or merge. The queue is seeded with every node once, in
    /// document order; after a repair only `n` itself and the nodes the
    /// step created (fresh empty children, the merge survivor) are
    /// re-enqueued, and merged-away children are skipped when popped. Each
    /// node is therefore visited `1 + (its own repairs)` times.
    ///
    /// The chase is confluent up to null renaming and sibling order, so the
    /// different visit order produces [`XmlTree::unordered_eq`]-identical
    /// results; when several *independent* unrepairable violations exist,
    /// which one is reported can differ from the reference (whose own
    /// report order is an artefact of its restart scan). The randomized
    /// harness in `tests/chase_differential.rs` pins both behaviours.
    pub fn chase(&self, tree: &mut XmlTree, nulls: &mut NullGen) -> Result<(), SolutionError> {
        self.chase_with_budget(tree, nulls, chase_budget(tree.size()))
    }

    /// As [`CompiledSetting::chase`] with an explicit step budget — a
    /// testing hook so the differential harness can drive both chase
    /// implementations into `ChaseBudgetExceeded` without 100 000-step
    /// runs. One *applied repair* is one step, closely mirroring the
    /// reference, whose restart scans perform at most one repair each (it
    /// additionally counts repair-free scans, so exact step counts differ
    /// by a small constant and tiny budgets can split the verdict — only
    /// exhaustion on unboundedly growing chases is pinned across the two).
    /// Pops that repair nothing are not counted; they are bounded by
    /// `initial nodes + nodes created by counted repairs`, so termination
    /// still only depends on the budget.
    pub fn chase_with_budget(
        &self,
        tree: &mut XmlTree,
        nulls: &mut NullGen,
        budget: usize,
    ) -> Result<(), SolutionError> {
        // Seed with every reachable node in document order.
        let queue: VecDeque<NodeId> = tree.preorder().collect();
        let mut queued = vec![false; tree.arena_len()];
        for &n in &queue {
            queued[n.index()] = true;
        }
        self.chase_seeded(tree, nulls, budget, queue, queued, None)
    }

    /// As [`CompiledSetting::chase`], but charging pops and applied repairs
    /// to `counters` — the instrumented path [`canonical_solution_with`]
    /// (and through it the serving dispatcher) takes so per-request chase
    /// work is observable without taxing the public entry points.
    ///
    /// [`canonical_solution_with`]: CompiledSetting::canonical_solution_with
    fn chase_counted(
        &self,
        tree: &mut XmlTree,
        nulls: &mut NullGen,
        counters: &mut EngineCounters,
    ) -> Result<(), SolutionError> {
        let budget = chase_budget(tree.size());
        let queue: VecDeque<NodeId> = tree.preorder().collect();
        let mut queued = vec![false; tree.arena_len()];
        for &n in &queue {
            queued[n.index()] = true;
        }
        self.chase_seeded(tree, nulls, budget, queue, queued, Some(counters))
    }

    /// Re-chase an **already chase-clean** tree after node-local edits,
    /// visiting only the dirty region: the worklist is seeded from `dirty`
    /// instead of the full preorder, so the cost is `O(|dirty| + repairs)`
    /// rather than `O(|tree|)` — the `xdx-store` re-validation fast path.
    ///
    /// Soundness precondition (the caller's contract, *not* checked here):
    /// `tree` must previously have chased clean (a full [`CompiledSetting::chase`]
    /// returned `Ok`), and since then only node-local mutations covered by
    /// `dirty` may have occurred. `dirty` must contain every node whose
    /// attribute set or child list changed — in particular the *parent* of
    /// every inserted or removed child, and every newly inserted node
    /// itself. Both chase steps are local to one node (`ChangeAtt` reads
    /// and writes only the node's own attributes, `ChangeReg` only its
    /// child multiset), so nodes outside the seeded set — clean before the
    /// edits and untouched by them — cannot have become violating; any
    /// repair cascade *started* inside the dirty region is followed
    /// normally via re-enqueueing. On a tree that never chased clean the
    /// call is still safe (it never mis-repairs), but it may miss
    /// violations outside the seeded region — the randomized differential
    /// in `tests/store.rs` pins this path against a full re-chase from a
    /// re-parse.
    ///
    /// Stale ids are tolerated: a dirty node that was detached (e.g. a
    /// removed child) expires when popped, exactly like a merged-away
    /// child in the full chase.
    pub fn chase_incremental(
        &self,
        tree: &mut XmlTree,
        nulls: &mut NullGen,
        dirty: &[NodeId],
    ) -> Result<(), SolutionError> {
        // Budget from the arena length, not `size()`: arena_len ≥ size and
        // is O(1), where a `size()` traversal would put an O(document) cost
        // back into the O(dirty) path this entry point exists for.
        self.chase_incremental_with_budget(tree, nulls, dirty, chase_budget(tree.arena_len()))
    }

    /// As [`CompiledSetting::chase_incremental`] with an explicit step
    /// budget (same counting rules as [`CompiledSetting::chase_with_budget`]).
    pub fn chase_incremental_with_budget(
        &self,
        tree: &mut XmlTree,
        nulls: &mut NullGen,
        dirty: &[NodeId],
        budget: usize,
    ) -> Result<(), SolutionError> {
        let mut queued = vec![false; tree.arena_len()];
        let mut queue: VecDeque<NodeId> = VecDeque::with_capacity(dirty.len());
        for &n in dirty {
            assert!(
                n.index() < tree.arena_len(),
                "dirty node id outside the tree's arena"
            );
            if !queued[n.index()] {
                queued[n.index()] = true;
                queue.push_back(n);
            }
        }
        self.chase_seeded(tree, nulls, budget, queue, queued, None)
    }

    /// The worklist chase proper, shared by the full and incremental entry
    /// points: pops until the seeded-plus-cascaded queue drains.
    fn chase_seeded(
        &self,
        tree: &mut XmlTree,
        nulls: &mut NullGen,
        budget: usize,
        mut queue: VecDeque<NodeId>,
        mut queued: Vec<bool>,
        mut counters: Option<&mut EngineCounters>,
    ) -> Result<(), SolutionError> {
        let repair_config = RepairConfig::default();
        let mut steps = 0usize;
        // The children multiset is accumulated in a `Sym`-indexed dense
        // count vector (`dense`, one slot per target element type, zeroed
        // between nodes by walking `touched`): counting is `O(children)`
        // with no comparisons, and the sparse `(Sym, count)` view handed to
        // the fast accept — and, on the slow path, the `ElementType`-keyed
        // multiset handed to the repair machinery — costs one entry per
        // *distinct* child label, not one `BTreeMap` operation per child.
        // Only nodes with children the target DTD does not declare fall
        // back to the label-keyed map walk ([`children_multiset`]).
        let mut dense: Vec<u64> = vec![0; self.target.num_elements()];
        let mut touched: Vec<Sym> = Vec::new();
        let mut counts_sparse: Vec<(Sym, u64)> = Vec::new();
        // Contexts whose alphabet had to be extended beyond the precomputed
        // one (labels forced by neither content models nor STDs).
        let mut overrides: BTreeMap<ElementType, RepairContext<ElementType>> = BTreeMap::new();

        // `queued` (indexed by arena slot) keeps queue membership O(1).
        fn enqueue(queue: &mut VecDeque<NodeId>, queued: &mut Vec<bool>, node: NodeId) {
            if queued.len() <= node.index() {
                queued.resize(node.index() + 1, false);
            }
            if !queued[node.index()] {
                queued[node.index()] = true;
                queue.push_back(node);
            }
        }

        while let Some(node) = queue.pop_front() {
            queued[node.index()] = false;
            // Work accounting is written through immediately (not at the
            // end), so budget-exceeded and unrepairable exits still report
            // the work done. One predictable branch per pop — noise next
            // to the per-node attribute walk and child scan.
            if let Some(c) = counters.as_deref_mut() {
                c.chase_steps += 1;
            }
            // Merged-away children are detached by `ChangeReg`; their queue
            // entries are stale and simply expire here.
            if node != tree.root() && tree.parent(node).is_none() {
                continue;
            }
            let Some(sym) = self.target.sym(tree.label(node)) else {
                // An undeclared label at the root has no repairing parent:
                // report it. Anywhere else the node's *parent* is doomed —
                // no multiset containing an undeclared symbol is repairable
                // — and the parent is popped (or merged into a survivor
                // that is re-enqueued) in every run, so deferring to its
                // `NoRepair` reproduces the reference scan, which always
                // reaches the failing parent before the undeclared child.
                if node == tree.root() {
                    return Err(SolutionError::UnknownTargetElement {
                        element: tree.label(node).clone(),
                    });
                }
                continue;
            };
            let label = self.target.element(sym);
            // --- ChangeAtt -------------------------------------------------
            // Filling allowed-but-missing attributes cannot invalidate any
            // check (no other step reads this node's attributes), so attr
            // fills never re-enqueue anything.
            let allowed = self.target.attrs(sym);
            for attr in tree.attrs(node).keys() {
                if allowed.binary_search(attr).is_err() {
                    return Err(SolutionError::DisallowedAttribute {
                        element: label.clone(),
                        attr: attr.clone(),
                    });
                }
            }
            for attr in allowed {
                if tree.attr(node, attr).is_none() {
                    tree.set_attr(node, attr.clone(), nulls.fresh_value());
                }
            }
            // --- ChangeReg -------------------------------------------------
            // Fast accept: all children interned and the count vector is
            // in the permutation language (bounds or bitset search).
            let mut all_known = true;
            for &c in tree.children(node) {
                match self.target.sym(tree.label(c)) {
                    Some(s) => {
                        if dense[s.index()] == 0 {
                            touched.push(s);
                        }
                        dense[s.index()] += 1;
                    }
                    None => {
                        all_known = false;
                        break;
                    }
                }
            }
            counts_sparse.clear();
            if all_known {
                // One entry per distinct child symbol, ascending `Sym`
                // order (what `perm_accepts_counts` requires).
                touched.sort_unstable();
                counts_sparse.extend(touched.iter().map(|&s| (s, dense[s.index()])));
            }
            for &s in &touched {
                dense[s.index()] = 0;
            }
            touched.clear();
            if all_known && self.target.perm_accepts_counts(sym, &counts_sparse) {
                continue;
            }
            // Slow path: full repair machinery, mirroring the reference
            // chase step for step. The shared per-element context covers
            // the content-model alphabet plus every STD-forced element;
            // when a child label falls outside even that, a per-chase
            // override context is built exactly as the reference does.
            let child_counts: BTreeMap<ElementType, u64> = if all_known {
                counts_sparse
                    .iter()
                    .map(|&(s, c)| (self.target.element(s).clone(), c))
                    .collect()
            } else {
                children_multiset(tree, node)
            };
            let shared = self.repair_contexts.get_or_build(sym, || {
                RepairContext::new(
                    &self.setting.target_dtd.rule(label),
                    self.forced_target_elements.iter().cloned(),
                )
            });
            let ctx: &RepairContext<ElementType> = if child_counts
                .keys()
                .any(|k| shared.alphabet().index(k).is_none())
            {
                let needs_rebuild = match overrides.get(label) {
                    Some(ctx) => child_counts
                        .keys()
                        .any(|k| ctx.alphabet().index(k).is_none()),
                    None => true,
                };
                if needs_rebuild {
                    overrides.insert(
                        label.clone(),
                        RepairContext::new(
                            &self.setting.target_dtd.rule(label),
                            child_counts.keys().cloned(),
                        ),
                    );
                }
                overrides.get(label).expect("context ensured above")
            } else {
                &shared
            };
            if ctx.perm_contains(&child_counts) {
                continue;
            }
            let maximum = match ctx.maximum_repair(&child_counts, &repair_config) {
                Ok(m) => m,
                Err(e) => {
                    return Err(SolutionError::RepairBudgetExceeded {
                        message: e.to_string(),
                    })
                }
            };
            let Some(target_counts) = maximum else {
                let any = ctx
                    .rep(&child_counts, &repair_config)
                    .map(|r| !r.is_empty())
                    .unwrap_or(false);
                return Err(if any {
                    SolutionError::NoMaximumRepair {
                        element: label.clone(),
                    }
                } else {
                    SolutionError::NoRepair {
                        element: label.clone(),
                    }
                });
            };
            steps += 1;
            if let Some(c) = counters.as_deref_mut() {
                c.chase_repairs += 1;
            }
            if steps > budget {
                return Err(SolutionError::ChaseBudgetExceeded { steps });
            }
            let arena_before = tree.arena_len();
            apply_change_reg(
                tree,
                node,
                label,
                &child_counts,
                &target_counts,
                &self.setting.target_dtd,
            )?;
            // Re-enqueue the repaired node (defensive: its new multiset is a
            // repair, hence already in the permutation language — the
            // re-visit is one cheap fast-accept) and every node the step
            // allocated: fresh empty children need their own `ChangeAtt` /
            // `ChangeReg`, and a merge survivor's unioned child multiset
            // must be re-checked. Nothing else can have been invalidated.
            enqueue(&mut queue, &mut queued, node);
            for created in arena_before..tree.arena_len() {
                enqueue(&mut queue, &mut queued, NodeId::from_index(created));
            }
        }
        Ok(())
    }

    /// Canonical pre-solution followed by the chase (compiled fast path of
    /// [`crate::solution::canonical_solution`]).
    pub fn canonical_solution(&self, source_tree: &XmlTree) -> Result<XmlTree, SolutionError> {
        self.canonical_solution_with(source_tree, &mut ExchangeScratch::new())
    }

    /// As [`CompiledSetting::canonical_solution`] on a caller-held
    /// [`ExchangeScratch`] — the per-document amortisation hook used by
    /// [`crate::engine::BatchEngine`] workers and the serving dispatcher.
    /// Nulls still start at `⊥0` per document, so results are identical to
    /// the scratch-free call.
    pub fn canonical_solution_with(
        &self,
        source_tree: &XmlTree,
        scratch: &mut ExchangeScratch,
    ) -> Result<XmlTree, SolutionError> {
        let mut nulls = NullGen::new();
        let mut tree = self.canonical_presolution_with(source_tree, &mut nulls, scratch)?;
        self.chase_counted(&mut tree, &mut nulls, &mut scratch.counters)?;
        Ok(tree)
    }

    /// Is `source_tree` a conforming source instance that admits a solution
    /// (the per-document consistency check of
    /// [`crate::engine::BatchEngine::check_consistency_batch`])?
    pub fn check_instance_consistency_with(
        &self,
        source_tree: &XmlTree,
        scratch: &mut ExchangeScratch,
    ) -> bool {
        self.source.conforms(source_tree)
            && self.canonical_solution_with(source_tree, scratch).is_ok()
    }

    /// Canonical solution plus the certain answers of a pre-planned query
    /// over it (the per-document body of
    /// [`crate::engine::BatchEngine::certain_answers_batch`], also used by
    /// the serving dispatcher). `plan` must have been built against this
    /// setting's target DTD.
    pub fn certain_answers_planned_with(
        &self,
        source_tree: &XmlTree,
        plan: &xdx_patterns::plan::QueryPlan,
        scratch: &mut ExchangeScratch,
    ) -> Result<crate::certain::CertainAnswers, SolutionError> {
        let solution = self.canonical_solution_with(source_tree, scratch)?;
        let ExchangeScratch {
            solution_index,
            eval,
            ..
        } = scratch;
        let index = ExchangeScratch::index_for(solution_index, &solution, &self.target);
        let tuples = crate::certain::certain_tuples_planned_with(&solution, plan, index, eval);
        Ok(crate::certain::CertainAnswers { tuples, solution })
    }

    /// Canonical solution plus the Boolean certain answer of a pre-planned
    /// query (the scratch-reusing analogue of
    /// [`crate::certain::certain_answers_boolean`]).
    pub fn certain_boolean_planned_with(
        &self,
        source_tree: &XmlTree,
        plan: &xdx_patterns::plan::QueryPlan,
        scratch: &mut ExchangeScratch,
    ) -> Result<bool, SolutionError> {
        let solution = self.canonical_solution_with(source_tree, scratch)?;
        let ExchangeScratch {
            solution_index,
            eval,
            ..
        } = scratch;
        let index = ExchangeScratch::index_for(solution_index, &solution, &self.target);
        Ok(plan.evaluate_boolean_with(&solution, index, eval))
    }

    /// Is `target_tree` a solution for `source_tree` (Definition 3.3;
    /// compiled fast path of [`crate::solution::is_solution`])?
    ///
    /// Unlike the reference, the match relation `ψ(T')` of each STD is
    /// computed once per STD instead of once per source-side match.
    pub fn is_solution(&self, source_tree: &XmlTree, target_tree: &XmlTree, ordered: bool) -> bool {
        let conforms = if ordered {
            self.target.conforms(target_tree)
        } else {
            self.target.conforms_unordered(target_tree)
        };
        if !conforms {
            return false;
        }
        let source_index = TreeIndex::new(source_tree, &self.source);
        let target_index = TreeIndex::new(target_tree, &self.target);
        for cstd in &self.stds {
            let target_matches = cstd.target_plan().all_matches(target_tree, &target_index);
            let all_hold = cstd
                .source_plan()
                .try_for_each_restricted_match(
                    source_tree,
                    &source_index,
                    &cstd.shared_vars,
                    |restricted| {
                        if holds_in_matches(&target_matches, restricted) {
                            Ok(())
                        } else {
                            Err(())
                        }
                    },
                )
                .is_ok();
            if !all_hold {
                return false;
            }
        }
        true
    }

    // ------------------------------------------------------------------
    // Consistency (Section 4)
    // ------------------------------------------------------------------

    fn nested_plan(&self) -> Option<&NestedRelationalPlan> {
        self.nested
            .get_or_init(|| {
                let circle = self.setting.source_dtd.to_circle().ok()?;
                let star = self.setting.target_dtd.to_star().ok()?;
                let fill = |_: &_, _: &_| Value::constant("s0");
                let circle_tree = circle.unique_conforming_tree_with(fill).ok()?;
                let star_tree = star.unique_conforming_tree_with(fill).ok()?;
                let circle_index = TreeIndex::new(&circle_tree, circle.compiled());
                let star_index = TreeIndex::new(&star_tree, star.compiled());
                // The trees and patterns are fixed per setting: evaluate
                // every erased pattern once, cache only the verdicts.
                let source_holds = self
                    .stds
                    .iter()
                    .map(|c| {
                        !PatternPlan::new(&c.erased_source, circle.compiled())
                            .all_matches(&circle_tree, &circle_index)
                            .is_empty()
                    })
                    .collect();
                let target_holds = self
                    .stds
                    .iter()
                    .map(|c| {
                        !PatternPlan::new(&c.erased_target, star.compiled())
                            .all_matches(&star_tree, &star_index)
                            .is_empty()
                    })
                    .collect();
                Some(NestedRelationalPlan {
                    source_holds,
                    target_holds,
                })
            })
            .as_ref()
    }

    /// The `O(n·m²)` nested-relational consistency check of Theorem 4.5
    /// (compiled fast path of
    /// [`crate::consistency::check_consistency_nested_relational`]): the
    /// `D°`/`D*` trees are built and the (erased, planned) STD patterns
    /// evaluated over them once per setting; every call reads the cached
    /// per-STD verdicts.
    pub fn check_consistency_nested_relational(&self) -> Result<bool, DtdError> {
        let Some(plan) = self.nested_plan() else {
            // Reproduce the reference error (which DTD fails, and why).
            self.setting.source_dtd.to_circle()?;
            self.setting.target_dtd.to_star()?;
            unreachable!("nested plan construction only fails on non-nested-relational DTDs");
        };
        Ok((0..self.stds.len()).all(|i| !plan.source_holds[i] || plan.target_holds[i]))
    }

    /// The general (worst-case exponential) consistency check of Theorem 4.1
    /// (compiled fast path of
    /// [`crate::consistency::check_consistency_general`]): the two automata
    /// solvers are built once, and the subset loop passes pattern
    /// *references* instead of cloning patterns per subset.
    pub fn check_consistency_general(&self) -> bool {
        let n = self.stds.len();
        if n == 0 {
            return self.setting.source_dtd.is_satisfiable()
                && self.setting.target_dtd.is_satisfiable();
        }
        let source_solver = self
            .source_solver
            .get_or_init(|| PatternSatisfiability::new(&self.setting.source_dtd));
        let target_solver = self
            .target_solver
            .get_or_init(|| PatternSatisfiability::new(&self.setting.target_dtd));
        assert!(
            n < usize::BITS as usize,
            "the general consistency check enumerates 2^|Σ_ST| subsets; {n} STDs is not supported"
        );
        for mask in 0usize..(1usize << n) {
            let mut tgt_pos: Vec<&TreePattern> = Vec::new();
            let mut src_pos: Vec<&TreePattern> = Vec::new();
            let mut src_neg: Vec<&TreePattern> = Vec::new();
            for (i, cstd) in self.stds.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    tgt_pos.push(&cstd.erased_target);
                    src_pos.push(&cstd.erased_source);
                } else {
                    src_neg.push(&cstd.erased_source);
                }
            }
            // Check the cheaper target side first.
            if !target_solver.satisfiable(&tgt_pos, &[]) {
                continue;
            }
            if source_solver.satisfiable(&src_pos, &src_neg) {
                return true;
            }
        }
        false
    }

    /// Check consistency, dispatching to the nested-relational fast path
    /// when both DTDs belong to that class (compiled fast path of
    /// [`crate::consistency::check_consistency`]).
    pub fn check_consistency(&self) -> ConsistencyVerdict {
        if self.setting.is_nested_relational() {
            let consistent = self
                .check_consistency_nested_relational()
                .expect("is_nested_relational() checked the precondition");
            ConsistencyVerdict {
                consistent,
                method: ConsistencyMethod::NestedRelational,
            }
        } else {
            ConsistencyVerdict {
                consistent: self.check_consistency_general(),
                method: ConsistencyMethod::General,
            }
        }
    }
}

impl std::fmt::Debug for CompiledSetting<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledSetting")
            .field("stds", &self.stds.len())
            .field("source_elements", &self.source.num_elements())
            .field("target_elements", &self.target.num_elements())
            .finish()
    }
}

/// Convenience: compile `setting`. Prefer holding a [`CompiledSetting`] when
/// processing many documents against the same setting.
pub fn compile(setting: &DataExchangeSetting) -> CompiledSetting<'_> {
    CompiledSetting::new(setting)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency::{
        check_consistency_general_reference, check_consistency_nested_relational_reference,
    };
    use crate::setting::{books_to_writers_setting, figure_1_source_tree, Std};
    use crate::solution::{canonical_solution_reference, is_solution_reference};
    use xdx_xmltree::Dtd;

    #[test]
    fn compiled_canonical_solution_matches_reference_on_running_example() {
        let setting = books_to_writers_setting();
        let source = figure_1_source_tree();
        let compiled = CompiledSetting::new(&setting);
        let fast = compiled.canonical_solution(&source).unwrap();
        let reference = canonical_solution_reference(&setting, &source).unwrap();
        // Same shape up to null renaming and sibling order.
        assert_eq!(fast.size(), reference.size());
        assert!(setting.target_dtd.conforms_unordered(&fast));
        assert!(compiled.is_solution(&source, &fast, false));
        assert!(is_solution_reference(&setting, &source, &fast, false));
        assert!(compiled.is_solution(&source, &reference, false));
    }

    #[test]
    fn compiled_chase_errors_match_reference() {
        // Forced merge with clashing constants (Example from Section 6.1).
        let source_dtd = Dtd::builder("db")
            .rule("db", "book*")
            .rule("book", "author*")
            .attributes("book", ["@title"])
            .attributes("author", ["@name", "@aff"])
            .build()
            .unwrap();
        let target_dtd = Dtd::builder("bib")
            .rule("bib", "writer")
            .rule("writer", "work*")
            .attributes("writer", ["@name"])
            .attributes("work", ["@title", "@year"])
            .build()
            .unwrap();
        let std = Std::parse(
            "bib[writer(@name=$y)[work(@title=$x, @year=$z)]] :- db[book(@title=$x)[author(@name=$y)]]",
        )
        .unwrap();
        let setting = DataExchangeSetting::new(source_dtd, target_dtd, vec![std]);
        let source = figure_1_source_tree();
        let compiled = CompiledSetting::new(&setting);
        let fast = compiled.canonical_solution(&source).unwrap_err();
        let reference = canonical_solution_reference(&setting, &source).unwrap_err();
        assert!(matches!(fast, SolutionError::AttributeClash { .. }));
        assert!(matches!(reference, SolutionError::AttributeClash { .. }));
    }

    #[test]
    fn undeclared_source_labels_still_drive_the_exchange() {
        // Settings are not validated by default, and pattern semantics never
        // require the source tree to conform: an STD whose source pattern
        // mentions an element type the source DTD does not declare must
        // still fire on a source tree carrying that label, exactly as the
        // reference path does (regression test for the compiled pattern
        // resolver treating undeclared labels as statically unsatisfiable).
        let source_dtd = Dtd::builder("db").rule("db", "book*").build().unwrap();
        let target_dtd = Dtd::builder("bib")
            .rule("bib", "entry*")
            .attributes("entry", ["@t"])
            .build()
            .unwrap();
        let std = Std::parse("bib[entry(@t=$x)] :- db[journal(@t=$x)]").unwrap();
        let setting = DataExchangeSetting::new(source_dtd, target_dtd, vec![std]);
        let mut source = XmlTree::new("db");
        let j = source.add_child(source.root(), "journal");
        source.set_attr(j, "@t", "JACM");

        let compiled = CompiledSetting::new(&setting);
        let fast = compiled.canonical_solution(&source).unwrap();
        let reference = canonical_solution_reference(&setting, &source).unwrap();
        assert_eq!(fast.size(), 2, "the journal match must produce an entry");
        assert_eq!(fast.size(), reference.size());
        assert_eq!(
            compiled.is_solution(&source, &fast, false),
            is_solution_reference(&setting, &source, &fast, false)
        );
    }

    #[test]
    fn compiled_consistency_agrees_with_reference() {
        let nested = books_to_writers_setting();
        let compiled = CompiledSetting::new(&nested);
        assert_eq!(
            compiled.check_consistency_nested_relational().unwrap(),
            check_consistency_nested_relational_reference(&nested).unwrap()
        );
        assert_eq!(
            compiled.check_consistency_general(),
            check_consistency_general_reference(&nested)
        );

        // An inconsistent general setting.
        let source = Dtd::builder("r").rule("r", "a*").build().unwrap();
        let target = Dtd::builder("r2")
            .rule("r2", "one|two")
            .rule("one", "eps")
            .rule("two", "eps")
            .build()
            .unwrap();
        let std = Std::parse("r2[one[two(@a=$x)]] :- r").unwrap();
        let setting = DataExchangeSetting::new(source, target, vec![std]);
        let compiled = CompiledSetting::new(&setting);
        assert_eq!(
            compiled.check_consistency_general(),
            check_consistency_general_reference(&setting)
        );
        assert!(!compiled.check_consistency().consistent);
    }

    /// A setting whose target DTD forces repairs: every `writer` must carry
    /// `@name` and exactly one `work` child.
    fn repair_forcing_setting() -> DataExchangeSetting {
        let source_dtd = Dtd::builder("db").rule("db", "eps").build().unwrap();
        let target_dtd = Dtd::builder("bib")
            .rule("bib", "writer*")
            .rule("writer", "work")
            .attributes("writer", ["@name"])
            .attributes("work", ["@title"])
            .build()
            .unwrap();
        DataExchangeSetting::new(source_dtd, target_dtd, vec![])
    }

    #[test]
    fn incremental_chase_repairs_the_dirty_region_of_a_clean_tree() {
        let setting = repair_forcing_setting();
        let compiled = CompiledSetting::new(&setting);
        let mut nulls = NullGen::new();
        let mut tree = XmlTree::new("bib");
        let w = tree.add_child(tree.root(), "writer");
        tree.set_attr(w, "@name", "n");
        let k = tree.add_child(w, "work");
        tree.set_attr(k, "@title", "t");
        compiled.chase(&mut tree, &mut nulls).unwrap();
        let clean_size = tree.size();
        assert_eq!(clean_size, 3, "the hand-built tree is already chase-clean");

        // Edit: a bare writer appears under the root. The dirty set is the
        // edited parent plus the inserted node.
        let root = tree.root();
        let fresh = tree.insert_child(root, 0, "writer");
        compiled
            .chase_incremental(&mut tree, &mut nulls, &[root, fresh])
            .unwrap();
        // The chase must have filled @name and created the mandatory work
        // child (with its own @title) — exactly what a full re-chase does.
        assert!(tree.attr(fresh, &"@name".into()).is_some());
        assert_eq!(tree.children(fresh).len(), 1);
        assert!(compiled.target_dtd().conforms_unordered(&tree));
        let mut full = tree.clone();
        compiled.chase(&mut full, &mut nulls).unwrap();
        assert_eq!(full.size(), tree.size(), "full re-chase finds nothing left");
    }

    #[test]
    fn incremental_chase_reports_unrepairable_edits() {
        let setting = repair_forcing_setting();
        let compiled = CompiledSetting::new(&setting);
        let mut nulls = NullGen::new();
        let mut tree = XmlTree::new("bib");
        compiled.chase(&mut tree, &mut nulls).unwrap();
        // An undeclared child label dooms its parent: no multiset containing
        // it is repairable.
        let root = tree.root();
        let bogus = tree.insert_child(root, 0, "bogus");
        let err = compiled
            .chase_incremental(&mut tree, &mut nulls, &[root, bogus])
            .unwrap_err();
        assert!(
            matches!(err, SolutionError::NoRepair { ref element } if element.as_str() == "bib"),
            "unexpected error: {err:?}"
        );
    }

    #[test]
    fn incremental_chase_tolerates_stale_dirty_ids() {
        let setting = repair_forcing_setting();
        let compiled = CompiledSetting::new(&setting);
        let mut nulls = NullGen::new();
        let mut tree = XmlTree::new("bib");
        let w = tree.add_child(tree.root(), "writer");
        tree.set_attr(w, "@name", "n");
        let k = tree.add_child(w, "work");
        tree.set_attr(k, "@title", "t");
        compiled.chase(&mut tree, &mut nulls).unwrap();
        // Remove the writer subtree; the detached ids stay in the arena and
        // may legitimately appear in a caller's dirty set.
        let root = tree.root();
        tree.detach_child(root, w);
        compiled
            .chase_incremental(&mut tree, &mut nulls, &[root, w, k])
            .unwrap();
        assert!(compiled.target_dtd().conforms_unordered(&tree));
    }

    #[test]
    fn compiled_setting_is_reusable_across_documents() {
        let setting = books_to_writers_setting();
        let compiled = CompiledSetting::new(&setting);
        let empty = XmlTree::new("db");
        let s1 = compiled.canonical_solution(&empty).unwrap();
        assert_eq!(s1.size(), 1);
        let source = figure_1_source_tree();
        let s2 = compiled.canonical_solution(&source).unwrap();
        assert!(compiled.is_solution(&source, &s2, false));
        // A third run on the first document again (caches warm).
        let s3 = compiled.canonical_solution(&empty).unwrap();
        assert_eq!(s3.size(), 1);
    }
}
