//! # xdx-core — XML data exchange
//!
//! The primary contribution of Arenas & Libkin, *"XML Data Exchange:
//! Consistency and Query Answering"* (PODS 2005 / JACM 2008), reproduced as a
//! library on top of the substrates [`xdx_xmltree`] (documents and DTDs),
//! [`xdx_patterns`] (tree patterns and queries), [`xdx_relang`] (regular
//! expression algebra) and [`xdx_automata`] (tree automata).
//!
//! A *data exchange setting* is a triple `(D_S, D_T, Σ_ST)` of a source DTD,
//! a target DTD and source-to-target dependencies (STDs) of the form
//! `ψ_T(x̄, z̄) :– φ_S(x̄, ȳ)` where both sides are tree patterns
//! (Section 3). Given a source tree `T ⊨ D_S`, a *solution* is a target tree
//! `T' ⊨ D_T` such that every STD is satisfied.
//!
//! The library provides the paper's two core computational problems:
//!
//! * **Consistency** ([`consistency`]) — is there any source tree with a
//!   solution? EXPTIME-complete in general (Theorem 4.1, decided here by the
//!   automata-theoretic procedure), `O(n·m²)` for nested-relational DTDs
//!   (Theorem 4.5).
//! * **Certain answers** ([`certain`], [`solution`]) — compute
//!   `certain(Q, T) = ⋂ { Q(T') : T' solution for T }` for conjunctive tree
//!   queries. For fully-specified STDs and *univocal* target DTDs
//!   (Definition 6.9) this is done in polynomial time by building a
//!   *canonical solution* with the chase of Section 6.1 and evaluating `Q`
//!   over it (Theorem 6.2, Corollary 6.11); outside that class the problem is
//!   coNP-complete, which the executable reductions in [`gadgets`] exhibit.
//!
//! Additional machinery: sibling re-ordering of unordered solutions
//! (Proposition 5.2, [`ordering`]), classification of settings into the
//! tractable/intractable sides of the dichotomy ([`classify`]), and the
//! parallel batch-serving engine ([`engine`]) — compile a setting once
//! ([`compiled`], `Send + Sync`) and fan slices of source documents out
//! across threads with deterministic output ordering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod certain;
pub mod classify;
pub mod compiled;
pub mod consistency;
pub mod engine;
pub mod gadgets;
pub mod ordering;
pub mod settext;
pub mod setting;
pub mod solution;
mod template;

pub use cache::{CacheKey, Cached, DocResultCache};
pub use certain::{
    certain_answers, certain_answers_boolean, certain_tuples, certain_tuples_planned,
    certain_tuples_planned_with, CertainAnswers,
};
pub use classify::{classify_setting, SettingClass};
pub use compiled::{CompiledSetting, CompiledStd, ExchangeScratch};
pub use consistency::{check_consistency, ConsistencyMethod, ConsistencyVerdict};
pub use engine::BatchEngine;
pub use ordering::{impose_sibling_order, impose_sibling_order_with, SiblingOrderMemo};
pub use settext::{parse_setting, setting_to_text, SettingTextError};
pub use setting::{DataExchangeSetting, SettingError, Std};
pub use solution::{canonical_presolution, canonical_solution, is_solution, SolutionError};
