//! Executable hardness gadgets.
//!
//! The lower bounds of the paper (coNP-hardness of certain answers outside
//! the fully-specified/univocal class, NP- and PSPACE-hardness of restricted
//! consistency, EXPTIME-hardness of general consistency) are established by
//! reductions. Lower bounds cannot be "run", but the reductions can: this
//! module constructs them as concrete data exchange settings so that
//!
//! * tests can verify the reductions behave as the theorems state on known
//!   instances, and
//! * the benchmark harness can measure the exponential blow-up they induce
//!   and contrast it with the polynomial behaviour of the tractable class
//!   (experiments E2 and E7 in EXPERIMENTS.md).
//!
//! Contents:
//!
//! * [`three_sat`] — 3-CNF formulae, random generation and brute-force
//!   satisfiability (the source of hardness for all reductions here);
//! * [`theorem_5_11`] — the `STD(_, //)` reduction of Theorem 5.11: certain
//!   answering a Boolean CTQ query with wildcards becomes 3SAT-complement;
//! * [`consistency_np`] — the Proposition 4.4(b)-style reduction: consistency
//!   with disjunctive source DTDs and path-pattern STDs encodes 3SAT.

pub mod consistency_np;
pub mod theorem_5_11;
pub mod three_sat;
