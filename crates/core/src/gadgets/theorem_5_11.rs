//! The `STD(_, //)` reduction of Theorem 5.11.
//!
//! Dropping the "fully specified" requirement on target patterns makes
//! certain answering coNP-hard even over *simple* DTDs. The reduction maps a
//! 3-CNF formula `θ` to a source tree `T_θ`, a data exchange setting whose
//! second STD is *not* anchored at the target root, and a Boolean CTQ query
//! `Q` using wildcards, such that
//!
//! ```text
//! θ is satisfiable  ⟺  certain(Q, T_θ) = false.
//! ```
//!
//! Intuitively, each solution must embed, for every clause, a chain
//! `H1(@l=i)[H2(@l=j)[H3(@l=k)]]` somewhere below a `G1` node, and the choice
//! of how deep (directly under `G1`, under `G2`, or under `G3`) encodes which
//! literal of the clause is made true; `Q` detects the inconsistent choices
//! (two complementary literals both "true").

use super::three_sat::CnfFormula;
use crate::setting::{DataExchangeSetting, Std};
use xdx_patterns::parse_pattern;
use xdx_patterns::query::{ConjunctiveTreeQuery, UnionQuery};
use xdx_xmltree::{Dtd, XmlTree};

/// Everything the reduction produces for one formula.
#[derive(Debug, Clone)]
pub struct Gadget {
    /// The data exchange setting (simple DTDs, one non-fully-specified STD).
    pub setting: DataExchangeSetting,
    /// The source tree `T_θ` encoding the formula.
    pub source_tree: XmlTree,
    /// The Boolean query `Q` whose certain answer is `false` iff the formula
    /// is satisfiable.
    pub query: UnionQuery,
}

/// Build the reduction for a formula.
pub fn build(formula: &CnfFormula) -> Gadget {
    let source_dtd = Dtd::builder("K")
        .rule("K", "C* L*")
        .rule("C", "eps")
        .rule("L", "eps")
        .attributes("C", ["@f", "@s", "@t"])
        .attributes("L", ["@p", "@n"])
        .build()
        .expect("well-formed source DTD");
    let target_dtd = Dtd::builder("K")
        .rule("K", "G1* L*")
        .rule("G1", "H1* G2*")
        .rule("G2", "H1* G3*")
        .rule("G3", "H1*")
        .rule("H1", "H2*")
        .rule("H2", "H3*")
        .rule("H3", "eps")
        .rule("L", "eps")
        .attributes("H1", ["@l"])
        .attributes("H2", ["@l"])
        .attributes("H3", ["@l"])
        .attributes("L", ["@p", "@n"])
        .build()
        .expect("well-formed target DTD");

    let stds = vec![
        // Every variable node is copied to the target.
        Std::parse("K[L(@p=$x, @n=$y)] :- K[L(@p=$x, @n=$y)]").expect("well-formed STD"),
        // Every clause forces an H1/H2/H3 chain *somewhere* (not anchored at
        // the root — this is the feature that breaks tractability).
        Std::parse("H1(@l=$x)[H2(@l=$y)[H3(@l=$z)]] :- K[C(@f=$x, @s=$y, @t=$z)]")
            .expect("well-formed STD"),
    ];
    let setting = DataExchangeSetting::new(source_dtd, target_dtd, stds);

    // T_θ: one C node per clause, one L node per variable.
    let mut source_tree = XmlTree::new("K");
    for clause in &formula.clauses {
        let c = source_tree.add_child(source_tree.root(), "C");
        source_tree.set_attr(c, "@f", clause.0[0].code());
        source_tree.set_attr(c, "@s", clause.0[1].code());
        source_tree.set_attr(c, "@t", clause.0[2].code());
    }
    for var in 0..formula.num_vars {
        let l = source_tree.add_child(source_tree.root(), "L");
        source_tree.set_attr(l, "@p", super::three_sat::Literal::pos(var).code());
        source_tree.set_attr(l, "@n", super::three_sat::Literal::neg(var).code());
    }

    // Q: ∃x∃y  L(@p=x, @n=y) ∧ G1[_[_[_(@l=x)]]] ∧ G1[_[_[_(@l=y)]]]
    let query = UnionQuery::single(ConjunctiveTreeQuery::boolean(vec![
        parse_pattern("L(@p=$x, @n=$y)").expect("well-formed pattern"),
        parse_pattern("G1[_[_[_(@l=$x)]]]").expect("well-formed pattern"),
        parse_pattern("G1[_[_[_(@l=$y)]]]").expect("well-formed pattern"),
    ]));

    Gadget {
        setting,
        source_tree,
        query,
    }
}

/// The certain answer of the gadget's Boolean query, decided through the
/// equivalence established by Theorem 5.11 (`certain(Q, T_θ) = true` iff `θ`
/// is unsatisfiable). The underlying satisfiability check is the brute-force
/// exponential search — this is the "intractable side" baseline measured by
/// the benchmark harness.
pub fn certain_answer(formula: &CnfFormula) -> bool {
    formula.brute_force_satisfiable().is_none()
}

/// Build the solution described in the (⇒) direction of the proof of
/// Theorem 5.11 from a satisfying assignment: it is a genuine solution for
/// `T_θ` and does not satisfy `Q`, certifying `certain(Q, T_θ) = false`.
pub fn solution_from_assignment(formula: &CnfFormula, assignment: &[bool]) -> XmlTree {
    assert!(
        formula.satisfied_by(assignment),
        "assignment must satisfy the formula"
    );
    let mut t = XmlTree::new("K");
    // G1 gadgets, one per clause.
    for clause in &formula.clauses {
        let codes = [clause.0[0].code(), clause.0[1].code(), clause.0[2].code()];
        let g1 = t.add_child(t.root(), "G1");
        // Choose a literal made true by the assignment; its position decides
        // the depth of the H1 chain below G1.
        let position = (0..3)
            .find(|&i| clause.0[i].satisfied_by(assignment))
            .expect("satisfied clause has a true literal");
        let chain_parent = match position {
            2 => g1,                    // third literal true: H1 directly under G1
            1 => t.add_child(g1, "G2"), // second literal: G1 → G2 → H1
            _ => {
                let g2 = t.add_child(g1, "G2");
                t.add_child(g2, "G3") // first literal: G1 → G2 → G3 → H1
            }
        };
        let h1 = t.add_child(chain_parent, "H1");
        t.set_attr(h1, "@l", codes[0].as_str());
        let h2 = t.add_child(h1, "H2");
        t.set_attr(h2, "@l", codes[1].as_str());
        let h3 = t.add_child(h2, "H3");
        t.set_attr(h3, "@l", codes[2].as_str());
    }
    // L nodes copied from the source encoding.
    for var in 0..formula.num_vars {
        let l = t.add_child(t.root(), "L");
        t.set_attr(l, "@p", super::three_sat::Literal::pos(var).code());
        t.set_attr(l, "@n", super::three_sat::Literal::neg(var).code());
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify_setting, SettingClass};
    use crate::solution::is_solution;

    #[test]
    fn gadget_is_well_formed() {
        let f = CnfFormula::paper_example();
        let g = build(&f);
        assert!(g.setting.source_dtd.conforms(&g.source_tree));
        // Figure 3: two C nodes + four L nodes + root.
        assert_eq!(g.source_tree.size(), 7);
        // The second STD is not fully specified, so the setting is outside
        // the tractable class.
        assert!(!g.setting.is_fully_specified());
        assert!(matches!(
            classify_setting(&g.setting),
            SettingClass::NotFullySpecified { std_index: 1 }
        ));
        // The query is Boolean and uses the wildcard but not descendant.
        assert!(g.query.is_boolean());
        assert!(!g.query.uses_descendant());
    }

    #[test]
    fn satisfiable_formula_has_a_counterexample_solution() {
        // The proof's (⇒) direction, executed: from a satisfying assignment
        // we build a solution of T_θ in which Q fails, certifying that the
        // certain answer is false.
        let f = CnfFormula::paper_example();
        let g = build(&f);
        let assignment = f.brute_force_satisfiable().expect("satisfiable");
        let solution = solution_from_assignment(&f, &assignment);
        assert!(g.setting.target_dtd.conforms_unordered(&solution));
        assert!(is_solution(&g.setting, &g.source_tree, &solution, false));
        assert!(!g.query.evaluate_boolean(&solution));
        assert!(!certain_answer(&f));
    }

    #[test]
    fn unsatisfiable_formula_gives_certain_true() {
        let f = CnfFormula::tiny_unsatisfiable();
        assert!(certain_answer(&f));
        // And the gadget still produces a well-formed instance.
        let g = build(&f);
        assert!(g.setting.source_dtd.conforms(&g.source_tree));
    }

    #[test]
    fn inconsistent_choices_are_caught_by_the_query() {
        // If we (incorrectly) make both x1 and ¬x1 "true", Q fires.
        use super::super::three_sat::{Clause, Literal};
        let f = CnfFormula::new(
            1,
            vec![
                Clause([Literal::pos(0), Literal::pos(0), Literal::pos(0)]),
                Clause([Literal::neg(0), Literal::neg(0), Literal::neg(0)]),
            ],
        );
        let g = build(&f);
        // Hand-build the "solution" that satisfies both clauses by choosing
        // x1 for the first and ¬x1 for the second: it satisfies the STDs but
        // the query detects the complementary pair.
        let mut t = XmlTree::new("K");
        for clause in &f.clauses {
            let g1 = t.add_child(t.root(), "G1");
            let h1 = t.add_child(g1, "G2");
            let g3 = t.add_child(h1, "G3");
            let h1n = t.add_child(g3, "H1");
            t.set_attr(h1n, "@l", clause.0[0].code());
            let h2 = t.add_child(h1n, "H2");
            t.set_attr(h2, "@l", clause.0[1].code());
            let h3 = t.add_child(h2, "H3");
            t.set_attr(h3, "@l", clause.0[2].code());
        }
        let l = t.add_child(t.root(), "L");
        t.set_attr(l, "@p", Literal::pos(0).code());
        t.set_attr(l, "@n", Literal::neg(0).code());
        assert!(is_solution(&g.setting, &g.source_tree, &t, false));
        assert!(g.query.evaluate_boolean(&t));
    }
}
