//! 3-CNF formulae: the combinatorial core of every hardness gadget.

use rand::Rng;

/// A literal: a propositional variable (0-based index) or its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Literal {
    /// 0-based variable index.
    pub var: usize,
    /// `true` for the positive literal `x`, `false` for `¬x`.
    pub positive: bool,
}

impl Literal {
    /// The positive literal of variable `var`.
    pub fn pos(var: usize) -> Self {
        Literal {
            var,
            positive: true,
        }
    }

    /// The negative literal of variable `var`.
    pub fn neg(var: usize) -> Self {
        Literal {
            var,
            positive: false,
        }
    }

    /// The numeric code used by the gadgets of the paper: each literal gets a
    /// distinct natural number (`x_i → 2i+1`, `¬x_i → 2i+2`), rendered as a
    /// string attribute value.
    pub fn code(&self) -> String {
        if self.positive {
            (2 * self.var + 1).to_string()
        } else {
            (2 * self.var + 2).to_string()
        }
    }

    /// Is the literal satisfied by the given assignment?
    pub fn satisfied_by(&self, assignment: &[bool]) -> bool {
        assignment[self.var] == self.positive
    }
}

/// A clause of exactly three literals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Clause(pub [Literal; 3]);

impl Clause {
    /// Is the clause satisfied by the given assignment?
    pub fn satisfied_by(&self, assignment: &[bool]) -> bool {
        self.0.iter().any(|l| l.satisfied_by(assignment))
    }
}

/// A propositional formula in 3-CNF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CnfFormula {
    /// Number of propositional variables (indices `0..num_vars`).
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Clause>,
}

impl CnfFormula {
    /// Build a formula, checking that every literal's variable is in range.
    pub fn new(num_vars: usize, clauses: Vec<Clause>) -> Self {
        assert!(
            clauses.iter().all(|c| c.0.iter().all(|l| l.var < num_vars)),
            "clause mentions a variable out of range"
        );
        CnfFormula { num_vars, clauses }
    }

    /// The running example of the paper's hardness proofs:
    /// `(x1 ∨ x2 ∨ ¬x3) ∧ (¬x2 ∨ x3 ∨ ¬x4)`.
    pub fn paper_example() -> Self {
        CnfFormula::new(
            4,
            vec![
                Clause([Literal::pos(0), Literal::pos(1), Literal::neg(2)]),
                Clause([Literal::neg(1), Literal::pos(2), Literal::neg(3)]),
            ],
        )
    }

    /// A small unsatisfiable formula: `x ∧ ¬x` padded to three literals per
    /// clause.
    pub fn tiny_unsatisfiable() -> Self {
        CnfFormula::new(
            1,
            vec![
                Clause([Literal::pos(0), Literal::pos(0), Literal::pos(0)]),
                Clause([Literal::neg(0), Literal::neg(0), Literal::neg(0)]),
            ],
        )
    }

    /// Is the formula satisfied by the given assignment?
    pub fn satisfied_by(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.num_vars);
        self.clauses.iter().all(|c| c.satisfied_by(assignment))
    }

    /// Exhaustive satisfiability check (2^num_vars assignments); returns a
    /// satisfying assignment if one exists. This is the deliberately
    /// exponential baseline the hardness benchmarks measure.
    pub fn brute_force_satisfiable(&self) -> Option<Vec<bool>> {
        let n = self.num_vars;
        assert!(
            n < usize::BITS as usize,
            "too many variables for brute force"
        );
        for mask in 0usize..(1usize << n) {
            let assignment: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
            if self.satisfied_by(&assignment) {
                return Some(assignment);
            }
        }
        None
    }

    /// Generate a random 3-CNF formula with the given clause/variable counts.
    pub fn random(num_vars: usize, num_clauses: usize, rng: &mut impl Rng) -> Self {
        assert!(num_vars >= 1);
        let clauses = (0..num_clauses)
            .map(|_| {
                Clause([
                    Literal {
                        var: rng.gen_range(0..num_vars),
                        positive: rng.gen_bool(0.5),
                    },
                    Literal {
                        var: rng.gen_range(0..num_vars),
                        positive: rng.gen_bool(0.5),
                    },
                    Literal {
                        var: rng.gen_range(0..num_vars),
                        positive: rng.gen_bool(0.5),
                    },
                ])
            })
            .collect();
        CnfFormula::new(num_vars, clauses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_example_is_satisfiable() {
        let f = CnfFormula::paper_example();
        let a = f.brute_force_satisfiable().expect("satisfiable");
        assert!(f.satisfied_by(&a));
    }

    #[test]
    fn tiny_unsatisfiable_really_is() {
        assert!(CnfFormula::tiny_unsatisfiable()
            .brute_force_satisfiable()
            .is_none());
    }

    #[test]
    fn literal_codes_are_distinct() {
        let mut codes: Vec<String> = Vec::new();
        for v in 0..5 {
            codes.push(Literal::pos(v).code());
            codes.push(Literal::neg(v).code());
        }
        let before = codes.len();
        codes.sort();
        codes.dedup();
        assert_eq!(codes.len(), before);
    }

    #[test]
    fn satisfied_by_checks_all_clauses() {
        let f = CnfFormula::paper_example();
        // x1 = true satisfies clause 1; ¬x2 = true satisfies clause 2.
        assert!(f.satisfied_by(&[true, false, false, false]));
        // x2 true, x3 false, x4 true falsifies clause 2.
        assert!(!f.satisfied_by(&[false, true, false, true]));
    }

    #[test]
    fn random_formulae_are_well_formed_and_deterministic_per_seed() {
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        let f1 = CnfFormula::random(6, 10, &mut rng1);
        let f2 = CnfFormula::random(6, 10, &mut rng2);
        assert_eq!(f1, f2);
        assert_eq!(f1.clauses.len(), 10);
        assert!(f1.clauses.iter().all(|c| c.0.iter().all(|l| l.var < 6)));
    }
}
