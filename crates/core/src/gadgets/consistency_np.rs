//! A 3SAT reduction to the consistency problem in the spirit of
//! Proposition 4.4(b): even with a fixed target DTD and source DTDs whose
//! rules are only disjunctions of element types (no Kleene star), checking
//! consistency of path-pattern STDs is NP-hard.
//!
//! A conforming source tree is a single root-to-leaf chain choosing, for each
//! variable in order, either its positive or its negative element type — i.e.
//! a truth assignment. Every clause contributes an STD whose source pattern
//! recognises the assignment that falsifies the clause and whose target
//! pattern is unsatisfiable; the setting is therefore consistent iff some
//! chain (assignment) avoids all the falsifying patterns, iff the formula is
//! satisfiable.

use super::three_sat::{CnfFormula, Literal};
use crate::setting::{DataExchangeSetting, Std};
use xdx_patterns::parse_pattern;
use xdx_patterns::TreePattern;
use xdx_xmltree::Dtd;

/// Element type name for a literal: `x{i}p` / `x{i}n`.
fn element_of(lit: Literal) -> String {
    format!("x{}{}", lit.var, if lit.positive { "p" } else { "n" })
}

/// Build the reduction: a setting consistent iff `formula` is satisfiable.
pub fn build(formula: &CnfFormula) -> DataExchangeSetting {
    let n = formula.num_vars;
    assert!(n >= 1);
    // Source DTD: r → x0p | x0n ; x_i· → x_{i+1}p | x_{i+1}n ; last level → ε.
    let mut builder = Dtd::builder("r").rule(
        "r",
        &format!(
            "{} | {}",
            element_of(Literal::pos(0)),
            element_of(Literal::neg(0))
        ),
    );
    for var in 0..n {
        for positive in [true, false] {
            let this = element_of(Literal { var, positive });
            if var + 1 < n {
                builder = builder.rule(
                    &this,
                    &format!(
                        "{} | {}",
                        element_of(Literal::pos(var + 1)),
                        element_of(Literal::neg(var + 1))
                    ),
                );
            } else {
                builder = builder.rule(&this, "eps");
            }
        }
    }
    let source_dtd = builder.build().expect("well-formed source DTD");

    // Fixed target DTD: a bare root that cannot have the `f` child the STDs
    // would force.
    let target_dtd = Dtd::builder("r2")
        .rule("r2", "eps")
        .build()
        .expect("well-formed target DTD");

    // One STD per clause: the source pattern matches exactly the chains in
    // which all three literals of the clause are falsified.
    let stds: Vec<Std> = formula
        .clauses
        .iter()
        .map(|clause| {
            // The falsifying choice for literal ℓ is the element of ¬ℓ.
            let mut falsifying: Vec<Literal> = clause
                .0
                .iter()
                .map(|l| Literal {
                    var: l.var,
                    positive: !l.positive,
                })
                .collect();
            falsifying.sort_by_key(|l| l.var);
            falsifying.dedup_by_key(|l| (l.var, l.positive));
            // Nested path pattern following the paper's convention: a level
            // immediately below the previous one is a plain child step, a
            // gap of two or more levels is a descendant step (a `//ϕ` child
            // sub-pattern requires ϕ strictly below the child).
            let mut body = String::from("r[");
            let mut prev_level: i64 = -1;
            for l in &falsifying {
                if l.var as i64 > prev_level + 1 {
                    body.push_str("//");
                }
                body.push_str(&element_of(*l));
                body.push('[');
                prev_level = l.var as i64;
            }
            // Drop the innermost '[' and close every opened bracket.
            body.pop();
            body.push_str(&"]".repeat(falsifying.len()));
            let source = parse_pattern(&body).expect("generated pattern parses");
            let target = parse_pattern("r2[f]").expect("generated pattern parses");
            Std::new(target, source)
        })
        .collect();

    DataExchangeSetting::new(source_dtd, target_dtd, stds)
}

/// The expected consistency verdict, via brute-force satisfiability.
pub fn expected_consistent(formula: &CnfFormula) -> bool {
    formula.brute_force_satisfiable().is_some()
}

/// Helper used by tests: the source pattern generated for a clause.
pub fn clause_pattern(formula: &CnfFormula, index: usize) -> TreePattern {
    build(formula).stds[index].source.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency::check_consistency_general;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reduction_agrees_with_brute_force_on_small_formulae() {
        for f in [
            CnfFormula::paper_example(),
            CnfFormula::tiny_unsatisfiable(),
        ] {
            let setting = build(&f);
            assert_eq!(
                check_consistency_general(&setting),
                expected_consistent(&f),
                "mismatch on {f:?}"
            );
        }
    }

    #[test]
    fn reduction_agrees_on_random_formulae() {
        let mut rng = StdRng::seed_from_u64(20260614);
        for _ in 0..5 {
            let f = CnfFormula::random(3, 4, &mut rng);
            let setting = build(&f);
            assert_eq!(
                check_consistency_general(&setting),
                expected_consistent(&f),
                "mismatch on {f:?}"
            );
        }
    }

    #[test]
    fn generated_patterns_are_path_patterns_with_descendant() {
        let f = CnfFormula::paper_example();
        // Clause 0 touches variables 0,1,2 — consecutive levels, so plain
        // child steps only.
        let p0 = clause_pattern(&f, 0);
        assert!(p0.is_path_pattern());
        assert!(!p0.uses_descendant());
        // Clause 1 touches variables 1,2,3 — the first step skips level 0 and
        // becomes a descendant step.
        let p = clause_pattern(&f, 1);
        assert!(p.is_path_pattern());
        assert!(p.uses_descendant());
        assert!(!p.uses_wildcard());
        // Source DTD is non-recursive and star-free, as Proposition 4.4(b)
        // requires.
        let setting = build(&f);
        assert!(!setting.source_dtd.is_recursive());
    }

    #[test]
    fn source_dtd_chains_encode_assignments() {
        let f = CnfFormula::paper_example();
        let setting = build(&f);
        // Any conforming source tree is a chain of length num_vars + 1.
        let t = setting.source_dtd.minimal_conforming_tree().unwrap();
        assert_eq!(t.size(), f.num_vars + 1);
        assert!(setting.source_dtd.conforms(&t));
    }
}
