//! Imposing a sibling order on unordered solutions (Proposition 5.2).
//!
//! The query-answering pipeline works with unordered trees (Proposition 5.1
//! lets it); to *materialise* a target document one must order every node's
//! children so that the resulting ordered tree conforms to the target DTD.
//! Proposition 5.2 shows this is possible in polynomial time whenever the
//! unordered tree weakly conforms, by greedily emitting one child at a time
//! while checking that the remaining multiset can still complete a word of
//! the content model (a permutation-language membership test from an
//! intermediate NFA state).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;
use xdx_relang::parikh::perm_accepts_from;
use xdx_relang::PermMemo;
use xdx_xmltree::{CompiledDtd, Dtd, ElementType, NodeId, Sym, XmlTree};

/// Errors raised by [`impose_sibling_order`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderingError {
    /// A node's label is not declared by the DTD.
    UnknownElementType {
        /// The offending node.
        node: NodeId,
        /// Its label.
        label: ElementType,
    },
    /// A node's children multiset is not a permutation of any word of its
    /// content model, so no ordering can exist (the tree does not weakly
    /// conform).
    NotWeaklyConforming {
        /// The offending node.
        node: NodeId,
        /// Its label.
        label: ElementType,
    },
}

impl fmt::Display for OrderingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrderingError::UnknownElementType { node, label } => {
                write!(f, "node {node} has label {label} unknown to the DTD")
            }
            OrderingError::NotWeaklyConforming { node, label } => write!(
                f,
                "the children of node {node} (type {label}) are not a permutation of the content model"
            ),
        }
    }
}

impl std::error::Error for OrderingError {}

/// Warm permutation-search memo state shared across sibling-ordering calls.
///
/// The greedy ordering algorithm issues `O(children²)` permutation-language
/// membership queries per node, and different nodes with the same element
/// type query the *same* content-model automaton — their subproblems overlap
/// heavily. A `SiblingOrderMemo` keeps one [`PermMemo`] per content-model
/// rule (keyed by the rule's interned [`Sym`]), so batches of orderings
/// against one DTD reuse warm entries instead of rebuilding a `HashMap` per
/// node.
///
/// A memo's warm entries are only meaningful for the compiled DTD that
/// created them, so the memo carries that DTD's identity (the `Arc` behind
/// [`Dtd::compiled`], kept alive here so pointer equality is sound) and
/// self-clears when it is handed a different DTD — passing one memo across
/// heterogeneous DTDs is merely slow, never wrong.
#[derive(Debug, Default)]
pub struct SiblingOrderMemo {
    dtd: Option<Arc<CompiledDtd>>,
    per_rule: HashMap<Sym, PermMemo>,
}

impl SiblingOrderMemo {
    /// An empty memo.
    pub fn new() -> Self {
        SiblingOrderMemo::default()
    }

    /// Drop all warm entries.
    pub fn clear(&mut self) {
        self.dtd = None;
        self.per_rule.clear();
    }

    /// Make the memo's entries valid for `compiled`, clearing them when they
    /// belong to a different DTD.
    fn retag(&mut self, compiled: &Arc<CompiledDtd>) {
        match &self.dtd {
            Some(tag) if Arc::ptr_eq(tag, compiled) => {}
            _ => {
                self.per_rule.clear();
                self.dtd = Some(Arc::clone(compiled));
            }
        }
    }
}

/// Reorder the children of every node of `tree` so that the ordered tree
/// conforms to `dtd`. Requires `tree |≈ dtd` (weak conformance); returns an
/// error otherwise.
///
/// Runs on the compiled fast path: the greedy algorithm simulates the
/// pre-built bit-parallel NFA of each content model and shares one
/// memoisation table per content-model rule across *all* nodes of the tree
/// ([`SiblingOrderMemo`]; use [`impose_sibling_order_with`] to keep the memo
/// warm across trees). The original `BTreeSet`-simulation path is kept as
/// [`impose_sibling_order_reference`], produces the same order, and the two
/// are differential-tested.
pub fn impose_sibling_order(tree: &mut XmlTree, dtd: &Dtd) -> Result<(), OrderingError> {
    let mut memo = SiblingOrderMemo::new();
    impose_sibling_order_with(tree, dtd, &mut memo)
}

/// As [`impose_sibling_order`], reusing `memo` so repeated orderings against
/// the same DTD (batch materialisation) start with warm permutation-search
/// tables.
pub fn impose_sibling_order_with(
    tree: &mut XmlTree,
    dtd: &Dtd,
    memo: &mut SiblingOrderMemo,
) -> Result<(), OrderingError> {
    let compiled = dtd.compiled_arc();
    memo.retag(&compiled);
    let nodes = tree.nodes();
    for node in nodes {
        order_children_compiled(tree, &compiled, node, memo)?;
    }
    Ok(())
}

/// Reference implementation of [`impose_sibling_order`].
pub fn impose_sibling_order_reference(tree: &mut XmlTree, dtd: &Dtd) -> Result<(), OrderingError> {
    let nodes = tree.nodes();
    for node in nodes {
        order_children(tree, dtd, node)?;
    }
    Ok(())
}

fn order_children_compiled(
    tree: &mut XmlTree,
    compiled: &xdx_xmltree::CompiledDtd,
    node: NodeId,
    memos: &mut SiblingOrderMemo,
) -> Result<(), OrderingError> {
    let Some(sym) = compiled.sym(tree.label(node)) else {
        return Err(OrderingError::UnknownElementType {
            node,
            label: tree.label(node).clone(),
        });
    };
    let label = compiled.element(sym);
    let nfa = compiled.bitset_nfa(sym);
    let children: Vec<NodeId> = tree.children(node).to_vec();
    if children.is_empty() {
        // Still need the content model to accept the empty word.
        if !nfa.accepts(nfa.start_mask()) {
            return Err(OrderingError::NotWeaklyConforming {
                node,
                label: label.clone(),
            });
        }
        return Ok(());
    }
    // Per-symbol FIFO queues of children (indexed by the content model's
    // alphabet), preserving the original relative order among same-labelled
    // siblings. A child label outside the alphabet can never be placed.
    let width = nfa.alphabet().len();
    let mut queues: Vec<VecDeque<NodeId>> = vec![VecDeque::new(); width];
    let mut counts: Vec<u64> = vec![0; width];
    for &c in &children {
        let Some(idx) = nfa.sym_index(tree.label(c)) else {
            return Err(OrderingError::NotWeaklyConforming {
                node,
                label: label.clone(),
            });
        };
        queues[idx].push_back(c);
        counts[idx] += 1;
    }
    // One memo table per rule, shared by every membership query of every
    // node with this element type (and across trees when the caller keeps
    // the `SiblingOrderMemo` alive).
    let memo = memos.per_rule.entry(sym).or_insert_with(|| nfa.perm_memo());
    // The whole multiset must be a permutation of some word.
    if !nfa.perm_accepts_counts_memo(nfa.start_mask(), &mut counts, memo) {
        return Err(OrderingError::NotWeaklyConforming {
            node,
            label: label.clone(),
        });
    }

    let mut order: Vec<NodeId> = Vec::with_capacity(children.len());
    let mut current = nfa.start_mask().clone();
    for _ in 0..children.len() {
        let mut advanced = false;
        // The bitset alphabet is sorted, so candidates are visited in the
        // same order as the reference implementation.
        for idx in 0..width {
            if counts[idx] == 0 {
                continue;
            }
            let next = nfa.step_mask(&current, idx);
            if next.is_empty() {
                continue;
            }
            counts[idx] -= 1;
            if nfa.perm_accepts_counts_memo(&next, &mut counts, memo) {
                let child = queues[idx]
                    .pop_front()
                    .expect("counts and queues stay in sync");
                order.push(child);
                current = next;
                advanced = true;
                break;
            }
            counts[idx] += 1;
        }
        if !advanced {
            return Err(OrderingError::NotWeaklyConforming {
                node,
                label: label.clone(),
            });
        }
    }
    tree.set_child_order(node, order);
    Ok(())
}

fn order_children(tree: &mut XmlTree, dtd: &Dtd, node: NodeId) -> Result<(), OrderingError> {
    let label = tree.label(node).clone();
    let Some(nfa) = dtd.content_nfa(&label) else {
        return Err(OrderingError::UnknownElementType { node, label });
    };
    let children: Vec<NodeId> = tree.children(node).to_vec();
    if children.is_empty() {
        // Still need the content model to accept the empty word.
        if !nfa.matches(&[]) {
            return Err(OrderingError::NotWeaklyConforming { node, label });
        }
        return Ok(());
    }
    // Per-label FIFO queues of children, preserving the original relative
    // order among same-labelled siblings.
    let mut queues: BTreeMap<ElementType, VecDeque<NodeId>> = BTreeMap::new();
    let mut counts: BTreeMap<ElementType, u64> = BTreeMap::new();
    for &c in &children {
        let l = tree.label(c).clone();
        queues.entry(l.clone()).or_default().push_back(c);
        *counts.entry(l).or_insert(0) += 1;
    }
    // The whole multiset must be a permutation of some word.
    let accepted_somewhere = {
        let start = nfa.eps_closure(&[nfa.start()].into_iter().collect());
        start.iter().any(|&q| perm_accepts_from(nfa, q, &counts))
    };
    if !accepted_somewhere {
        return Err(OrderingError::NotWeaklyConforming { node, label });
    }

    let mut order: Vec<NodeId> = Vec::with_capacity(children.len());
    let mut current = nfa.eps_closure(&[nfa.start()].into_iter().collect());
    for _ in 0..children.len() {
        let mut advanced = false;
        let candidate_labels: Vec<ElementType> = counts
            .iter()
            .filter(|(_, &c)| c > 0)
            .map(|(l, _)| l.clone())
            .collect();
        for l in candidate_labels {
            let next = nfa.step_closed(&current, &l);
            if next.is_empty() {
                continue;
            }
            let mut remaining = counts.clone();
            *remaining.get_mut(&l).expect("candidate label present") -= 1;
            if next.iter().any(|&q| perm_accepts_from(nfa, q, &remaining)) {
                let child = queues
                    .get_mut(&l)
                    .and_then(|q| q.pop_front())
                    .expect("counts and queues stay in sync");
                order.push(child);
                counts = remaining;
                current = next;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return Err(OrderingError::NotWeaklyConforming { node, label });
        }
    }
    tree.set_child_order(node, order);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdx_xmltree::TreeBuilder;

    #[test]
    fn orders_a_shuffled_sequence() {
        // D: r → a b c ; children arrive as [c, a, b].
        let dtd = Dtd::builder("r").rule("r", "a b c").build().unwrap();
        let mut t = TreeBuilder::new("r").leaf("c").leaf("a").leaf("b").build();
        assert!(!dtd.conforms(&t));
        assert!(dtd.conforms_unordered(&t));
        impose_sibling_order(&mut t, &dtd).unwrap();
        assert!(dtd.conforms(&t));
        let labels: Vec<String> = t
            .children(t.root())
            .iter()
            .map(|&c| t.label(c).to_string())
            .collect();
        assert_eq!(labels, vec!["a", "b", "c"]);
    }

    #[test]
    fn orders_interleavings_of_starred_groups() {
        // D: r → (b c)* (d e)* ; a shuffled multiset {b,b,c,c,d,e} must come
        // out as some interleaving like b c b c d e.
        let dtd = Dtd::builder("r")
            .rule("r", "(b c)* (d e)*")
            .build()
            .unwrap();
        let mut t = TreeBuilder::new("r")
            .leaf("e")
            .leaf("c")
            .leaf("b")
            .leaf("d")
            .leaf("c")
            .leaf("b")
            .build();
        assert!(dtd.conforms_unordered(&t));
        assert!(!dtd.conforms(&t));
        impose_sibling_order(&mut t, &dtd).unwrap();
        assert!(dtd.conforms(&t));
    }

    #[test]
    fn ordering_recurses_into_the_whole_tree() {
        let dtd = Dtd::builder("r")
            .rule("r", "x y")
            .rule("x", "a b")
            .rule("y", "eps")
            .build()
            .unwrap();
        let mut t = TreeBuilder::new("r")
            .leaf("y")
            .child("x", |x| x.leaf("b").leaf("a"))
            .build();
        assert!(dtd.conforms_unordered(&t));
        impose_sibling_order(&mut t, &dtd).unwrap();
        assert!(dtd.conforms(&t));
    }

    #[test]
    fn preserves_relative_order_of_same_label_siblings() {
        let dtd = Dtd::builder("r")
            .rule("r", "a* b")
            .attributes("a", ["@id"])
            .build()
            .unwrap();
        let mut t = XmlTree::new("r");
        let a1 = t.add_child(t.root(), "a");
        t.set_attr(a1, "@id", "1");
        t.add_child(t.root(), "b");
        let a2 = t.add_child(t.root(), "a");
        t.set_attr(a2, "@id", "2");
        impose_sibling_order(&mut t, &dtd).unwrap();
        assert!(dtd.conforms(&t));
        let ids: Vec<String> = t
            .children(t.root())
            .iter()
            .filter(|&&c| t.label(c).as_str() == "a")
            .map(|&c| t.attr(c, &"@id".into()).unwrap().to_string())
            .collect();
        assert_eq!(ids, vec!["1", "2"]);
    }

    #[test]
    fn rejects_trees_that_do_not_weakly_conform() {
        let dtd = Dtd::builder("r").rule("r", "a b").build().unwrap();
        let mut t = TreeBuilder::new("r").leaf("a").leaf("a").build();
        let err = impose_sibling_order(&mut t, &dtd).unwrap_err();
        assert!(matches!(err, OrderingError::NotWeaklyConforming { .. }));

        // Leaf whose content model does not accept ε.
        let dtd2 = Dtd::builder("r").rule("r", "a+").build().unwrap();
        let mut t2 = XmlTree::new("r");
        assert!(matches!(
            impose_sibling_order(&mut t2, &dtd2).unwrap_err(),
            OrderingError::NotWeaklyConforming { .. }
        ));
    }

    #[test]
    fn compiled_ordering_matches_reference_exactly() {
        use rand::rngs::StdRng;
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let dtd = Dtd::builder("r")
            .rule("r", "(b c)* (d e)* a?")
            .build()
            .unwrap();
        for seed in 0..20u64 {
            let mut labels: Vec<&str> = Vec::new();
            for _ in 0..(seed % 5 + 1) {
                labels.extend(["b", "c", "d", "e"]);
            }
            if seed % 2 == 0 {
                labels.push("a");
            }
            labels.shuffle(&mut StdRng::seed_from_u64(seed));
            let mut fast = XmlTree::new("r");
            for l in &labels {
                fast.add_child(fast.root(), *l);
            }
            let mut reference = fast.clone();
            impose_sibling_order(&mut fast, &dtd).unwrap();
            impose_sibling_order_reference(&mut reference, &dtd).unwrap();
            let order = |t: &XmlTree| -> Vec<String> {
                t.children(t.root())
                    .iter()
                    .map(|&c| t.label(c).to_string())
                    .collect()
            };
            assert_eq!(order(&fast), order(&reference), "seed {seed}");
            assert!(dtd.conforms(&fast));
        }
    }

    #[test]
    fn canonical_solutions_can_be_materialised() {
        // End-to-end: canonical solution → ordered document (Prop 5.1 + 5.2).
        use crate::setting::{books_to_writers_setting, figure_1_source_tree};
        use crate::solution::canonical_solution;
        let setting = books_to_writers_setting();
        let mut solution = canonical_solution(&setting, &figure_1_source_tree()).unwrap();
        impose_sibling_order(&mut solution, &setting.target_dtd).unwrap();
        assert!(setting.target_dtd.conforms(&solution));
    }

    #[test]
    fn warm_memo_reuse_across_trees_matches_cold_runs() {
        // Batch materialisation: one SiblingOrderMemo across many trees must
        // produce exactly the orders of per-tree cold runs.
        use rand::rngs::StdRng;
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let dtd = Dtd::builder("r")
            .rule("r", "(b c)* (d e)* a?")
            .build()
            .unwrap();
        let mut warm = SiblingOrderMemo::new();
        for seed in 0..12u64 {
            let mut labels: Vec<&str> = Vec::new();
            for _ in 0..(seed % 4 + 1) {
                labels.extend(["b", "c", "d", "e"]);
            }
            labels.shuffle(&mut StdRng::seed_from_u64(seed));
            let mut with_warm = XmlTree::new("r");
            for l in &labels {
                with_warm.add_child(with_warm.root(), *l);
            }
            let mut with_cold = with_warm.clone();
            impose_sibling_order_with(&mut with_warm, &dtd, &mut warm).unwrap();
            impose_sibling_order(&mut with_cold, &dtd).unwrap();
            let order = |t: &XmlTree| -> Vec<String> {
                t.children(t.root())
                    .iter()
                    .map(|&c| t.label(c).to_string())
                    .collect()
            };
            assert_eq!(order(&with_warm), order(&with_cold), "seed {seed}");
            assert!(dtd.conforms(&with_warm));
        }
        // Clearing resets the warm state without changing behaviour.
        warm.clear();
        let mut t = TreeBuilder::new("r").leaf("c").leaf("b").build();
        impose_sibling_order_with(&mut t, &dtd, &mut warm).unwrap();
        assert!(dtd.conforms(&t));
    }

    #[test]
    fn warm_memo_self_clears_when_handed_a_different_dtd() {
        // Same element names, *conflicting* content models: stale memo
        // entries from dtd1 would order dtd2's children wrongly (or reject
        // them), so the memo must detect the switch and restart cold.
        let dtd1 = Dtd::builder("r").rule("r", "a b c").build().unwrap();
        let dtd2 = Dtd::builder("r").rule("r", "c b a").build().unwrap();
        let mut warm = SiblingOrderMemo::new();
        for _ in 0..2 {
            let mut t1 = TreeBuilder::new("r").leaf("c").leaf("a").leaf("b").build();
            impose_sibling_order_with(&mut t1, &dtd1, &mut warm).unwrap();
            assert!(dtd1.conforms(&t1));
            let mut t2 = TreeBuilder::new("r").leaf("c").leaf("a").leaf("b").build();
            impose_sibling_order_with(&mut t2, &dtd2, &mut warm).unwrap();
            assert!(dtd2.conforms(&t2));
        }
        // A clone of dtd1 shares its compiled Arc: the memo stays warm.
        let clone = dtd1.clone();
        let mut t = TreeBuilder::new("r").leaf("b").leaf("a").leaf("c").build();
        impose_sibling_order_with(&mut t, &dtd1, &mut warm).unwrap();
        impose_sibling_order_with(&mut t, &clone, &mut warm).unwrap();
        assert!(clone.conforms(&t));
    }
}
