//! Canonical pre-solutions and the chase (Section 6.1).
//!
//! For fully-specified STDs, the tractable query-answering algorithm
//! proceeds in two steps:
//!
//! 1. build the **canonical pre-solution** `cps(T)`: evaluate every STD's
//!    source pattern over the source tree and, for each match, instantiate
//!    the target pattern (inventing fresh nulls for target-only variables),
//!    merging all the instantiations at a single root;
//! 2. **chase** the pre-solution with the repairing functions `ChangeAtt`
//!    (add missing attributes as fresh nulls / fail on disallowed ones) and
//!    `ChangeReg` (extend or merge children so every node's child multiset
//!    falls into the permutation language of its content model), until the
//!    tree weakly conforms to the target DTD or an unrepairable violation is
//!    found.
//!
//! For univocal target DTDs the result — the **canonical solution** — is a
//! solution into which every other solution receives a homomorphism
//! (Lemma 6.15), so evaluating a query over it yields exactly the certain
//! answers (Lemma 6.5). When no canonical solution exists, no solution
//! exists at all.

use crate::setting::{DataExchangeSetting, Std};
use std::collections::BTreeMap;
use std::fmt;
use xdx_patterns::eval::{all_matches_reference, holds_reference, Assignment};
use xdx_patterns::{LabelTest, Term, TreePattern};
use xdx_relang::repair::{RepairConfig, RepairContext};
use xdx_relang::Regex;
use xdx_xmltree::{AttrName, ElementType, NodeId, NullGen, Value, XmlTree};

/// Errors raised while building canonical (pre-)solutions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolutionError {
    /// An STD's target pattern is not fully specified (Definition 5.10); the
    /// canonical pre-solution is only defined for fully-specified STDs.
    NotFullySpecified {
        /// Index of the offending STD.
        std_index: usize,
    },
    /// A node's attribute is forced by the STDs but not allowed by the
    /// target DTD (`ChangeAtt` fails).
    DisallowedAttribute {
        /// The element type of the node.
        element: ElementType,
        /// The offending attribute.
        attr: AttrName,
    },
    /// Two nodes that must be merged carry distinct constants for the same
    /// attribute (`ChangeReg` fails).
    AttributeClash {
        /// The element type of the merged nodes.
        element: ElementType,
        /// The attribute with conflicting constants.
        attr: AttrName,
        /// The two clashing constant values.
        values: (String, String),
    },
    /// A node's children multiset admits no repair into the content model
    /// (`rep(w, r) = ∅`).
    NoRepair {
        /// The element type of the node.
        element: ElementType,
    },
    /// `rep(w, r)` has no ⊑_w-maximum: the target DTD is not univocal at this
    /// content model, so the chase cannot proceed canonically
    /// (Definition 6.9).
    NoMaximumRepair {
        /// The element type of the node.
        element: ElementType,
    },
    /// The target pattern mentions an element type the target DTD does not
    /// declare, so no conforming tree can contain the forced node.
    UnknownTargetElement {
        /// The unknown element type.
        element: ElementType,
    },
    /// A wildcard occurs in a target pattern; instantiation needs concrete
    /// element types.
    WildcardInTarget {
        /// Index of the offending STD.
        std_index: usize,
    },
    /// The chase exceeded its iteration budget (only possible when the
    /// target DTD has unsatisfiable element types, which consistent DTDs —
    /// assumed throughout the paper — do not have).
    ChaseBudgetExceeded {
        /// The number of chase steps performed before giving up.
        steps: usize,
    },
    /// The repair enumeration exceeded its internal budget.
    RepairBudgetExceeded {
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for SolutionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolutionError::NotFullySpecified { std_index } => {
                write!(f, "STD #{std_index} is not fully specified")
            }
            SolutionError::DisallowedAttribute { element, attr } => {
                write!(
                    f,
                    "attribute {attr} is forced on {element} but not allowed by the target DTD"
                )
            }
            SolutionError::AttributeClash {
                element,
                attr,
                values,
            } => write!(
                f,
                "merging {element} nodes clashes on {attr}: {:?} vs {:?}",
                values.0, values.1
            ),
            SolutionError::NoRepair { element } => {
                write!(
                    f,
                    "the children of a {element} node cannot be repaired into its content model"
                )
            }
            SolutionError::NoMaximumRepair { element } => write!(
                f,
                "the content model of {element} is not univocal: repairs have no maximum"
            ),
            SolutionError::UnknownTargetElement { element } => {
                write!(
                    f,
                    "target patterns force element type {element}, unknown to the target DTD"
                )
            }
            SolutionError::WildcardInTarget { std_index } => {
                write!(f, "STD #{std_index} uses a wildcard in its target pattern")
            }
            SolutionError::ChaseBudgetExceeded { steps } => {
                write!(f, "the chase did not terminate within {steps} steps")
            }
            SolutionError::RepairBudgetExceeded { message } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for SolutionError {}

/// Build the canonical pre-solution `cps(T)` for a source tree (Section 6.1).
///
/// Requires every STD's target pattern to be fully specified. Fresh nulls are
/// drawn from `nulls`.
///
/// Runs on the compiled fast path (a [`crate::compiled::CompiledSetting`] is
/// built for the call); when processing many documents against one setting,
/// hold a `CompiledSetting` and call its methods instead. The original
/// implementation is kept as [`canonical_presolution_reference`].
pub fn canonical_presolution(
    setting: &DataExchangeSetting,
    source_tree: &XmlTree,
    nulls: &mut NullGen,
) -> Result<XmlTree, SolutionError> {
    crate::compiled::CompiledSetting::new(setting).canonical_presolution(source_tree, nulls)
}

/// Reference implementation of [`canonical_presolution`] (per-call pattern
/// evaluation, `Vec`-scan deduplication).
pub fn canonical_presolution_reference(
    setting: &DataExchangeSetting,
    source_tree: &XmlTree,
    nulls: &mut NullGen,
) -> Result<XmlTree, SolutionError> {
    let root_type = setting.target_dtd.root().clone();
    let mut tree = XmlTree::new(root_type.clone());
    for (std_index, std) in setting.stds.iter().enumerate() {
        if std.target.uses_wildcard() {
            return Err(SolutionError::WildcardInTarget { std_index });
        }
        if !std.target.is_fully_specified(&root_type) {
            return Err(SolutionError::NotFullySpecified { std_index });
        }
        let shared = std.shared_vars();
        // Deduplicate matches on the shared variables: instantiations that
        // differ only in source-only variables produce homomorphically
        // equivalent fragments.
        let mut seen: Vec<Assignment> = Vec::new();
        for assignment in all_matches_reference(source_tree, &std.source) {
            let restricted: Assignment = assignment
                .into_iter()
                .filter(|(v, _)| shared.contains(v))
                .collect();
            if seen.contains(&restricted) {
                continue;
            }
            seen.push(restricted.clone());
            instantiate_target(&mut tree, std, &restricted, nulls)?;
        }
    }
    Ok(tree)
}

/// Instantiate one STD's target pattern under `assignment` (shared variables)
/// and graft it below the pre-solution root, inventing fresh nulls for
/// target-only variables. Shared with the compiled path.
pub(crate) fn instantiate_target(
    tree: &mut XmlTree,
    std: &Std,
    assignment: &Assignment,
    nulls: &mut NullGen,
) -> Result<(), SolutionError> {
    let target_only: Vec<xdx_patterns::Var> = std.target_only_vars().into_iter().collect();
    instantiate_target_with(tree, &std.target, &target_only, assignment, nulls)
}

/// As [`instantiate_target`], with the target-only variable set precomputed —
/// the compiled path caches it per STD instead of re-deriving it (two
/// pattern walks plus set algebra) on every instantiation.
pub(crate) fn instantiate_target_with(
    tree: &mut XmlTree,
    target: &TreePattern,
    target_only: &[xdx_patterns::Var],
    assignment: &Assignment,
    nulls: &mut NullGen,
) -> Result<(), SolutionError> {
    // One fresh null per target-only variable per instantiation.
    let mut values: BTreeMap<_, Value> = assignment
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    for var in target_only {
        values
            .entry(var.clone())
            .or_insert_with(|| nulls.fresh_value());
    }
    // The target pattern is r[ϕ1, …, ϕk]; the pre-solution root plays the
    // role of r, and each ϕi becomes a fresh subtree under it.
    let TreePattern::Node { attr: _, children } = target else {
        unreachable!("fully-specified patterns are Node-rooted");
    };
    let root = tree.root();
    for child in children {
        build_instance(tree, root, child, &values)?;
    }
    Ok(())
}

fn build_instance(
    tree: &mut XmlTree,
    parent: NodeId,
    pattern: &TreePattern,
    values: &BTreeMap<xdx_patterns::Var, Value>,
) -> Result<(), SolutionError> {
    let TreePattern::Node { attr, children } = pattern else {
        unreachable!("fully-specified patterns contain no descendant steps");
    };
    let LabelTest::Element(label) = &attr.label else {
        unreachable!("fully-specified patterns contain no wildcards");
    };
    let node = tree.add_child(parent, label.clone());
    for binding in &attr.bindings {
        let value = match &binding.term {
            Term::Const(c) => Value::constant(c),
            Term::Var(v) => values
                .get(v)
                .cloned()
                .expect("every target variable is shared or target-only"),
        };
        tree.set_attr(node, binding.attr.clone(), value);
    }
    for child in children {
        build_instance(tree, node, child, values)?;
    }
    Ok(())
}

/// Run the chase of Section 6.1 (`ChangeAtt` / `ChangeReg`) on `tree` until
/// it weakly conforms to the target DTD or fails.
///
/// Runs on the compiled fast path — a worklist (dirty-queue) chase that
/// re-checks only the nodes a repair actually touched; the original
/// restart-the-world implementation is kept as [`chase_reference`] and
/// frozen as the differential oracle.
pub fn chase(
    tree: &mut XmlTree,
    setting: &DataExchangeSetting,
    nulls: &mut NullGen,
) -> Result<(), SolutionError> {
    crate::compiled::CompiledSetting::new(setting).chase(tree, nulls)
}

/// The default chase step budget for a tree that starts at `tree_size`
/// nodes. Only unsatisfiable target element types (which consistent DTDs do
/// not have) can exhaust it; both chase implementations use this formula.
pub fn chase_budget(tree_size: usize) -> usize {
    100_000usize.max(100 * tree_size)
}

/// Reference implementation of [`chase`] (rebuilds repair contexts per call,
/// re-snapshots the node list and restarts its scan after every repair).
pub fn chase_reference(
    tree: &mut XmlTree,
    setting: &DataExchangeSetting,
    nulls: &mut NullGen,
) -> Result<(), SolutionError> {
    let budget = chase_budget(tree.size());
    chase_reference_with_budget(tree, setting, nulls, budget)
}

/// As [`chase_reference`] with an explicit step budget (one full scan is one
/// step) — a testing hook so the differential harness can drive both chase
/// implementations into `ChaseBudgetExceeded` without 100 000-step runs.
pub fn chase_reference_with_budget(
    tree: &mut XmlTree,
    setting: &DataExchangeSetting,
    nulls: &mut NullGen,
    budget: usize,
) -> Result<(), SolutionError> {
    let dtd = &setting.target_dtd;
    let mut repair_contexts: BTreeMap<ElementType, RepairContext<ElementType>> = BTreeMap::new();
    let repair_config = RepairConfig::default();
    let mut steps = 0usize;

    'outer: loop {
        steps += 1;
        if steps > budget {
            return Err(SolutionError::ChaseBudgetExceeded { steps });
        }
        let nodes = tree.nodes();
        let mut changed = false;
        for node in nodes {
            let label = tree.label(node).clone();
            if !dtd.has_element(&label) {
                return Err(SolutionError::UnknownTargetElement { element: label });
            }
            // --- ChangeAtt -------------------------------------------------
            let allowed = dtd.attrs_of(&label);
            // The disallowed-attribute check never mutates, so the keys can
            // be read straight off the `BTreeMap` (no per-scan clone).
            for attr in tree.attrs(node).keys() {
                if !allowed.contains(attr) {
                    return Err(SolutionError::DisallowedAttribute {
                        element: label.clone(),
                        attr: attr.clone(),
                    });
                }
            }
            for attr in &allowed {
                if tree.attr(node, attr).is_none() {
                    tree.set_attr(node, attr.clone(), nulls.fresh_value());
                    changed = true;
                }
            }
            // --- ChangeReg -------------------------------------------------
            let child_counts = children_multiset(tree, node);
            // The cached context may lack symbols forced by the STDs but
            // absent from the content model; (re)build when needed.
            let needs_rebuild = match repair_contexts.get(&label) {
                Some(ctx) => child_counts
                    .keys()
                    .any(|k| ctx.alphabet().index(k).is_none()),
                None => true,
            };
            if needs_rebuild {
                repair_contexts.insert(
                    label.clone(),
                    RepairContext::new(&dtd.rule(&label), child_counts.keys().cloned()),
                );
            }
            let ctx = repair_contexts.get(&label).expect("context ensured above");
            if ctx.perm_contains(&child_counts) {
                continue;
            }
            let maximum = match ctx.maximum_repair(&child_counts, &repair_config) {
                Ok(m) => m,
                Err(e) => {
                    return Err(SolutionError::RepairBudgetExceeded {
                        message: e.to_string(),
                    })
                }
            };
            let Some(target_counts) = maximum else {
                // Distinguish "no repair at all" from "no maximum".
                let any = ctx
                    .rep(&child_counts, &repair_config)
                    .map(|r| !r.is_empty())
                    .unwrap_or(false);
                return Err(if any {
                    SolutionError::NoMaximumRepair { element: label }
                } else {
                    SolutionError::NoRepair { element: label }
                });
            };
            apply_change_reg(tree, node, &label, &child_counts, &target_counts, dtd)?;
            // Structure changed: re-snapshot the node list.
            continue 'outer;
        }
        if !changed {
            break;
        }
    }
    Ok(())
}

pub(crate) fn children_multiset(tree: &XmlTree, node: NodeId) -> BTreeMap<ElementType, u64> {
    let mut counts: BTreeMap<ElementType, u64> = BTreeMap::new();
    for &c in tree.children(node) {
        let label = tree.label(c);
        // Only clone the label when it is a new key (the common case is many
        // same-typed siblings).
        match counts.get_mut(label) {
            Some(n) => *n += 1,
            None => {
                counts.insert(label.clone(), 1);
            }
        }
    }
    counts
}

/// Apply one `ChangeReg` step at `node`: make its children multiset equal to
/// `target_counts` by adding fresh empty children and/or merging same-typed
/// children. Shared with the compiled path.
pub(crate) fn apply_change_reg(
    tree: &mut XmlTree,
    node: NodeId,
    label: &ElementType,
    current: &BTreeMap<ElementType, u64>,
    target_counts: &BTreeMap<ElementType, u64>,
    dtd: &xdx_xmltree::Dtd,
) -> Result<(), SolutionError> {
    let mut all_types: Vec<ElementType> = current.keys().cloned().collect();
    for t in target_counts.keys() {
        if !all_types.contains(t) {
            all_types.push(t.clone());
        }
    }
    for b in all_types {
        let p = current.get(&b).copied().unwrap_or(0);
        let q = target_counts.get(&b).copied().unwrap_or(0);
        if p < q {
            for _ in 0..(q - p) {
                tree.add_child(node, b.clone());
            }
        } else if p > q {
            // The chase only merges down to a single node (Claim 6.17
            // guarantees q = 1 for univocal content models).
            if q != 1 {
                return Err(SolutionError::NoMaximumRepair {
                    element: label.clone(),
                });
            }
            merge_children_of_type(tree, node, &b, dtd)?;
        }
    }
    Ok(())
}

/// Merge all children of `node` of type `b` into a single fresh node,
/// unioning attributes (constants win; clashing constants are an error) and
/// re-parenting grandchildren.
fn merge_children_of_type(
    tree: &mut XmlTree,
    node: NodeId,
    b: &ElementType,
    _dtd: &xdx_xmltree::Dtd,
) -> Result<(), SolutionError> {
    let victims: Vec<NodeId> = tree
        .children(node)
        .iter()
        .copied()
        .filter(|&c| tree.label(c) == b)
        .collect();
    debug_assert!(victims.len() > 1);
    // Collect the merged attribute map first (so a clash aborts before any
    // mutation).
    let mut merged_attrs: BTreeMap<AttrName, Value> = BTreeMap::new();
    for &v in &victims {
        for (attr, value) in tree.attrs(v) {
            match merged_attrs.get(attr) {
                None => {
                    merged_attrs.insert(attr.clone(), value.clone());
                }
                Some(existing) => match (existing.as_const(), value.as_const()) {
                    (Some(a), Some(bconst)) if a != bconst => {
                        return Err(SolutionError::AttributeClash {
                            element: b.clone(),
                            attr: attr.clone(),
                            values: (a.to_string(), bconst.to_string()),
                        });
                    }
                    // Prefer constants over nulls.
                    (None, Some(_)) => {
                        merged_attrs.insert(attr.clone(), value.clone());
                    }
                    _ => {}
                },
            }
        }
    }
    let merged = tree.new_detached(b.clone());
    for (attr, value) in merged_attrs {
        tree.set_attr(merged, attr, value);
    }
    for &v in &victims {
        tree.reparent_children(v, merged);
        tree.detach_child(node, v);
    }
    tree.attach_child(node, merged);
    Ok(())
}

/// Build the canonical solution for `source_tree`: the canonical pre-solution
/// followed by the chase. The result weakly conforms to the target DTD and
/// satisfies all STDs; for univocal target DTDs it is the canonical solution
/// of Section 6.1.
///
/// Runs on the compiled fast path (one [`crate::compiled::CompiledSetting`]
/// is built and shared by the pre-solution and the chase); the original
/// implementation is kept as [`canonical_solution_reference`].
pub fn canonical_solution(
    setting: &DataExchangeSetting,
    source_tree: &XmlTree,
) -> Result<XmlTree, SolutionError> {
    crate::compiled::CompiledSetting::new(setting).canonical_solution(source_tree)
}

/// Reference implementation of [`canonical_solution`].
pub fn canonical_solution_reference(
    setting: &DataExchangeSetting,
    source_tree: &XmlTree,
) -> Result<XmlTree, SolutionError> {
    let mut nulls = NullGen::new();
    let mut tree = canonical_presolution_reference(setting, source_tree, &mut nulls)?;
    chase_reference(&mut tree, setting, &mut nulls)?;
    Ok(tree)
}

/// Is `target_tree` a solution for `source_tree` (Definition 3.3)?
///
/// With `ordered = false` conformance is checked modulo sibling order
/// (the weak solutions of Section 5.2); with `ordered = true` the sibling
/// order must also match the content models.
///
/// Runs on the compiled fast path (the STD match relations over the target
/// tree are computed once per STD); the original implementation is kept as
/// [`is_solution_reference`].
pub fn is_solution(
    setting: &DataExchangeSetting,
    source_tree: &XmlTree,
    target_tree: &XmlTree,
    ordered: bool,
) -> bool {
    crate::compiled::CompiledSetting::new(setting).is_solution(source_tree, target_tree, ordered)
}

/// Reference implementation of [`is_solution`] (re-evaluates the target
/// pattern for every source-side match).
pub fn is_solution_reference(
    setting: &DataExchangeSetting,
    source_tree: &XmlTree,
    target_tree: &XmlTree,
    ordered: bool,
) -> bool {
    let conforms = if ordered {
        setting.target_dtd.conforms_reference(target_tree)
    } else {
        setting.target_dtd.conforms_unordered_reference(target_tree)
    };
    if !conforms {
        return false;
    }
    for std in &setting.stds {
        let shared = std.shared_vars();
        for assignment in all_matches_reference(source_tree, &std.source) {
            let restricted: Assignment = assignment
                .into_iter()
                .filter(|(v, _)| shared.contains(v))
                .collect();
            if !holds_reference(target_tree, &std.target, &restricted) {
                return false;
            }
        }
    }
    true
}

/// Convenience: does the (erased) pattern of a regular expression appear in
/// the content model? Exposed for white-box tests of the chase.
pub fn content_model_of(
    setting: &DataExchangeSetting,
    element: &ElementType,
) -> Regex<ElementType> {
    setting.target_dtd.rule(element)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setting::{
        books_to_writers_setting, figure_1_source_tree, DataExchangeSetting, Std,
    };
    use xdx_patterns::parse_pattern;
    use xdx_patterns::query::ConjunctiveTreeQuery;
    use xdx_xmltree::Dtd;

    #[test]
    fn figure_2_canonical_solution() {
        // The canonical solution of the running example has the shape of
        // Figure 2(b): two writers, three works, null years.
        let setting = books_to_writers_setting();
        let source = figure_1_source_tree();
        let solution = canonical_solution(&setting, &source).unwrap();
        assert!(setting.target_dtd.conforms_unordered(&solution));
        assert!(is_solution(&setting, &source, &solution, false));

        // One writer fragment per (title, name) match: the content model
        // writer* never forces a merge, so — unlike the hand-drawn Figure 2 —
        // the canonical solution keeps the two Papadimitriou fragments apart.
        // Both are solutions; they are homomorphically equivalent.
        let writers = solution.children(solution.root());
        assert_eq!(writers.len(), 3);
        // three works in total, all with null years and constant titles
        let works: Vec<_> = writers
            .iter()
            .flat_map(|&w| solution.children(w).to_vec())
            .collect();
        assert_eq!(works.len(), 3);
        for w in works {
            assert!(solution.attr(w, &"@year".into()).unwrap().is_null());
            assert!(solution.attr(w, &"@title".into()).unwrap().is_const());
        }

        // Query: who wrote "Computational Complexity"? (from the introduction)
        let q = ConjunctiveTreeQuery::new(
            ["w"],
            vec![
                parse_pattern("writer(@name=$w)[work(@title=\"Computational Complexity\")]")
                    .unwrap(),
            ],
        )
        .unwrap();
        let result = q.evaluate(&solution);
        assert_eq!(result.len(), 1);
        assert!(result.contains(&vec![Value::constant("Papadimitriou")]));
    }

    #[test]
    fn presolution_before_chase_may_not_conform() {
        let setting = books_to_writers_setting();
        let source = figure_1_source_tree();
        let mut nulls = NullGen::new();
        let pre = canonical_presolution(&setting, &source, &mut nulls).unwrap();
        // Three (book, author) matches → three writer fragments; writers are
        // not yet merged and works lack @year? No: @year is a target variable
        // so it gets a null immediately; what the chase must do here is
        // nothing structural (writer* work* allows everything), so the
        // pre-solution already weakly conforms for this setting.
        assert_eq!(pre.children(pre.root()).len(), 3);
        assert!(setting.target_dtd.conforms_unordered(&pre));
    }

    #[test]
    fn example_6_4_and_6_13_chase() {
        // DS: r → A*, A has @a. DT: r2 → (B C)*, B has @m, C → D, D has @n.
        // STD: r2[B(@m=x)] :- r[A(@a=x)].
        // For a source with two A's the pre-solution has two B's; the chase
        // must add two C's (each with a D child carrying a fresh null @n).
        let source_dtd = Dtd::builder("r")
            .rule("r", "A*")
            .attributes("A", ["@a"])
            .build()
            .unwrap();
        let target_dtd = Dtd::builder("r2")
            .rule("r2", "(B C)*")
            .rule("B", "eps")
            .rule("C", "D")
            .rule("D", "eps")
            .attributes("B", ["@m"])
            .attributes("D", ["@n"])
            .build()
            .unwrap();
        let std = Std::parse("r2[B(@m=$x)] :- r[A(@a=$x)]").unwrap();
        let setting = DataExchangeSetting::new(source_dtd, target_dtd, vec![std]);

        let mut source = XmlTree::new("r");
        for v in ["1", "2"] {
            let a = source.add_child(source.root(), "A");
            source.set_attr(a, "@a", v);
        }
        assert!(setting.source_dtd.conforms(&source));

        let solution = canonical_solution(&setting, &source).unwrap();
        assert!(setting.target_dtd.conforms_unordered(&solution));
        assert!(is_solution(&setting, &source, &solution, false));
        // 1 root + 2 B + 2 C + 2 D = 7 nodes
        assert_eq!(solution.size(), 7);
        let mut labels: Vec<String> = solution
            .children(solution.root())
            .iter()
            .map(|&c| solution.label(c).to_string())
            .collect();
        labels.sort();
        assert_eq!(labels, vec!["B", "B", "C", "C"]);
        // D nodes carry fresh nulls on @n
        for n in solution.nodes() {
            if solution.label(n).as_str() == "D" {
                assert!(solution.attr(n, &"@n".into()).unwrap().is_null());
            }
        }
    }

    #[test]
    fn merging_writers_shares_constant_attributes() {
        // A target DTD where the root allows only one writer forces the chase
        // to merge the three instantiated writers — which clashes, because
        // they have different names. With a source containing a single author
        // name, merging succeeds.
        let source_dtd = Dtd::builder("db")
            .rule("db", "book*")
            .rule("book", "author*")
            .attributes("book", ["@title"])
            .attributes("author", ["@name", "@aff"])
            .build()
            .unwrap();
        let target_dtd = Dtd::builder("bib")
            .rule("bib", "writer")
            .rule("writer", "work*")
            .attributes("writer", ["@name"])
            .attributes("work", ["@title", "@year"])
            .build()
            .unwrap();
        let std = Std::parse(
            "bib[writer(@name=$y)[work(@title=$x, @year=$z)]] :- db[book(@title=$x)[author(@name=$y)]]",
        )
        .unwrap();
        let setting = DataExchangeSetting::new(source_dtd, target_dtd, vec![std]);

        // Source with two different authors: the forced merge clashes on @name.
        let source = figure_1_source_tree();
        let err = canonical_solution(&setting, &source).unwrap_err();
        assert!(matches!(err, SolutionError::AttributeClash { .. }));

        // Source where all books share one author: merge succeeds, the single
        // writer has two works.
        let mut single = XmlTree::new("db");
        for title in ["T1", "T2"] {
            let b = single.add_child(single.root(), "book");
            single.set_attr(b, "@title", title);
            let a = single.add_child(b, "author");
            single.set_attr(a, "@name", "Knuth");
            single.set_attr(a, "@aff", "Stanford");
        }
        let solution = canonical_solution(&setting, &single).unwrap();
        assert!(is_solution(&setting, &single, &solution, false));
        let writers = solution.children(solution.root());
        assert_eq!(writers.len(), 1);
        assert_eq!(solution.children(writers[0]).len(), 2);
        assert_eq!(
            solution.attr(writers[0], &"@name".into()).unwrap(),
            &Value::constant("Knuth")
        );
    }

    #[test]
    fn disallowed_attribute_fails_the_chase() {
        // The STD forces @isbn on work, which the target DTD does not allow.
        let setting = books_to_writers_setting();
        let mut bad = setting.clone();
        bad.stds = vec![Std::parse(
            "bib[writer(@name=$y)[work(@title=$x, @year=$z, @isbn=$w)]] :- db[book(@title=$x)[author(@name=$y)]]",
        )
        .unwrap()];
        let err = canonical_solution(&bad, &figure_1_source_tree()).unwrap_err();
        assert!(matches!(err, SolutionError::DisallowedAttribute { .. }));
    }

    #[test]
    fn no_repair_when_forced_child_is_impossible() {
        // Target DTD: bib → writer?, writer → ε. The STD forces a `work`
        // child under writer, but writer's content model is ε and `work` is
        // not even mentioned: rep(·) = ∅.
        let source_dtd = Dtd::builder("db")
            .rule("db", "book*")
            .attributes("book", ["@title"])
            .build()
            .unwrap();
        let target_dtd = Dtd::builder("bib")
            .rule("bib", "writer?")
            .rule("writer", "eps")
            .build()
            .unwrap();
        let std = Std::parse("bib[writer[work]] :- db[book(@title=$x)]").unwrap();
        let setting = DataExchangeSetting::new(source_dtd, target_dtd, vec![std]);
        let mut source = XmlTree::new("db");
        let b = source.add_child(source.root(), "book");
        source.set_attr(b, "@title", "T");
        let err = canonical_solution(&setting, &source).unwrap_err();
        assert!(matches!(
            err,
            SolutionError::NoRepair { .. } | SolutionError::UnknownTargetElement { .. }
        ));
    }

    #[test]
    fn not_fully_specified_targets_are_rejected() {
        let setting = books_to_writers_setting();
        let mut bad = setting.clone();
        bad.stds = vec![Std::parse("//writer(@name=$y) :- db[book[author(@name=$y)]]").unwrap()];
        let err = canonical_solution(&bad, &figure_1_source_tree()).unwrap_err();
        assert!(matches!(
            err,
            SolutionError::NotFullySpecified { std_index: 0 }
        ));
    }

    #[test]
    fn empty_source_gives_minimal_solution() {
        let setting = books_to_writers_setting();
        let empty = XmlTree::new("db");
        let solution = canonical_solution(&setting, &empty).unwrap();
        assert_eq!(solution.size(), 1);
        assert!(is_solution(&setting, &empty, &solution, true));
    }

    #[test]
    fn is_solution_detects_missing_facts() {
        let setting = books_to_writers_setting();
        let source = figure_1_source_tree();
        // A target with only one writer does not satisfy the STD for the
        // Steiglitz match.
        let mut partial = XmlTree::new("bib");
        let w = partial.add_child(partial.root(), "writer");
        partial.set_attr(w, "@name", "Papadimitriou");
        let k = partial.add_child(w, "work");
        partial.set_attr(k, "@title", "Combinatorial Optimization");
        partial.set_attr(k, "@year", "1982");
        let k2 = partial.add_child(w, "work");
        partial.set_attr(k2, "@title", "Computational Complexity");
        partial.set_attr(k2, "@year", "1994");
        assert!(setting.target_dtd.conforms(&partial));
        assert!(!is_solution(&setting, &source, &partial, true));
    }

    #[test]
    fn canonical_solution_maps_into_every_solution() {
        // Lemma 6.15 on the running example: the canonical solution admits a
        // homomorphism into a handcrafted richer solution.
        use xdx_patterns::homomorphism::find_homomorphism;
        let setting = books_to_writers_setting();
        let source = figure_1_source_tree();
        let canonical = canonical_solution(&setting, &source).unwrap();

        let mut rich = XmlTree::new("bib");
        for (name, works) in [
            (
                "Papadimitriou",
                vec![
                    ("Combinatorial Optimization", "1982"),
                    ("Computational Complexity", "1994"),
                    ("Elements of the Theory of Computation", "1981"),
                ],
            ),
            ("Steiglitz", vec![("Combinatorial Optimization", "1982")]),
            ("Knuth", vec![("TAOCP", "1968")]),
        ] {
            let w = rich.add_child(rich.root(), "writer");
            rich.set_attr(w, "@name", name);
            for (title, year) in works {
                let k = rich.add_child(w, "work");
                rich.set_attr(k, "@title", title);
                rich.set_attr(k, "@year", year);
            }
        }
        assert!(is_solution(&setting, &source, &rich, true));
        assert!(find_homomorphism(&canonical, &rich).is_some());
    }
}
