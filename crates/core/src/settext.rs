//! The setting-upload text syntax: a whole data exchange setting
//! (source DTD, target DTD, STDs) in one string.
//!
//! This is the wire format of the server's setting registry — tenants
//! upload settings as text, the server parses and compiles them. The
//! grammar composes the workspace's existing sub-syntaxes instead of
//! inventing new ones: content models are `xdx-relang` regex text, STDs are
//! the pattern rule syntax of [`crate::setting::Std::parse`], and the
//! tokenizer is the shared [`xdx_xmltree::lexer`] (the hoisted cursor the
//! tree-text and pattern grammars are also built on — this module is the
//! reason it was hoisted).
//!
//! ## Grammar
//!
//! ```text
//! setting ::= 'source' dtd_block 'target' dtd_block std_line*
//! dtd_block ::= '{' 'root' NAME ';' decl* '}'
//! decl    ::= 'rule' NAME '=' REGEX ';'          (relang content-model text)
//!           | 'attrs' NAME '=' NAME (',' NAME)* ';'
//! std_line ::= 'std' STD ';'                     (pattern rule text,
//!                                                 target :- source)
//! NAME    ::= [A-Za-z0-9_@.-]+
//! ```
//!
//! `REGEX` and `STD` bodies run to the terminating `;` — inside an STD, a
//! `;` inside a quoted pattern constant does *not* terminate (constants are
//! raw text in the pattern grammar, so `"a;b"` is a legal title).
//! Whitespace (including newlines) separates tokens and is otherwise
//! ignored. Example — the paper's books→writers setting:
//!
//! ```text
//! source {
//!   root db;
//!   rule db = book*;
//!   rule book = author*;
//!   rule author = eps;
//!   attrs book = @title;
//!   attrs author = @name, @aff;
//! }
//! target {
//!   root bib;
//!   rule bib = writer*;
//!   rule writer = work*;
//!   rule work = eps;
//!   attrs writer = @name;
//!   attrs work = @title, @year;
//! }
//! std bib[writer(@name=$y)[work(@title=$x, @year=$z)]]
//!     :- db[book(@title=$x)[author(@name=$y)]];
//! ```
//!
//! [`setting_to_text`] renders any setting whose element/attribute names
//! fit the `NAME` alphabet (everything the parser itself can produce), and
//! `parse_setting(&setting_to_text(s))` reconstructs `s` exactly — the
//! round-trip the proptests in `tests/settings.rs` pin down.
//!
//! Robustness: every sub-parser is either iterative or depth-capped
//! (`relang::MAX_REGEX_DEPTH`, `patterns::MAX_PATTERN_DEPTH`), the input
//! length is capped before any work, and every malformed input is a
//! structured [`SettingTextError`] — never a panic. Semantic validation
//! ([`DataExchangeSetting::validate`]) runs after parsing, so a
//! syntactically well-formed setting with, say, an STD over unknown element
//! types is rejected here too.

use crate::setting::{DataExchangeSetting, SettingError, Std};
use std::fmt;
use xdx_xmltree::lexer::{Cursor, LexError};
use xdx_xmltree::{Dtd, DtdError};

/// Hard cap on the byte length of a setting text. Settings are schemas, not
/// documents — far smaller than any document cap — and the registry hashes
/// and retains the text of every bound setting, so the cap also bounds
/// registry memory per binding.
pub const MAX_SETTING_TEXT_BYTES: usize = 1 << 20;

/// Error raised by [`parse_setting`]: where in the text, and what went
/// wrong — lexical, in a nested sub-grammar, or semantic (a structurally
/// valid setting the engine rejects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SettingTextError {
    /// Byte offset of the error in the input (the start of the offending
    /// sub-grammar body for nested regex/STD/DTD errors).
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for SettingTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "setting text error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for SettingTextError {}

impl From<LexError> for SettingTextError {
    fn from(e: LexError) -> Self {
        SettingTextError {
            position: e.position,
            message: e.message,
        }
    }
}

/// The `NAME` alphabet — identical to the tree-text identifier alphabet, so
/// any element/attribute name this grammar admits serializes unquoted in
/// documents too.
fn name_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '_' | '@' | '.' | '-')
}

/// Parse a whole data exchange setting from its text form (see the module
/// docs for the grammar) and validate it semantically. Never panics; the
/// worst hostile input costs `O(len)` work.
pub fn parse_setting(input: &str) -> Result<DataExchangeSetting, SettingTextError> {
    if input.len() > MAX_SETTING_TEXT_BYTES {
        return Err(SettingTextError {
            position: 0,
            message: format!(
                "input of {} bytes exceeds the {MAX_SETTING_TEXT_BYTES}-byte setting cap",
                input.len()
            ),
        });
    }
    let mut cur = Cursor::new(input);
    expect_keyword(&mut cur, "source")?;
    let source_dtd = parse_dtd_block(&mut cur, "source")?;
    expect_keyword(&mut cur, "target")?;
    let target_dtd = parse_dtd_block(&mut cur, "target")?;
    let mut stds = Vec::new();
    while cur.eat_str("std") {
        cur.skip_ws();
        let start = cur.pos();
        let body = take_until_semi(&mut cur)?;
        let std = Std::parse(body).map_err(|e| SettingTextError {
            position: start + e.position,
            message: format!("in STD: {}", e.message),
        })?;
        cur.expect(';')?;
        stds.push(std);
    }
    if !cur.at_end() {
        return Err(cur
            .error("expected 'std' or end of input after the target DTD")
            .into());
    }
    let setting = DataExchangeSetting::new(source_dtd, target_dtd, stds);
    setting
        .validate(false)
        .map_err(|e: SettingError| SettingTextError {
            position: input.len(),
            message: format!("invalid setting: {e}"),
        })?;
    Ok(setting)
}

fn expect_keyword(cur: &mut Cursor<'_>, kw: &str) -> Result<(), SettingTextError> {
    if cur.eat_str(kw) {
        Ok(())
    } else {
        Err(cur.error(format!("expected '{kw}'")).into())
    }
}

/// One `{ root NAME; decl* }` block, lowered through [`Dtd::builder`] (which
/// parses each content model with `xdx-relang` and validates the DTD's
/// structural rules).
fn parse_dtd_block(cur: &mut Cursor<'_>, which: &str) -> Result<Dtd, SettingTextError> {
    cur.expect('{')?;
    expect_keyword(cur, "root")?;
    let root = cur.ident(name_char, "the root element name")?.to_string();
    cur.expect(';')?;
    let block_start = cur.pos();
    let mut builder = Dtd::builder(root);
    loop {
        if cur.eat_str("rule") {
            let elem = cur
                .ident(name_char, "an element name after 'rule'")?
                .to_string();
            cur.expect('=')?;
            cur.skip_ws();
            let body_start = cur.pos();
            let body = take_until_semi(cur)?;
            cur.expect(';')?;
            // Reject now (with the body's own position) rather than letting
            // `build()` report it without one.
            if let Err(e) = xdx_relang::parser::parse(body) {
                return Err(SettingTextError {
                    position: body_start + e.position,
                    message: format!("in the content model of {elem}: {}", e.message),
                });
            }
            builder = builder.rule(elem, body);
        } else if cur.eat_str("attrs") {
            let elem = cur
                .ident(name_char, "an element name after 'attrs'")?
                .to_string();
            cur.expect('=')?;
            let mut names = Vec::new();
            loop {
                names.push(cur.ident(name_char, "an attribute name")?.to_string());
                if cur.eat(',') {
                    continue;
                }
                cur.expect(';')?;
                break;
            }
            builder = builder.attributes(elem, names);
        } else if cur.eat('}') {
            break;
        } else {
            return Err(cur
                .error("expected 'rule', 'attrs' or '}' in a DTD block")
                .into());
        }
    }
    builder.build().map_err(|e: DtdError| SettingTextError {
        position: block_start,
        message: format!("invalid {which} DTD: {e}"),
    })
}

/// The raw text up to the terminating `;` — skipping `;` inside quoted
/// pattern constants (raw strings, no escapes: the quote state simply
/// toggles). Errors if the input ends first.
fn take_until_semi<'a>(cur: &mut Cursor<'a>) -> Result<&'a str, SettingTextError> {
    let mut in_quotes = false;
    let body = cur.take_while(|c| {
        if c == '"' {
            in_quotes = !in_quotes;
        }
        in_quotes || c != ';'
    });
    if cur.peek() == Some(';') {
        Ok(body)
    } else {
        Err(cur.error("unterminated body: expected ';'").into())
    }
}

/// Render `setting` in the text syntax of [`parse_setting`]. The inverse of
/// parsing for every setting the parser can produce: element and attribute
/// names in the `NAME` alphabet, content models whose `Display` re-parses
/// (true for everything but the unwritable `∅`), STD constants without `"`.
pub fn setting_to_text(setting: &DataExchangeSetting) -> String {
    let mut out = String::new();
    push_dtd(&mut out, "source", &setting.source_dtd);
    push_dtd(&mut out, "target", &setting.target_dtd);
    for std in &setting.stds {
        out.push_str(&format!("std {std};\n"));
    }
    out
}

fn push_dtd(out: &mut String, which: &str, dtd: &Dtd) {
    out.push_str(which);
    out.push_str(" {\n");
    out.push_str(&format!("  root {};\n", dtd.root()));
    // `element_types()` iterates the rule map in sorted order, so rendering
    // is deterministic and re-parsing rebuilds the identical map.
    for elem in dtd.element_types() {
        out.push_str(&format!("  rule {elem} = {};\n", dtd.rule(elem)));
    }
    for elem in dtd.element_types() {
        let attrs = dtd.attrs_of(elem);
        if !attrs.is_empty() {
            let names: Vec<String> = attrs.iter().map(|a| a.to_string()).collect();
            out.push_str(&format!("  attrs {elem} = {};\n", names.join(", ")));
        }
    }
    out.push_str("}\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setting::books_to_writers_setting;

    #[test]
    fn parses_the_books_to_writers_setting() {
        let text = "
            source {
              root db;
              rule db = book*;
              rule book = author*;
              rule author = eps;
              attrs book = @title;
              attrs author = @name, @aff;
            }
            target {
              root bib;
              rule bib = writer*;
              rule writer = work*;
              rule work = eps;
              attrs writer = @name;
              attrs work = @title, @year;
            }
            std bib[writer(@name=$y)[work(@title=$x, @year=$z)]]
                :- db[book(@title=$x)[author(@name=$y)]];
        ";
        let parsed = parse_setting(text).unwrap();
        let fixture = books_to_writers_setting();
        assert_eq!(parsed.to_string(), fixture.to_string());
    }

    #[test]
    fn round_trips_through_text() {
        let setting = books_to_writers_setting();
        let text = setting_to_text(&setting);
        let back = parse_setting(&text).unwrap();
        assert_eq!(back.to_string(), setting.to_string());
        // And rendering is a fixed point.
        assert_eq!(setting_to_text(&back), text);
    }

    #[test]
    fn semicolons_inside_std_constants_do_not_terminate() {
        let text = "
            source { root r; rule r = a*; rule a = eps; attrs a = @x; }
            target { root t; rule t = b*; rule b = eps; attrs b = @x; }
            std t[b(@x=\"v;1\")] :- r[a(@x=\"v;1\")];
        ";
        let s = parse_setting(text).unwrap();
        assert_eq!(s.stds.len(), 1);
        assert!(s.stds[0].to_string().contains("v;1"));
    }

    #[test]
    fn structured_errors_never_panics() {
        for bad in [
            "",
            "source",
            "source {",
            "source { root; }",
            "source { root r }",
            "source { root r; rule }",
            "source { root r; rule r = ; }",
            "source { root r; rule r = (a; }",
            "source { root r; rule r = a*; } target",
            "source { root r; rule r = a*; } target { root t; } trailing",
            "source { root r; rule r = a*; } target { root t; } std ;",
            "source { root r; rule r = a*; } target { root t; } std x :- y",
            "source { root r; rule r = r; } target { root t; }",
            "source { root r; attrs r = @a; } target { root t; }",
            "source { root r; rule r = a*; rule r = b; } target { root t; }",
        ] {
            let err = parse_setting(bad).expect_err(bad);
            assert!(!err.message.is_empty());
            assert!(err.to_string().contains("byte"));
        }
    }

    #[test]
    fn semantic_validation_runs() {
        // Syntactically fine, semantically broken: the STD mentions an
        // element the target DTD does not declare.
        let text = "
            source { root r; rule r = a*; rule a = eps; }
            target { root t; rule t = b*; rule b = eps; }
            std nope[b] :- r[a];
        ";
        let err = parse_setting(text).unwrap_err();
        assert!(err.message.contains("invalid setting"), "{err}");
    }

    #[test]
    fn depth_bombs_in_sub_grammars_are_errors() {
        let regex_bomb = format!(
            "source {{ root r; rule r = {}a{}; }} target {{ root t; }}",
            "(".repeat(10_000),
            ")".repeat(10_000)
        );
        let err = parse_setting(&regex_bomb).unwrap_err();
        assert!(err.message.contains("nesting-depth"), "{err}");

        let std_bomb = format!(
            "source {{ root r; rule r = a*; rule a = eps; }} target {{ root t; rule t = b*; rule b = eps; }} std {}b{} :- r;",
            "t[".repeat(10_000),
            "]".repeat(10_000)
        );
        let err = parse_setting(&std_bomb).unwrap_err();
        assert!(err.message.contains("nesting-depth"), "{err}");
    }

    #[test]
    fn oversized_inputs_are_rejected_before_parsing() {
        let big = "x".repeat(MAX_SETTING_TEXT_BYTES + 1);
        let err = parse_setting(&big).unwrap_err();
        assert!(err.message.contains("setting cap"), "{err}");
    }
}
