//! Certain answers (Section 5.1 and Section 6).
//!
//! `certain(Q, T)` is the intersection of `Q(T')` over all solutions `T'` for
//! the source tree `T`. By Proposition 5.1 this is the same over ordered and
//! unordered solutions, and by Lemma 6.5, for fully-specified STDs and
//! univocal target DTDs, it can be computed by evaluating `Q` over the
//! canonical solution and keeping the tuples built from constants only.

use crate::compiled::CompiledSetting;
use crate::setting::DataExchangeSetting;
use crate::solution::SolutionError;
use std::collections::BTreeSet;
use xdx_patterns::plan::{QueryPlan, TreeIndex};
use xdx_patterns::query::UnionQuery;
use xdx_xmltree::{Value, XmlTree};

/// The result of a certain-answer computation.
#[derive(Debug, Clone)]
pub struct CertainAnswers {
    /// The certain tuples (constants only), in the order of the query head.
    pub tuples: BTreeSet<Vec<String>>,
    /// The canonical solution the answers were computed over; exposed so
    /// callers can materialise it (Proposition 5.2) or inspect it.
    pub solution: XmlTree,
}

impl CertainAnswers {
    /// For Boolean queries: is the certain answer `true`?
    pub fn as_boolean(&self) -> bool {
        // A Boolean query returns the empty tuple when it holds.
        self.tuples.iter().any(|t| t.is_empty()) || !self.tuples.is_empty()
    }
}

/// Compute `certain(Q, T)` by building the canonical solution and evaluating
/// the query over it (Lemma 6.5 / Theorem 6.2, tractable side).
///
/// This is exact whenever the STDs are fully specified and the target DTD is
/// univocal (use [`crate::classify::classify_setting`] to check); the chase
/// reports an error otherwise. When the chase fails because the source tree
/// admits no solution at all, the corresponding [`SolutionError`] is
/// returned — in that degenerate case the paper's semantics would make every
/// tuple certain.
pub fn certain_answers(
    setting: &DataExchangeSetting,
    source_tree: &XmlTree,
    query: &UnionQuery,
) -> Result<CertainAnswers, SolutionError> {
    // One compiled setting serves both the canonical solution (worklist
    // chase, template stamping) and the query planning below.
    let compiled = CompiledSetting::new(setting);
    let solution = compiled.canonical_solution(source_tree)?;
    // The solution conforms (unordered) to the target DTD, so the query is
    // planned against the target DTD's symbol table.
    let plan = QueryPlan::new(query, compiled.target_dtd());
    let index = TreeIndex::new(&solution, compiled.target_dtd());
    let tuples = certain_tuples_planned(&solution, &plan, &index);
    Ok(CertainAnswers { tuples, solution })
}

/// The certain tuples of `query` over a canonical solution: evaluate and
/// keep only rows built entirely from constants (Lemma 6.5's filter).
///
/// Plans the query per call (DTD-less); repeated evaluations of one query
/// should hold a [`QueryPlan`] and go through [`certain_tuples_planned`], as
/// the batch engine ([`crate::engine::BatchEngine::certain_answers_batch`])
/// does — one plan per query, one [`TreeIndex`] per solution.
pub fn certain_tuples(solution: &XmlTree, query: &UnionQuery) -> BTreeSet<Vec<String>> {
    let plan = QueryPlan::without_dtd(query);
    let index = TreeIndex::without_dtd(solution);
    certain_tuples_planned(solution, &plan, &index)
}

/// As [`certain_tuples`], on a pre-planned query and a pre-built index (the
/// plan and index must target the same DTD — or both be DTD-less).
pub fn certain_tuples_planned(
    solution: &XmlTree,
    plan: &QueryPlan,
    index: &TreeIndex,
) -> BTreeSet<Vec<String>> {
    certain_tuples_planned_with(
        solution,
        plan,
        index,
        &mut xdx_patterns::plan::EvalScratch::new(),
    )
}

/// As [`certain_tuples_planned`], reusing a caller-held evaluation scratch
/// (the per-worker amortisation hook of the batch engine and the serving
/// dispatcher).
pub fn certain_tuples_planned_with(
    solution: &XmlTree,
    plan: &QueryPlan,
    index: &TreeIndex,
    eval: &mut xdx_patterns::plan::EvalScratch,
) -> BTreeSet<Vec<String>> {
    plan.evaluate_with(solution, index, eval)
        .into_iter()
        .filter_map(|row| {
            row.iter()
                .map(|v| match v {
                    Value::Const(s) => Some(s.to_string()),
                    Value::Null(_) => None,
                })
                .collect::<Option<Vec<String>>>()
        })
        .collect()
}

/// Compute the certain answer of a Boolean query.
pub fn certain_answers_boolean(
    setting: &DataExchangeSetting,
    source_tree: &XmlTree,
    query: &UnionQuery,
) -> Result<bool, SolutionError> {
    let compiled = CompiledSetting::new(setting);
    let solution = compiled.canonical_solution(source_tree)?;
    let plan = QueryPlan::new(query, compiled.target_dtd());
    let index = TreeIndex::new(&solution, compiled.target_dtd());
    Ok(plan.evaluate_boolean(&solution, &index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setting::{books_to_writers_setting, figure_1_source_tree};
    use xdx_patterns::parse_pattern;
    use xdx_patterns::query::ConjunctiveTreeQuery;

    fn query(head: &[&str], patterns: &[&str]) -> UnionQuery {
        UnionQuery::single(
            ConjunctiveTreeQuery::new(
                head.iter().copied(),
                patterns.iter().map(|p| parse_pattern(p).unwrap()).collect(),
            )
            .unwrap(),
        )
    }

    #[test]
    fn introduction_query_who_wrote_computational_complexity() {
        let setting = books_to_writers_setting();
        let source = figure_1_source_tree();
        let q = query(
            &["w"],
            &["writer(@name=$w)[work(@title=\"Computational Complexity\")]"],
        );
        let answers = certain_answers(&setting, &source, &q).unwrap();
        assert_eq!(answers.tuples.len(), 1);
        assert!(answers.tuples.contains(&vec!["Papadimitriou".to_string()]));
    }

    #[test]
    fn introduction_query_works_written_in_1994_is_uncertain() {
        // "What are the works written in 1994?" cannot be answered with
        // certainty: the years are nulls in every canonical solution.
        let setting = books_to_writers_setting();
        let source = figure_1_source_tree();
        let q = query(&["t"], &["work(@title=$t, @year=\"1994\")"]);
        let answers = certain_answers(&setting, &source, &q).unwrap();
        assert!(answers.tuples.is_empty());
    }

    #[test]
    fn null_valued_projections_are_filtered_out() {
        let setting = books_to_writers_setting();
        let source = figure_1_source_tree();
        // Projecting the year yields nulls only, hence no certain tuples.
        let q = query(&["y"], &["work(@year=$y)"]);
        let answers = certain_answers(&setting, &source, &q).unwrap();
        assert!(answers.tuples.is_empty());
        // Projecting titles yields constants.
        let q2 = query(&["t"], &["work(@title=$t)"]);
        let answers2 = certain_answers(&setting, &source, &q2).unwrap();
        assert_eq!(answers2.tuples.len(), 2);
    }

    #[test]
    fn boolean_certain_answers() {
        let setting = books_to_writers_setting();
        let source = figure_1_source_tree();
        let yes = query(&[], &["bib[writer(@name=\"Steiglitz\")]"]);
        assert!(certain_answers_boolean(&setting, &source, &yes).unwrap());
        let no = query(&[], &["bib[writer(@name=\"Knuth\")]"]);
        assert!(!certain_answers_boolean(&setting, &source, &no).unwrap());
    }

    #[test]
    fn union_queries_combine_branches() {
        let setting = books_to_writers_setting();
        let source = figure_1_source_tree();
        let q = UnionQuery::new(vec![
            ConjunctiveTreeQuery::new(
                ["n"],
                vec![
                    parse_pattern("writer(@name=$n)[work(@title=\"Computational Complexity\")]")
                        .unwrap(),
                ],
            )
            .unwrap(),
            ConjunctiveTreeQuery::new(
                ["n"],
                vec![parse_pattern(
                    "writer(@name=$n)[work(@title=\"Combinatorial Optimization\")]",
                )
                .unwrap()],
            )
            .unwrap(),
        ])
        .unwrap();
        let answers = certain_answers(&setting, &source, &q).unwrap();
        assert_eq!(answers.tuples.len(), 2);
        assert!(answers.tuples.contains(&vec!["Steiglitz".to_string()]));
    }

    #[test]
    fn certain_answers_are_contained_in_answers_over_any_solution() {
        // Soundness sanity check against a handcrafted alternative solution.
        use crate::solution::is_solution;
        use xdx_xmltree::XmlTree;
        let setting = books_to_writers_setting();
        let source = figure_1_source_tree();
        let q = query(&["w", "t"], &["writer(@name=$w)[work(@title=$t)]"]);
        let answers = certain_answers(&setting, &source, &q).unwrap();
        assert_eq!(answers.tuples.len(), 3);

        let mut other = XmlTree::new("bib");
        for (name, works) in [
            (
                "Papadimitriou",
                vec![
                    ("Combinatorial Optimization", "1982"),
                    ("Computational Complexity", "1994"),
                ],
            ),
            ("Steiglitz", vec![("Combinatorial Optimization", "1982")]),
            ("Knuth", vec![("TAOCP", "1968")]),
        ] {
            let w = other.add_child(other.root(), "writer");
            other.set_attr(w, "@name", name);
            for (title, year) in works {
                let k = other.add_child(w, "work");
                other.set_attr(k, "@title", title);
                other.set_attr(k, "@year", year);
            }
        }
        assert!(is_solution(&setting, &source, &other, true));
        let over_other: BTreeSet<Vec<String>> = UnionQuery::single(
            ConjunctiveTreeQuery::new(
                ["w", "t"],
                vec![parse_pattern("writer(@name=$w)[work(@title=$t)]").unwrap()],
            )
            .unwrap(),
        )
        .evaluate(&other)
        .into_iter()
        .map(|row| {
            row.iter()
                .map(|v| v.as_const().unwrap().to_string())
                .collect()
        })
        .collect();
        assert!(answers.tuples.is_subset(&over_other));
        // ...and strictly contained: the other solution invents a Knuth fact
        // that is not certain.
        assert!(over_other.len() > answers.tuples.len());
    }
}
