//! Consistency of data exchange settings (Section 4).
//!
//! A setting `(D_S, D_T, Σ_ST)` is *consistent* when at least one source tree
//! has a solution. Two decision procedures are provided:
//!
//! * [`check_consistency_general`] — the automata-theoretic procedure behind
//!   the EXPTIME upper bound of Theorem 4.1: the setting is consistent iff
//!   for some subset `I` of the STDs there is a source tree satisfying
//!   exactly the source patterns indexed by `I` and a target tree satisfying
//!   all the target patterns indexed by `I`. Attribute bindings are erased
//!   (Claim 4.2), which is sound under the distinct-variable proviso on
//!   source patterns.
//! * [`check_consistency_nested_relational`] — the `O(n·m²)` algorithm of
//!   Theorem 4.5 for nested-relational (Clio-class) DTDs: build `D°_S` and
//!   `D*_T`, materialise their unique conforming trees and check every STD
//!   against those two fixed trees.
//!
//! [`check_consistency`] dispatches to the fast path when both DTDs are
//! nested-relational.

use crate::setting::DataExchangeSetting;
use xdx_automata::PatternSatisfiability;
use xdx_patterns::eval::all_matches_reference;
use xdx_patterns::TreePattern;
use xdx_xmltree::{DtdError, Value};

/// Which algorithm produced a consistency verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsistencyMethod {
    /// The polynomial-time nested-relational algorithm (Theorem 4.5).
    NestedRelational,
    /// The general automata-based algorithm (Theorem 4.1).
    General,
}

/// The result of a consistency check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConsistencyVerdict {
    /// Is the setting consistent?
    pub consistent: bool,
    /// Which algorithm was used.
    pub method: ConsistencyMethod,
}

/// Check consistency, using the nested-relational fast path when both DTDs
/// belong to that class and the general procedure otherwise.
///
/// Runs on the compiled fast path (a [`crate::compiled::CompiledSetting`] is
/// built for the call); hold one yourself to amortise the compilation over
/// repeated queries.
pub fn check_consistency(setting: &DataExchangeSetting) -> ConsistencyVerdict {
    crate::compiled::CompiledSetting::new(setting).check_consistency()
}

/// The general (worst-case exponential) consistency check of Theorem 4.1
/// (compiled fast path; the original is kept as
/// [`check_consistency_general_reference`]).
pub fn check_consistency_general(setting: &DataExchangeSetting) -> bool {
    crate::compiled::CompiledSetting::new(setting).check_consistency_general()
}

/// The `O(n·m²)` consistency check for nested-relational DTDs (Theorem 4.5),
/// on the compiled fast path (the original is kept as
/// [`check_consistency_nested_relational_reference`]).
///
/// Returns an error if either DTD is not nested-relational.
pub fn check_consistency_nested_relational(
    setting: &DataExchangeSetting,
) -> Result<bool, DtdError> {
    crate::compiled::CompiledSetting::new(setting).check_consistency_nested_relational()
}

/// Reference implementation of [`check_consistency_general`].
///
/// Iterates over subsets `I ⊆ Σ_ST`, asking (a) whether some source tree
/// satisfies exactly the source patterns in `I`, and (b) whether some target
/// tree satisfies all target patterns in `I`; the setting is consistent iff
/// both hold for some `I`. Both sub-questions are answered by
/// [`PatternSatisfiability`], which explores the reachable part of the
/// automaton products of the paper's proof.
pub fn check_consistency_general_reference(setting: &DataExchangeSetting) -> bool {
    let n = setting.stds.len();
    let source_solver = PatternSatisfiability::new(&setting.source_dtd);
    let target_solver = PatternSatisfiability::new(&setting.target_dtd);
    let source_patterns: Vec<TreePattern> = setting
        .stds
        .iter()
        .map(|s| s.source.erase_attributes())
        .collect();
    let target_patterns: Vec<TreePattern> = setting
        .stds
        .iter()
        .map(|s| s.target.erase_attributes())
        .collect();

    // A setting with no STDs is consistent iff both DTDs are satisfiable.
    if n == 0 {
        return setting.source_dtd.is_satisfiable() && setting.target_dtd.is_satisfiable();
    }

    assert!(
        n < usize::BITS as usize,
        "the general consistency check enumerates 2^|Σ_ST| subsets; {n} STDs is not supported"
    );
    for mask in 0usize..(1usize << n) {
        let mut tgt_pos = Vec::new();
        let mut src_pos = Vec::new();
        let mut src_neg = Vec::new();
        for i in 0..n {
            if mask & (1 << i) != 0 {
                tgt_pos.push(&target_patterns[i]);
                src_pos.push(&source_patterns[i]);
            } else {
                src_neg.push(&source_patterns[i]);
            }
        }
        // Check the cheaper target side first.
        if !target_solver.satisfiable(&tgt_pos, &[]) {
            continue;
        }
        if source_solver.satisfiable(&src_pos, &src_neg) {
            return true;
        }
    }
    false
}

/// Reference implementation of [`check_consistency_nested_relational`]:
/// rebuilds `D°`/`D*` and their unique trees on every call.
pub fn check_consistency_nested_relational_reference(
    setting: &DataExchangeSetting,
) -> Result<bool, DtdError> {
    let circle = setting.source_dtd.to_circle()?;
    let star = setting.target_dtd.to_star()?;
    let fill = |_: &_, _: &_| Value::constant("s0");
    let source_tree = circle.unique_conforming_tree_with(fill)?;
    let target_tree = star.unique_conforming_tree_with(fill)?;
    // The setting is consistent iff no STD has its (erased) source pattern
    // true in T_S while its (erased) target pattern is false in T_T.
    for std in &setting.stds {
        let phi = std.source.erase_attributes();
        let psi = std.target.erase_attributes();
        let source_holds = !all_matches_reference(&source_tree, &phi).is_empty();
        let target_holds = !all_matches_reference(&target_tree, &psi).is_empty();
        if source_holds && !target_holds {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setting::{books_to_writers_setting, DataExchangeSetting, Std};
    use xdx_xmltree::Dtd;

    #[test]
    fn running_example_is_consistent_by_the_fast_path() {
        let setting = books_to_writers_setting();
        let verdict = check_consistency(&setting);
        assert!(verdict.consistent);
        assert_eq!(verdict.method, ConsistencyMethod::NestedRelational);
        // The general procedure agrees.
        assert!(check_consistency_general(&setting));
    }

    #[test]
    fn section_4_inconsistent_example() {
        // STD r2[one[two(@a=x)]] :- r ; target DTD r2 → one|two with one, two → ε.
        // No source tree has a solution: the setting is inconsistent whatever
        // the source DTD is.
        let source = Dtd::builder("r").rule("r", "a*").build().unwrap();
        let target = Dtd::builder("r2")
            .rule("r2", "one|two")
            .rule("one", "eps")
            .rule("two", "eps")
            .build()
            .unwrap();
        let std = Std::parse("r2[one[two(@a=$x)]] :- r").unwrap();
        let setting = DataExchangeSetting::new(source, target, vec![std]);
        let verdict = check_consistency(&setting);
        assert!(!verdict.consistent);
        assert_eq!(verdict.method, ConsistencyMethod::General);
    }

    #[test]
    fn consistency_can_hinge_on_avoidable_source_patterns() {
        // The target pattern is unsatisfiable, but the source pattern can be
        // avoided (books may have no authors), so the setting is consistent.
        let source = Dtd::builder("db")
            .rule("db", "book*")
            .rule("book", "author*")
            .build()
            .unwrap();
        let target = Dtd::builder("r2")
            .rule("r2", "one|two")
            .rule("one", "eps")
            .rule("two", "eps")
            .build()
            .unwrap();
        let std = Std::parse("r2[one[two]] :- db[book[author]]").unwrap();
        let setting = DataExchangeSetting::new(source, target.clone(), vec![std]);
        assert!(check_consistency_general(&setting));

        // If instead the source pattern is unavoidable (every conforming
        // source tree has a book with an author), the setting becomes
        // inconsistent.
        let forced_source = Dtd::builder("db")
            .rule("db", "book+")
            .rule("book", "author+")
            .build()
            .unwrap();
        let std2 = Std::parse("r2[one[two]] :- db[book[author]]").unwrap();
        let setting2 = DataExchangeSetting::new(forced_source, target, vec![std2]);
        assert!(!check_consistency_general(&setting2));
    }

    #[test]
    fn nested_relational_check_agrees_with_general_on_clio_settings() {
        // A consistent nested-relational setting...
        let consistent = books_to_writers_setting();
        assert_eq!(
            check_consistency_nested_relational(&consistent).unwrap(),
            check_consistency_general(&consistent)
        );

        // ...and an inconsistent one: the target pattern requires an element
        // the target DTD's mandatory skeleton cannot provide.
        let source = Dtd::builder("db")
            .rule("db", "item+")
            .attributes("item", ["@id"])
            .build()
            .unwrap();
        let target = Dtd::builder("out")
            .rule("out", "entry")
            .rule("entry", "eps")
            .attributes("entry", ["@id"])
            .build()
            .unwrap();
        // wrapper[entry] requires an element type `wrapper` that the target
        // DTD does not even declare.
        let std = Std::parse("out[wrapper[entry(@id=$x)]] :- db[item(@id=$x)]").unwrap();
        let setting = DataExchangeSetting::new(source, target, vec![std]);
        assert!(setting.is_nested_relational());
        assert_eq!(
            check_consistency_nested_relational(&setting).unwrap(),
            check_consistency_general(&setting)
        );
        assert!(!check_consistency_general(&setting));
    }

    #[test]
    fn optional_source_structure_is_ignored_by_the_circle_transformation() {
        // D°_S drops optional parts: a source pattern that can only be
        // satisfied using optional structure does not force anything, so the
        // target pattern being unsatisfiable does not hurt consistency.
        let source = Dtd::builder("db").rule("db", "a? b").build().unwrap();
        // `two` is never declared by the target DTD, so the target pattern
        // r2[one[two]] is unsatisfiable.
        let target = Dtd::builder("r2")
            .rule("r2", "one?")
            .rule("one", "eps")
            .build()
            .unwrap();
        let avoidable = Std::parse("r2[one[two]] :- db[a]").unwrap();
        let setting = DataExchangeSetting::new(source.clone(), target.clone(), vec![avoidable]);
        assert!(check_consistency_nested_relational(&setting).unwrap());
        assert!(check_consistency_general(&setting));

        let unavoidable = Std::parse("r2[one[two]] :- db[b]").unwrap();
        let setting2 = DataExchangeSetting::new(source, target, vec![unavoidable]);
        assert!(!check_consistency_nested_relational(&setting2).unwrap());
        assert!(!check_consistency_general(&setting2));
    }

    #[test]
    fn nested_relational_check_rejects_other_dtds() {
        let source = Dtd::builder("r").rule("r", "(a b)*").build().unwrap();
        let target = Dtd::builder("t").rule("t", "c*").build().unwrap();
        let setting = DataExchangeSetting::new(source, target, vec![]);
        assert!(check_consistency_nested_relational(&setting).is_err());
        // the dispatcher falls back to the general method
        let verdict = check_consistency(&setting);
        assert_eq!(verdict.method, ConsistencyMethod::General);
        assert!(verdict.consistent);
    }

    #[test]
    fn empty_std_set_reduces_to_dtd_satisfiability() {
        let sat = Dtd::builder("r").rule("r", "a*").build().unwrap();
        let unsat = Dtd::builder("u")
            .rule("u", "v")
            .rule("v", "v")
            .build()
            .unwrap();
        let ok = DataExchangeSetting::new(sat.clone(), sat.clone(), vec![]);
        assert!(check_consistency_general(&ok));
        let bad = DataExchangeSetting::new(sat, unsat, vec![]);
        assert!(!check_consistency_general(&bad));
    }
}
