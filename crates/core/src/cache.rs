//! Version-tagged per-document result caching.
//!
//! A resident document (in `xdx-store`) is edited in place; every derived
//! result — its consistency verdict, its canonical solution, the certain
//! answers of queries over it — is only valid for the exact document
//! *version* it was computed from. A [`DocResultCache`] owns the document's
//! monotone version counter and a map from [`CacheKey`]s to results tagged
//! with their computed-at version: bumping the version (what every applied
//! edit batch does) invalidates the whole cache in `O(entries)`, and a
//! result computed concurrently against a version that has since moved on
//! is silently discarded at insertion instead of poisoning readers.
//!
//! The cache is deliberately generic in the cached value `V`: `xdx-core`
//! callers can cache semantic results (solution trees, answer sets) while
//! the server caches fully encoded response bodies for byte-for-byte reply
//! parity. It is also deliberately *not* thread-safe — one cache belongs to
//! one resident document, whose store already serialises mutation; the
//! compute-outside-the-lock pattern is exactly what the `computed_at` tag
//! at [`DocResultCache::insert`] makes safe.

use std::collections::HashMap;

/// What a cached entry answers. Query-shaped keys carry the query's source
/// text: two requests asking the same question about the same document
/// version share one entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CacheKey {
    /// Per-document consistency: does the document conform to the source
    /// DTD and admit a solution?
    Consistency,
    /// The canonical solution (or the error the chase reports).
    CanonicalSolution,
    /// Certain answers of the query with this source text.
    CertainAnswers(String),
    /// Boolean certain answer of the query with this source text.
    CertainBoolean(String),
}

/// A cached value together with the document version it was computed at.
#[derive(Debug, Clone)]
pub struct Cached<V> {
    /// The document version the value was computed from.
    pub computed_at: u64,
    /// The result itself.
    pub value: V,
    /// LRU stamp: the cache's logical clock at the last hit or insert.
    last_used: u64,
}

/// Default per-document entry cap (see [`DocResultCache::with_capacity`]).
/// Generous for real workloads — one consistency + one solution entry plus
/// a working set of distinct query texts — while keeping the worst case
/// (a client spraying distinct `CertainAnswers(text)` keys at a pinned
/// document version) bounded per document.
pub const DEFAULT_MAX_CACHE_ENTRIES: usize = 64;

/// Per-document result cache with edit-driven invalidation (see the module
/// docs). `version` starts wherever the caller says (WAL replay restores
/// counters) and only ever moves forward.
///
/// The entry count is capped: version bumps already clear the map, but a
/// document that is *read* under many distinct query texts at one version
/// would otherwise grow without bound. At the cap, inserting a new key
/// evicts the least-recently-used entry (`get` hits refresh recency).
#[derive(Debug, Clone)]
pub struct DocResultCache<V> {
    version: u64,
    entries: HashMap<CacheKey, Cached<V>>,
    /// Logical clock driving LRU stamps; advanced by hits and inserts.
    clock: u64,
    /// Entry cap (≥ 1); reaching it evicts the LRU entry.
    max_entries: usize,
}

impl<V> DocResultCache<V> {
    /// An empty cache for a document currently at `version`, with the
    /// [`DEFAULT_MAX_CACHE_ENTRIES`] entry cap.
    pub fn new(version: u64) -> Self {
        DocResultCache::with_capacity(version, DEFAULT_MAX_CACHE_ENTRIES)
    }

    /// An empty cache with an explicit entry cap (clamped to ≥ 1).
    pub fn with_capacity(version: u64, max_entries: usize) -> Self {
        DocResultCache {
            version,
            entries: HashMap::new(),
            clock: 0,
            max_entries: max_entries.max(1),
        }
    }

    /// The document version the cache currently serves.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Record an edit: advance the version and drop every entry (they were
    /// all computed at an older version). Returns the new version.
    pub fn bump(&mut self) -> u64 {
        self.version += 1;
        self.entries.clear();
        self.version
    }

    /// Reset the version (WAL replay / snapshot load). Drops all entries
    /// unless the version is unchanged.
    pub fn set_version(&mut self, version: u64) {
        if version != self.version {
            self.version = version;
            self.entries.clear();
        }
    }

    /// The cached value for `key`, if one was computed at the *current*
    /// version. Entries tagged with an older version never escape (they are
    /// cleared eagerly by [`DocResultCache::bump`], so this is belt and
    /// braces against direct `set_version` misuse). A hit refreshes the
    /// entry's LRU recency (hence `&mut self`).
    pub fn get(&mut self, key: &CacheKey) -> Option<&V> {
        let version = self.version;
        self.clock += 1;
        let clock = self.clock;
        self.entries
            .get_mut(key)
            .filter(|c| c.computed_at == version)
            .map(|c| {
                c.last_used = clock;
                &c.value
            })
    }

    /// Insert a value computed at version `computed_at`. If the document
    /// has moved on since the computation started the value is stale and is
    /// dropped on the floor — the caller raced an edit and simply gets no
    /// cache hit next time. At the entry cap, the least-recently-used entry
    /// makes room. Returns whether the value was kept.
    pub fn insert(&mut self, key: CacheKey, computed_at: u64, value: V) -> bool {
        if computed_at != self.version {
            return false;
        }
        if self.entries.len() >= self.max_entries && !self.entries.contains_key(&key) {
            // O(cap) scan; the cap is small and eviction only runs when a
            // *new* key lands in a full cache.
            if let Some(lru) = self
                .entries
                .iter()
                .min_by_key(|(_, c)| c.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&lru);
            }
        }
        self.clock += 1;
        self.entries.insert(
            key,
            Cached {
                computed_at,
                value,
                last_used: self.clock,
            },
        );
        true
    }

    /// Drop every entry without touching the version — the invalidation for
    /// "the *setting* under this document changed" (the version counter
    /// tracks document edits only).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// The entry cap.
    pub fn capacity(&self) -> usize {
        self.max_entries
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<V> Default for DocResultCache<V> {
    fn default() -> Self {
        DocResultCache::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_only_at_the_current_version() {
        let mut cache: DocResultCache<&'static str> = DocResultCache::new(7);
        assert!(cache.insert(CacheKey::Consistency, 7, "ok"));
        assert_eq!(cache.get(&CacheKey::Consistency), Some(&"ok"));
        assert_eq!(cache.bump(), 8);
        assert_eq!(cache.get(&CacheKey::Consistency), None);
        assert!(cache.is_empty());
    }

    #[test]
    fn stale_compute_results_are_discarded_at_insert() {
        let mut cache: DocResultCache<u32> = DocResultCache::new(3);
        // A computation started at version 3; an edit lands meanwhile.
        cache.bump();
        assert!(!cache.insert(CacheKey::CanonicalSolution, 3, 42));
        assert_eq!(cache.get(&CacheKey::CanonicalSolution), None);
        // The re-computation at the current version sticks.
        assert!(cache.insert(CacheKey::CanonicalSolution, 4, 43));
        assert_eq!(cache.get(&CacheKey::CanonicalSolution), Some(&43));
    }

    #[test]
    fn entry_count_is_bounded_with_lru_eviction() {
        // The regression: many distinct query texts at one pinned version
        // must not grow the cache past its cap.
        let mut cache: DocResultCache<usize> = DocResultCache::with_capacity(0, 4);
        for i in 0..1000 {
            assert!(cache.insert(CacheKey::CertainAnswers(format!("q{i}")), 0, i));
            assert!(cache.len() <= 4, "cache grew past its cap at insert {i}");
        }
        // The most recent four survive.
        for i in 996..1000 {
            assert_eq!(
                cache.get(&CacheKey::CertainAnswers(format!("q{i}"))),
                Some(&i)
            );
        }
        assert_eq!(cache.get(&CacheKey::CertainAnswers("q0".into())), None);
    }

    #[test]
    fn get_refreshes_recency() {
        let mut cache: DocResultCache<u32> = DocResultCache::with_capacity(0, 2);
        cache.insert(CacheKey::Consistency, 0, 1);
        cache.insert(CacheKey::CanonicalSolution, 0, 2);
        // Touch the older entry, then insert a third key: the *untouched*
        // middle entry is the LRU victim.
        assert_eq!(cache.get(&CacheKey::Consistency), Some(&1));
        cache.insert(CacheKey::CertainBoolean("q".into()), 0, 3);
        assert_eq!(cache.get(&CacheKey::Consistency), Some(&1));
        assert_eq!(cache.get(&CacheKey::CanonicalSolution), None);
        assert_eq!(cache.get(&CacheKey::CertainBoolean("q".into())), Some(&3));
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let mut cache: DocResultCache<u32> = DocResultCache::with_capacity(0, 2);
        cache.insert(CacheKey::Consistency, 0, 1);
        cache.insert(CacheKey::CanonicalSolution, 0, 2);
        // Overwrite in place at the cap: both keys must survive.
        cache.insert(CacheKey::Consistency, 0, 9);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&CacheKey::Consistency), Some(&9));
        assert_eq!(cache.get(&CacheKey::CanonicalSolution), Some(&2));
    }

    #[test]
    fn clear_drops_entries_but_keeps_the_version() {
        let mut cache: DocResultCache<u32> = DocResultCache::new(5);
        cache.insert(CacheKey::Consistency, 5, 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.version(), 5);
        assert!(cache.insert(CacheKey::Consistency, 5, 2));
    }

    #[test]
    fn query_keys_are_per_source_text() {
        let mut cache: DocResultCache<bool> = DocResultCache::new(0);
        cache.insert(CacheKey::CertainBoolean("q1".into()), 0, true);
        cache.insert(CacheKey::CertainBoolean("q2".into()), 0, false);
        assert_eq!(cache.len(), 2);
        assert_eq!(
            cache.get(&CacheKey::CertainBoolean("q1".into())),
            Some(&true)
        );
        assert_eq!(
            cache.get(&CacheKey::CertainBoolean("q2".into())),
            Some(&false)
        );
    }
}
