//! The resident document store.
//!
//! A [`DocStore`] keeps a set of documents in memory (as [`XmlTree`]s),
//! makes every acknowledged mutation durable through the WAL, and maintains
//! the per-document machinery that turns "a node changed" into cheap
//! re-answers:
//!
//! * a **version** per document, drawn from a store-wide monotone mutation
//!   sequence (every `put`/`edit`/`delete` advances it; results computed
//!   against an old version are invalidated for free). Because the sequence
//!   is global, a version value is never reused — not even across a
//!   delete + re-put of the same id — which makes the `edit` base-version
//!   check ABA-proof and gives WAL replay an unambiguous "already in the
//!   snapshot" test;
//! * a **dirty set** of nodes touched since the last validation, which
//!   feeds the `O(dirty)` incremental conformance check
//!   ([`DocStore::validate`]) and the incremental chase
//!   ([`xdx_core::CompiledSetting::chase_incremental`]);
//! * a **violation set** — the nodes currently failing their node-local
//!   DTD check — kept incrementally: a document is valid iff the set is
//!   empty, and an edit only re-checks the nodes it dirtied;
//! * a version-tagged **result cache** ([`xdx_core::DocResultCache`]) the
//!   embedder fills with whatever it computes per version (the server
//!   caches encoded response bodies for byte-identical replays).
//!
//! # Recovery
//!
//! `open` loads the snapshot (if any), replays the WAL's consistent prefix
//! on top of it, and truncates any torn tail. Snapshot frames are checksum
//! verified at open but decoded lazily on first access, so a restart over a
//! large corpus costs one bulk read — documents never touched again are
//! never rebuilt node by node. The snapshot footer records the store-wide
//! mutation sequence at checkpoint time, and replay skips every WAL record
//! whose version (a stamp from that same sequence) is at or below it —
//! which makes a crash *between* snapshot rename and WAL reset harmless:
//! the stale records are exactly the ones at or below the footer sequence,
//! regardless of how puts, edits and deletes of the same id interleave.
//! (A per-document comparison would not survive delete + re-put: the
//! re-put document would look "older" than a stale edit record of its
//! predecessor.) [`DocStore::checkpoint`] writes the snapshot atomically
//! (tmp + rename) and only then resets the WAL, so a kill at any point
//! leaves a state `open` reconstructs exactly.
//!
//! # Setting scoping
//!
//! Every index is keyed by a [`DocKey`] — a `(setting, doc)` pair — so one
//! store serves every setting binding of a multi-tenant server without id
//! collisions. A bare `u64` converts into the default setting's key, which
//! is what protocol v1/v2 clients (and single-setting embedders) address.
//! Rebinding a setting id to a different compiled setting calls
//! [`DocStore::invalidate_setting`]: derived state (result caches,
//! validation baselines) is discarded, the documents themselves survive.
//!
//! `open` also takes an exclusive advisory lock on a `store.lock` file in
//! the directory, so two processes pointed at the same store fail fast
//! ([`StoreError::Locked`]) instead of silently corrupting each other.

use crate::edit::{apply_edits, DocEdit, EditError};
use crate::key::DocKey;
use crate::snapshot::{load_snapshot, write_snapshot, SnapshotSource, SnapshotWriteError};
use crate::vfs::{RealVfs, Vfs};
use crate::wal::{SyncPolicy, Wal, WalError, WalOp, WalRecord};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;
use xdx_core::DocResultCache;
use xdx_obs::Histogram;
use xdx_xmltree::limits::MAX_DOCUMENT_BYTES;
use xdx_xmltree::{decode_tree, encode_tree, CompiledDtd, NodeId, Value, XmlTree};

/// File name of the snapshot segment inside the store directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// File name of the write-ahead log inside the store directory.
pub const WAL_FILE: &str = "wal.log";
/// File name of the advisory lock inside the store directory.
pub const LOCK_FILE: &str = "store.lock";

/// Store configuration.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding the snapshot and WAL (created if absent).
    pub dir: PathBuf,
    /// WAL durability policy.
    pub sync: SyncPolicy,
    /// Admission cap: `put` of a *new* document beyond this many residents
    /// is rejected with [`StoreError::StoreFull`]. Recovery always loads
    /// what is on disk, even past the cap.
    pub max_resident_docs: usize,
    /// The filesystem the store performs its I/O through. Production uses
    /// [`RealVfs`]; tests inject a [`crate::vfs::FaultVfs`] to reach every
    /// error path deterministically.
    pub vfs: Arc<dyn Vfs>,
}

impl StoreConfig {
    /// A config with the default durability (`fsync` every 256 KiB),
    /// admission cap (1024 documents), and the real filesystem.
    pub fn new(dir: impl Into<PathBuf>) -> StoreConfig {
        StoreConfig {
            dir: dir.into(),
            sync: SyncPolicy::EveryBytes(256 * 1024),
            max_resident_docs: 1024,
            vfs: Arc::new(RealVfs),
        }
    }

    /// The same config with `vfs` substituted.
    pub fn with_vfs(mut self, vfs: Arc<dyn Vfs>) -> StoreConfig {
        self.vfs = vfs;
        self
    }
}

/// Store errors. `Corrupt` is reserved for damage the prefix-consistent
/// recovery cannot absorb (a corrupt snapshot, or a WAL record that passed
/// its checksum but does not apply) — the store refuses to open rather than
/// guess at history.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O failure.
    Io(std::io::Error),
    /// Persistent state is damaged beyond prefix recovery.
    Corrupt {
        /// What was damaged, and how.
        context: String,
    },
    /// The document key is not resident.
    UnknownDoc {
        /// The key.
        key: DocKey,
    },
    /// An `edit` named a base version that is no longer current.
    VersionConflict {
        /// The key.
        key: DocKey,
        /// The version the caller edited against.
        expected: u64,
        /// The document's actual current version.
        actual: u64,
    },
    /// The edit batch was rejected (document unchanged).
    BadEdit(EditError),
    /// Admission cap reached.
    StoreFull {
        /// The configured cap.
        limit: usize,
    },
    /// Another process holds the store directory (advisory lock).
    Locked {
        /// The contested directory.
        dir: PathBuf,
    },
    /// A `put` or `edit` would grow the document's binary encoding past
    /// [`MAX_DOCUMENT_BYTES`] — the decoder's hard cap. Admitting it would
    /// checkpoint a frame that can never be loaded back.
    DocTooLarge {
        /// The key.
        key: DocKey,
        /// Encoded size (for `edit`, a conservative upper bound).
        bytes: usize,
        /// The cap.
        limit: usize,
    },
    /// The store is in **sticky degraded read-only mode**: an earlier I/O
    /// failure (a failed fsync, or a WAL rollback that itself failed) left
    /// on-disk durability unknown, so the store stopped acknowledging
    /// mutations. Reads and pure-compute operations keep serving the
    /// in-memory state, which reflects exactly the acknowledged history.
    /// Recovery is a process restart: `open` replays the consistent
    /// on-disk prefix. See `DESIGN.md` § failure semantics.
    Degraded {
        /// The failure that degraded the store.
        reason: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O: {e}"),
            StoreError::Corrupt { context } => write!(f, "store corrupt: {context}"),
            StoreError::UnknownDoc { key } => write!(f, "unknown document {key}"),
            StoreError::VersionConflict {
                key,
                expected,
                actual,
            } => write!(
                f,
                "version conflict on document {key}: edit against {expected}, current {actual}"
            ),
            StoreError::BadEdit(e) => write!(f, "bad edit: {e}"),
            StoreError::StoreFull { limit } => {
                write!(f, "store full ({limit} resident documents)")
            }
            StoreError::Locked { dir } => write!(
                f,
                "store directory {} is locked by another process",
                dir.display()
            ),
            StoreError::DocTooLarge { key, bytes, limit } => write!(
                f,
                "document {key} too large: {bytes} encoded bytes exceeds the {limit}-byte cap"
            ),
            StoreError::Degraded { reason } => {
                write!(f, "store degraded (read-only): {reason}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

impl From<EditError> for StoreError {
    fn from(e: EditError) -> StoreError {
        StoreError::BadEdit(e)
    }
}

/// What an accepted edit batch reports back.
#[derive(Debug)]
pub struct EditReceipt {
    /// The document's new version.
    pub version: u64,
    /// The nodes the batch dirtied (see [`crate::edit::AppliedEdits::dirty`]).
    pub dirty: Vec<NodeId>,
}

/// One resident document and its incremental bookkeeping.
#[derive(Debug)]
struct Resident<V> {
    /// The document's snapshot frame, still undecoded: snapshot load keeps
    /// the checksum-verified bytes and defers per-node tree construction to
    /// the first access (`Some` until then, `None` once materialized). This
    /// is what makes `open` O(bytes) instead of O(nodes) — a restart over a
    /// large corpus costs one bulk read plus checksums, and documents that
    /// are never touched again are never decoded (their frames also pass
    /// through the next checkpoint verbatim).
    frame: Option<Vec<u8>>,
    /// The document (a 1-node placeholder while `frame` is `Some`).
    tree: XmlTree,
    /// Lazily built preorder-rank → node map; `None` after structural edits.
    preorder: Option<Vec<NodeId>>,
    /// Nodes touched since the last [`DocStore::validate`] call.
    dirty: BTreeSet<NodeId>,
    /// Nodes currently failing their node-local check (valid baseline only
    /// when `validated`).
    violations: BTreeSet<NodeId>,
    /// Has a full-scan validation baseline been established since load?
    validated: bool,
    /// Upper bound on the document's binary-encoded size: exact after a
    /// `put`, load or checkpoint (the frame was in hand), then grown by a
    /// conservative per-edit bound. Guards the [`MAX_DOCUMENT_BYTES`]
    /// admission check without re-encoding on every edit.
    encoded_bytes: usize,
    /// Version counter + version-tagged result cache.
    cache: DocResultCache<V>,
}

impl<V> Resident<V> {
    fn new(tree: XmlTree, version: u64, encoded_bytes: usize) -> Resident<V> {
        Resident {
            frame: None,
            tree,
            preorder: None,
            dirty: BTreeSet::new(),
            violations: BTreeSet::new(),
            validated: false,
            encoded_bytes,
            cache: DocResultCache::new(version),
        }
    }

    fn from_frame(frame: Vec<u8>, version: u64) -> Resident<V> {
        let encoded_bytes = frame.len();
        Resident {
            frame: Some(frame),
            tree: XmlTree::new("pending"),
            preorder: None,
            dirty: BTreeSet::new(),
            violations: BTreeSet::new(),
            validated: false,
            encoded_bytes,
            cache: DocResultCache::new(version),
        }
    }

    /// Decode the pending snapshot frame, if any. The frame's checksum was
    /// verified at load, so a decode failure means the bytes were written
    /// wrong in the first place (or the codec regressed) — the document is
    /// reported as [`StoreError::Corrupt`] rather than silently replaced by
    /// an empty tree. The frame is kept, so the error is stable across
    /// calls and the document still passes through checkpoints verbatim.
    fn materialize(&mut self, key: DocKey) -> Result<(), StoreError> {
        if let Some(frame) = self.frame.take() {
            match decode_tree(&frame) {
                Ok(tree) => self.tree = tree,
                Err(e) => {
                    let err = StoreError::Corrupt {
                        context: format!("snapshot frame for document {key} does not decode: {e}"),
                    };
                    self.frame = Some(frame);
                    return Err(err);
                }
            }
        }
        Ok(())
    }

    fn version(&self) -> u64 {
        self.cache.version()
    }
}

/// Conservative upper bound on how many bytes one edit can add to a
/// document's binary encoding ([`xdx_xmltree::binary`] layout: 10 bytes of
/// node header + a possible `4 + len` interner entry per fresh label;
/// `4 + 1 + (4 + len | 8)` per attribute plus a possible interner entry
/// for the name; removals never grow the frame).
fn edit_growth_bound(edit: &DocEdit) -> usize {
    match edit {
        DocEdit::InsertChild { label, .. } => 16 + label.as_str().len(),
        DocEdit::SetAttr { name, value, .. } => {
            let value_bytes = match value {
                Value::Const(s) => s.len(),
                Value::Null(_) => 8,
            };
            24 + name.as_str().len() + value_bytes
        }
        DocEdit::RemoveChild { .. } | DocEdit::RemoveAttr { .. } => 0,
    }
}

/// Durability and recovery timings the store records about itself —
/// latency histograms for the I/O it performs and one-shot recovery facts
/// from `open`. Exposed by [`DocStore::metrics`]; histogram snapshots are
/// what the serving layer exports as `store.fsync` / `store.checkpoint`
/// Stats-v2 rows.
#[derive(Debug)]
pub struct StoreMetrics {
    /// Latency of each data-`fsync` the WAL performed (shared with the
    /// [`Wal`], which records into it at the `sync_data` call site).
    pub fsync: Arc<Histogram>,
    /// Wall time of each successful [`DocStore::checkpoint`] (WAL sync +
    /// snapshot write + WAL reset). Failed checkpoints are not recorded.
    pub checkpoint: Histogram,
    /// Wall time of WAL replay inside [`DocStore::open`] (reading, decoding
    /// and re-applying the post-snapshot records), nanoseconds. One value
    /// per process lifetime.
    pub replay_ns: u64,
    /// WAL records re-applied by that replay (records at or below the
    /// snapshot sequence are skipped and not counted).
    pub replayed_records: u64,
}

impl StoreMetrics {
    fn new() -> StoreMetrics {
        StoreMetrics {
            fsync: Arc::new(Histogram::new()),
            checkpoint: Histogram::new(),
            replay_ns: 0,
            replayed_records: 0,
        }
    }
}

/// The resident document store (see the module docs). Generic over the
/// cached result type `V` — the store never interprets cached values, it
/// only version-tags and invalidates them.
#[derive(Debug)]
pub struct DocStore<V = ()> {
    config: StoreConfig,
    wal: Wal,
    docs: BTreeMap<DocKey, Resident<V>>,
    /// Store-wide mutation sequence: the version stamp of the most recent
    /// acknowledged mutation (0 for a fresh store). Strictly increasing
    /// across puts, edits *and* deletes, so no version value is ever
    /// reused — see the module docs.
    seq: u64,
    /// `Some(reason)` once the store has entered sticky degraded read-only
    /// mode (see [`StoreError::Degraded`]); never cleared in-process.
    degraded: Option<String>,
    /// Mutations rejected by a *rolled-back* WAL append (disk stayed
    /// consistent, the store stayed healthy) — an observability counter.
    wal_rollbacks: u64,
    /// Self-recorded durability/recovery timings (see [`StoreMetrics`]).
    metrics: StoreMetrics,
    /// Exclusive advisory lock on [`LOCK_FILE`]; held (by the open file
    /// handle) for the store's lifetime, released on drop.
    _lock: std::fs::File,
}

/// Take the exclusive advisory lock on `dir`, or fail with
/// [`StoreError::Locked`] if another process holds it.
fn lock_dir(dir: &std::path::Path) -> Result<std::fs::File, StoreError> {
    let file = std::fs::OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(false)
        .open(dir.join(LOCK_FILE))?;
    match file.try_lock() {
        Ok(()) => Ok(file),
        Err(std::fs::TryLockError::WouldBlock) => Err(StoreError::Locked {
            dir: dir.to_path_buf(),
        }),
        Err(std::fs::TryLockError::Error(e)) => Err(e.into()),
    }
}

impl<V> DocStore<V> {
    /// Open (or create) the store in `config.dir`: take the directory
    /// lock, load the snapshot, replay the WAL, truncate any torn tail.
    pub fn open(config: StoreConfig) -> Result<DocStore<V>, StoreError> {
        config.vfs.create_dir_all(&config.dir)?;
        let lock = lock_dir(&config.dir)?;
        let snapshot_path = config.dir.join(SNAPSHOT_FILE);
        // A leftover tmp is a checkpoint that died before its rename; the
        // named snapshot is still the authoritative previous state.
        let _ = config.vfs.remove_file(&snapshot_path.with_extension("tmp"));
        let snapshot = load_snapshot(config.vfs.as_ref(), &snapshot_path)?;
        let mut seq = snapshot.seq;
        let mut docs: BTreeMap<DocKey, Resident<V>> = BTreeMap::new();
        for doc in snapshot.docs {
            // Checksums verified; trees materialize on first access.
            seq = seq.max(doc.version);
            docs.insert(doc.key, Resident::from_frame(doc.frame, doc.version));
        }
        let mut metrics = StoreMetrics::new();
        let replay_start = Instant::now();
        let (mut wal, records) =
            Wal::open(config.vfs.as_ref(), &config.dir.join(WAL_FILE), config.sync)?;
        for rec in records {
            // Records at or below the snapshot's sequence are already
            // reflected in it (a checkpoint that crashed before its WAL
            // reset, or a reset whose truncation did not persist). The
            // comparison is against the *global* checkpoint sequence, not
            // any per-document version: after a delete + re-put of the
            // same id, a stale edit record of the predecessor can carry a
            // higher version than the re-put document, and a per-document
            // test would wrongly replay it.
            if rec.version <= snapshot.seq {
                continue;
            }
            seq = seq.max(rec.version);
            Self::replay_record(&mut docs, rec)?;
            metrics.replayed_records += 1;
        }
        metrics.replay_ns = u64::try_from(replay_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        wal.set_fsync_histogram(Arc::clone(&metrics.fsync));
        Ok(DocStore {
            config,
            wal,
            docs,
            seq,
            degraded: None,
            wal_rollbacks: 0,
            metrics,
            _lock: lock,
        })
    }

    /// Reject the call if the store is degraded (mutations only; reads and
    /// pure-compute operations keep serving).
    fn check_writable(&self) -> Result<(), StoreError> {
        match &self.degraded {
            Some(reason) => Err(StoreError::Degraded {
                reason: reason.clone(),
            }),
            None => Ok(()),
        }
    }

    /// Enter sticky degraded read-only mode and return the error to hand
    /// the caller. Idempotent in effect: the first reason wins.
    fn degrade(&mut self, context: &str, e: std::io::Error) -> StoreError {
        let reason = format!("{context}: {e}");
        if self.degraded.is_none() {
            self.degraded = Some(reason.clone());
        }
        StoreError::Degraded { reason }
    }

    /// Map a WAL append failure per the failure-semantics table: a rolled-
    /// back append rejects only this operation (the store stays healthy); a
    /// broken log degrades the store.
    fn wal_failure(&mut self, context: &str, e: WalError) -> StoreError {
        match e {
            WalError::RolledBack(e) => {
                self.wal_rollbacks += 1;
                StoreError::Io(e)
            }
            WalError::Broken(e) => self.degrade(context, e),
        }
    }

    fn replay_record(
        docs: &mut BTreeMap<DocKey, Resident<V>>,
        rec: WalRecord,
    ) -> Result<(), StoreError> {
        match rec.op {
            WalOp::Put(frame) => {
                let tree = decode_tree(&frame).map_err(|e| StoreError::Corrupt {
                    context: format!("WAL put of document {} does not decode: {e}", rec.key),
                })?;
                docs.insert(rec.key, Resident::new(tree, rec.version, frame.len()));
            }
            WalOp::Edit(edits) => {
                let r = docs.get_mut(&rec.key).ok_or_else(|| StoreError::Corrupt {
                    context: format!("WAL edit of unknown document {}", rec.key),
                })?;
                r.materialize(rec.key)?;
                apply_edits(&mut r.tree, &mut r.preorder, &edits).map_err(|e| {
                    StoreError::Corrupt {
                        context: format!("WAL edit of document {} does not apply: {e}", rec.key),
                    }
                })?;
                let growth: usize = edits.iter().map(edit_growth_bound).sum();
                r.encoded_bytes = r.encoded_bytes.saturating_add(growth);
                r.cache.set_version(rec.version);
            }
            WalOp::Delete => {
                docs.remove(&rec.key);
            }
        }
        Ok(())
    }

    /// Store (or replace) a whole document. Returns the new version (the
    /// advanced store-wide sequence — monotone, but not dense per key).
    pub fn put(&mut self, key: impl Into<DocKey>, tree: XmlTree) -> Result<u64, StoreError> {
        let key = key.into();
        self.check_writable()?;
        if !self.docs.contains_key(&key) && self.docs.len() >= self.config.max_resident_docs {
            return Err(StoreError::StoreFull {
                limit: self.config.max_resident_docs,
            });
        }
        let frame = encode_tree(&tree);
        if frame.len() > MAX_DOCUMENT_BYTES {
            return Err(StoreError::DocTooLarge {
                key,
                bytes: frame.len(),
                limit: MAX_DOCUMENT_BYTES,
            });
        }
        let encoded_bytes = frame.len();
        let version = self.seq + 1;
        if let Err(e) = self.wal.append(&WalRecord {
            key,
            version,
            op: WalOp::Put(frame),
        }) {
            // Nothing was inserted yet: memory matches acknowledged
            // history in both outcomes.
            return Err(self.wal_failure("WAL append (put)", e));
        }
        self.seq = version;
        self.docs
            .insert(key, Resident::new(tree, version, encoded_bytes));
        Ok(version)
    }

    /// The document and its current version. Takes `&mut self` because a
    /// lazily loaded document materializes (decodes its snapshot frame) on
    /// first access — which is also the only error path
    /// ([`StoreError::UnknownDoc`] aside).
    pub fn get(&mut self, key: impl Into<DocKey>) -> Result<(&XmlTree, u64), StoreError> {
        let key = key.into();
        let r = self
            .docs
            .get_mut(&key)
            .ok_or(StoreError::UnknownDoc { key })?;
        r.materialize(key)?;
        Ok((&r.tree, r.version()))
    }

    /// The document's current version.
    pub fn version(&self, key: impl Into<DocKey>) -> Option<u64> {
        self.docs.get(&key.into()).map(|r| r.version())
    }

    /// Apply an edit batch. `base_version` is an optimistic-concurrency
    /// check: the batch is rejected with [`StoreError::VersionConflict`]
    /// unless it equals the document's current version; pass `0` to skip
    /// the check (last-writer-wins). An empty batch is a no-op that leaves
    /// the version unchanged.
    pub fn edit(
        &mut self,
        key: impl Into<DocKey>,
        base_version: u64,
        edits: &[DocEdit],
    ) -> Result<EditReceipt, StoreError> {
        let key = key.into();
        self.check_writable()?;
        let r = self
            .docs
            .get_mut(&key)
            .ok_or(StoreError::UnknownDoc { key })?;
        r.materialize(key)?;
        let current = r.version();
        if base_version != 0 && base_version != current {
            return Err(StoreError::VersionConflict {
                key,
                expected: base_version,
                actual: current,
            });
        }
        if edits.is_empty() {
            return Ok(EditReceipt {
                version: current,
                dirty: Vec::new(),
            });
        }
        // Size guard, against a conservative growth bound: a document that
        // encodes past MAX_DOCUMENT_BYTES would checkpoint fine but hit the
        // decoder cap on the restart after — a persistent crash loop. The
        // bound only resets to the exact size when a frame is in hand
        // (put/load/checkpoint), so long edit churn may reject early; a
        // checkpoint re-admits.
        let growth: usize = edits.iter().map(edit_growth_bound).sum();
        let bound = r.encoded_bytes.saturating_add(growth);
        if bound > MAX_DOCUMENT_BYTES {
            return Err(StoreError::DocTooLarge {
                key,
                bytes: bound,
                limit: MAX_DOCUMENT_BYTES,
            });
        }
        // Applying *is* the validation (all-or-nothing); only an applied
        // batch reaches the WAL, so replay can never fail on a record the
        // running store accepted. If the append itself fails, the batch is
        // rolled back so memory never diverges from the log.
        let applied = apply_edits(&mut r.tree, &mut r.preorder, edits)?;
        let version = self.seq + 1;
        if let Err(e) = self.wal.append(&WalRecord {
            key,
            version,
            op: WalOp::Edit(edits.to_vec()),
        }) {
            // Whatever the log's fate, the batch rolls back in memory so
            // reads keep serving exactly the acknowledged history.
            applied.rollback(&mut r.tree);
            r.preorder = None;
            return Err(self.wal_failure("WAL append (edit)", e));
        }
        self.seq = version;
        r.encoded_bytes = bound;
        r.cache.set_version(version);
        // Merge the batch's dirty set *before* stripping detached subtrees:
        // a node inserted and then detached within one batch is in both
        // lists, and only this order drops it. (`validate`'s reachability
        // check only sees the detached *root*'s cleared parent link — a
        // node deeper in a detached subtree still has its parent pointer,
        // so leaving it dirty would fabricate violations on nodes the
        // document no longer contains.)
        r.dirty.extend(applied.dirty.iter().copied());
        for &root in &applied.detached {
            for n in r.tree.descendants_or_self(root) {
                r.dirty.remove(&n);
                r.violations.remove(&n);
            }
        }
        Ok(EditReceipt {
            version,
            dirty: applied.dirty,
        })
    }

    /// Delete a document. Advances the store-wide sequence, so a later
    /// re-put of the same key gets a version above every version the
    /// predecessor ever had.
    pub fn delete(&mut self, key: impl Into<DocKey>) -> Result<(), StoreError> {
        let key = key.into();
        self.check_writable()?;
        if !self.docs.contains_key(&key) {
            return Err(StoreError::UnknownDoc { key });
        }
        let version = self.seq + 1;
        if let Err(e) = self.wal.append(&WalRecord {
            key,
            version,
            op: WalOp::Delete,
        }) {
            return Err(self.wal_failure("WAL append (delete)", e));
        }
        self.seq = version;
        self.docs.remove(&key);
        Ok(())
    }

    /// Does the document conform to `dtd` (ordered conformance, the check
    /// source documents must pass)?
    ///
    /// The first call after load scans the whole document and establishes
    /// the violation baseline; every later call re-checks **only the nodes
    /// dirtied since the previous call** — `O(dirty)`, not `O(document)`.
    /// The baseline is only meaningful against one fixed DTD: each setting
    /// binding pins one source DTD, so the store does not fingerprint the
    /// DTD — a setting *rebind* must call [`DocStore::invalidate_setting`]
    /// to discard the stale baselines (pass a mismatched DTD without that
    /// and the stale baseline is yours to keep).
    pub fn validate(
        &mut self,
        key: impl Into<DocKey>,
        dtd: &CompiledDtd,
    ) -> Result<bool, StoreError> {
        let key = key.into();
        let r = self
            .docs
            .get_mut(&key)
            .ok_or(StoreError::UnknownDoc { key })?;
        r.materialize(key)?;
        if !r.validated {
            r.violations.clear();
            let root = r.tree.root();
            for n in r.tree.preorder() {
                if !node_conforms(dtd, &r.tree, n, n == root) {
                    r.violations.insert(n);
                }
            }
            r.validated = true;
            r.dirty.clear();
        } else {
            let root = r.tree.root();
            let dirty = std::mem::take(&mut r.dirty);
            for n in dirty {
                // A dirtied node may since have been detached (removed in a
                // later batch); it no longer counts.
                let reachable = n == root || r.tree.parent(n).is_some();
                if reachable && !node_conforms(dtd, &r.tree, n, n == root) {
                    r.violations.insert(n);
                } else {
                    r.violations.remove(&n);
                }
            }
        }
        Ok(r.violations.is_empty())
    }

    /// The nodes dirtied since the last [`DocStore::validate`] — the seed
    /// set for [`xdx_core::CompiledSetting::chase_incremental`].
    pub fn dirty_nodes(&self, key: impl Into<DocKey>) -> Option<impl Iterator<Item = NodeId> + '_> {
        self.docs.get(&key.into()).map(|r| r.dirty.iter().copied())
    }

    /// The document's version-tagged result cache.
    pub fn result_cache(&mut self, key: impl Into<DocKey>) -> Option<&mut DocResultCache<V>> {
        self.docs.get_mut(&key.into()).map(|r| &mut r.cache)
    }

    /// Discard every *derived* artifact of `setting`'s resident documents —
    /// cached results, validation baselines, dirty bookkeeping — while
    /// keeping the documents (and their versions) themselves. This is what
    /// a setting **rebind** calls: cached answers and violation baselines
    /// were computed against the old setting's DTDs and patterns, but the
    /// documents are tenant data that must survive a setting upload (and a
    /// compiled-setting eviction must cost nothing here at all). The next
    /// `validate` per document is a full scan. Returns how many documents
    /// were invalidated.
    pub fn invalidate_setting(&mut self, setting: u64) -> usize {
        let mut n = 0;
        for (_, r) in self
            .docs
            .range_mut(DocKey::setting_min(setting)..=DocKey::setting_max(setting))
        {
            r.cache.clear();
            r.validated = false;
            r.dirty.clear();
            r.violations.clear();
            n += 1;
        }
        n
    }

    /// Write a snapshot of every resident document (atomically), recording
    /// the store-wide sequence in its footer, then reset the WAL. Also
    /// refreshes each materialized document's exact encoded size (the
    /// frames are in hand anyway) and compacts the arena of documents whose
    /// detached-slot garbage exceeds their live size (which resets their
    /// validation baseline — the next `validate` is a full scan).
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        self.check_writable()?;
        let checkpoint_start = Instant::now();
        // Never retry a failed fsync: if the WAL's tail cannot be made
        // durable, no snapshot may supersede it either.
        if let Err(e) = self.wal.sync() {
            return Err(self.degrade("WAL fsync at checkpoint", e));
        }
        // Encode every materialized document once up front: the frames are
        // the snapshot payload, the refreshed exact `encoded_bytes`, and
        // the compaction source below.
        let frames: BTreeMap<DocKey, Vec<u8>> = self
            .docs
            .iter()
            .filter(|(_, r)| r.frame.is_none())
            .map(|(&key, r)| (key, encode_tree(&r.tree)))
            .collect();
        if let Err(e) = write_snapshot(
            self.config.vfs.as_ref(),
            &self.config.dir.join(SNAPSHOT_FILE),
            self.seq,
            self.docs.iter().map(|(&key, r)| {
                // A still-undecoded document's frame is byte-identical to
                // the document; copy it through instead of decode+re-encode.
                let source = match &r.frame {
                    Some(frame) => SnapshotSource::Frame(frame),
                    None => SnapshotSource::Frame(&frames[&key]),
                };
                (key, r.version(), source)
            }),
        ) {
            return Err(match e {
                // The old snapshot (plus the intact WAL) is still the
                // authoritative durable state: the checkpoint just did not
                // happen, the store stays healthy.
                SnapshotWriteError::Abandoned(e) => StoreError::Io(e),
                SnapshotWriteError::SyncFailed(e) => self.degrade("snapshot fsync", e),
            });
        }
        if let Err(e) = self.wal.reset() {
            // The new snapshot is durable, so the stale WAL records would
            // be skipped on replay — but the log's own state is now
            // unknown, and further appends to it could not be trusted.
            return Err(self.degrade("WAL reset after checkpoint", e));
        }
        for (&key, r) in self.docs.iter_mut() {
            let Some(frame) = frames.get(&key) else {
                continue;
            };
            r.encoded_bytes = frame.len();
            if r.tree.arena_len() > 2 * r.tree.size() {
                r.tree = decode_tree(frame).expect("own encoding always decodes");
                r.preorder = None;
                r.dirty.clear();
                r.violations.clear();
                r.validated = false;
            }
        }
        self.metrics
            .checkpoint
            .record_duration(checkpoint_start.elapsed());
        Ok(())
    }

    /// Force the WAL to stable storage (for batched [`SyncPolicy`]s). A
    /// failure degrades the store: the unsynced tail's durability is
    /// unknown and a failed fsync is never retried.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.check_writable()?;
        if let Err(e) = self.wal.sync() {
            return Err(self.degrade("WAL fsync", e));
        }
        Ok(())
    }

    /// Resident document keys, ascending by `(setting, doc)`.
    pub fn doc_ids(&self) -> impl Iterator<Item = DocKey> + '_ {
        self.docs.keys().copied()
    }

    /// The document ids resident in `setting`, ascending.
    pub fn docs_in_setting(&self, setting: u64) -> impl Iterator<Item = u64> + '_ {
        self.docs
            .range(DocKey::setting_min(setting)..=DocKey::setting_max(setting))
            .map(|(k, _)| k.doc)
    }

    /// Number of resident documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Current WAL length in bytes (a checkpointing heuristic for callers).
    pub fn wal_len(&self) -> u64 {
        self.wal.len()
    }

    /// The store-wide mutation sequence (the version stamp of the most
    /// recent acknowledged mutation; 0 for a fresh store).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Why the store is in sticky degraded read-only mode, if it is.
    pub fn degraded_reason(&self) -> Option<&str> {
        self.degraded.as_deref()
    }

    /// Is the store in sticky degraded read-only mode?
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }

    /// How many mutations were rejected by a rolled-back WAL append (the
    /// store stayed healthy each time).
    pub fn wal_rollbacks(&self) -> u64 {
        self.wal_rollbacks
    }

    /// Total nodes across every resident document's dirty set — the
    /// backlog the next round of incremental validations will re-check.
    pub fn dirty_total(&self) -> usize {
        self.docs.values().map(|r| r.dirty.len()).sum()
    }

    /// The store's self-recorded durability/recovery timings.
    pub fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    /// Approximate bytes of resident document state: undecoded snapshot
    /// frames at their exact length, materialized trees via
    /// [`XmlTree::approx_heap_bytes`]. An observability gauge (recomputed
    /// per call, `O(resident nodes)`), not an allocator measurement.
    pub fn resident_tree_bytes(&self) -> u64 {
        self.docs
            .values()
            .map(|r| match &r.frame {
                Some(frame) => frame.len() as u64,
                None => r.tree.approx_heap_bytes() as u64,
            })
            .sum()
    }
}

/// The node-local conformance check: label declared (and the root's label
/// equal to the DTD's root), attribute set exactly the declared one, child
/// word in the content model. A document conforms iff every node passes —
/// which is what lets validation re-check only dirtied nodes.
fn node_conforms(dtd: &CompiledDtd, tree: &XmlTree, node: NodeId, is_root: bool) -> bool {
    let Some(sym) = dtd.sym(tree.label(node)) else {
        return false;
    };
    if is_root && sym != dtd.root_sym() {
        return false;
    }
    let allowed = dtd.attrs(sym);
    let attrs = tree.attrs(node);
    if attrs.len() != allowed.len() || !attrs.keys().zip(allowed).all(|(a, b)| a == b) {
        return false;
    }
    let mut syms = Vec::with_capacity(tree.children(node).len());
    for &c in tree.children(node) {
        match dtd.sym(tree.label(c)) {
            Some(s) => syms.push(s),
            None => return false,
        }
    }
    dtd.matches_children(sym, &syms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit::DocEdit;
    use std::path::Path;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use xdx_xmltree::{parse_tree, tree_to_text, Dtd};

    static DIRS: AtomicUsize = AtomicUsize::new(0);

    fn fresh_dir(tag: &str) -> PathBuf {
        let n = DIRS.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("xdx-store-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cleanup(dir: &Path) {
        let _ = std::fs::remove_dir_all(dir);
    }

    fn config(dir: &Path) -> StoreConfig {
        StoreConfig {
            sync: SyncPolicy::Never,
            max_resident_docs: 8,
            ..StoreConfig::new(dir)
        }
    }

    fn open(dir: &Path) -> DocStore {
        DocStore::open(config(dir)).unwrap()
    }

    fn book_dtd() -> Dtd {
        Dtd::builder("db")
            .rule("db", "book*")
            .rule("book", "author*")
            .attributes("book", ["@title"])
            .attributes("author", ["@name"])
            .build()
            .unwrap()
    }

    fn sample() -> XmlTree {
        parse_tree("db[book(@title=\"CO\")[author(@name=\"P\")]]").unwrap()
    }

    #[test]
    fn put_edit_delete_survive_restart() {
        let dir = fresh_dir("crud");
        let mut s = open(&dir);
        // Versions come from the store-wide sequence: every mutation
        // (any document) advances it.
        assert_eq!(s.put(1, sample()).unwrap(), 1);
        assert_eq!(s.put(2, XmlTree::new("db")).unwrap(), 2);
        let receipt = s
            .edit(
                1,
                1,
                &[DocEdit::SetAttr {
                    node: 1,
                    name: "@title".into(),
                    value: "New".into(),
                }],
            )
            .unwrap();
        assert_eq!(receipt.version, 3);
        s.delete(2).unwrap();
        assert_eq!(s.seq(), 4);
        drop(s);

        let mut s = open(&dir);
        assert_eq!(s.len(), 1);
        assert_eq!(s.seq(), 4, "sequence recovered from the WAL");
        let (tree, version) = s.get(1).unwrap();
        assert_eq!(version, 3);
        assert_eq!(
            tree_to_text(tree),
            "db[book(@title=\"New\")[author(@name=\"P\")]]"
        );
        assert!(s.get(2).is_err());
        cleanup(&dir);
    }

    #[test]
    fn version_conflicts_are_rejected() {
        let dir = fresh_dir("cas");
        let mut s = open(&dir);
        s.put(1, sample()).unwrap();
        let stale = &[DocEdit::RemoveChild { parent: 0, at: 0 }];
        let err = s.edit(1, 7, stale).unwrap_err();
        assert!(matches!(
            err,
            StoreError::VersionConflict {
                expected: 7,
                actual: 1,
                ..
            }
        ));
        // base_version 0 skips the check.
        s.edit(1, 0, stale).unwrap();
        assert_eq!(s.version(1), Some(2));
        cleanup(&dir);
    }

    #[test]
    fn bad_edits_leave_no_wal_trace() {
        let dir = fresh_dir("atomic");
        let mut s = open(&dir);
        s.put(1, sample()).unwrap();
        let before = tree_to_text(s.get(1).unwrap().0);
        let err = s
            .edit(
                1,
                0,
                &[
                    DocEdit::SetAttr {
                        node: 0,
                        name: "@x".into(),
                        value: "v".into(),
                    },
                    DocEdit::RemoveChild { parent: 0, at: 9 },
                ],
            )
            .unwrap_err();
        assert!(matches!(err, StoreError::BadEdit(_)));
        assert_eq!(s.version(1), Some(1), "version unchanged");
        assert_eq!(tree_to_text(s.get(1).unwrap().0), before);
        drop(s);
        let mut s = open(&dir);
        assert_eq!(tree_to_text(s.get(1).unwrap().0), before, "nothing logged");
        cleanup(&dir);
    }

    #[test]
    fn validation_is_incremental_and_tracks_edits() {
        let dir = fresh_dir("validate");
        let dtd = book_dtd();
        let dtd = dtd.compiled();
        let mut s = open(&dir);
        s.put(1, sample()).unwrap();
        assert!(s.validate(1, dtd).unwrap());
        // Remove @title: the book violates.
        s.edit(
            1,
            0,
            &[DocEdit::RemoveAttr {
                node: 1,
                name: "@title".into(),
            }],
        )
        .unwrap();
        assert!(!s.validate(1, dtd).unwrap());
        // Restore it: valid again, via a one-node recheck.
        s.edit(
            1,
            0,
            &[DocEdit::SetAttr {
                node: 1,
                name: "@title".into(),
                value: "CO".into(),
            }],
        )
        .unwrap();
        assert!(s.validate(1, dtd).unwrap());
        // An undeclared child label breaks the parent's word.
        s.edit(
            1,
            0,
            &[DocEdit::InsertChild {
                parent: 0,
                at: 0,
                label: "pamphlet".into(),
            }],
        )
        .unwrap();
        assert!(!s.validate(1, dtd).unwrap());
        // Removing it heals the document (and the violating subtree's
        // bookkeeping goes with it).
        s.edit(1, 0, &[DocEdit::RemoveChild { parent: 0, at: 0 }])
            .unwrap();
        assert!(s.validate(1, dtd).unwrap());
        cleanup(&dir);
    }

    #[test]
    fn checkpoint_truncates_the_wal_and_restart_agrees() {
        let dir = fresh_dir("checkpoint");
        let mut s = open(&dir);
        s.put(1, sample()).unwrap();
        for i in 0..10u32 {
            s.edit(
                1,
                0,
                &[DocEdit::SetAttr {
                    node: 0,
                    name: "@rev".into(),
                    value: format!("{i}").into(),
                }],
            )
            .unwrap();
        }
        assert!(s.wal_len() > 0);
        s.checkpoint().unwrap();
        assert_eq!(s.wal_len(), 0);
        let after = tree_to_text(s.get(1).unwrap().0);
        let version = s.version(1).unwrap();
        drop(s);
        let mut s = open(&dir);
        assert_eq!(tree_to_text(s.get(1).unwrap().0), after);
        assert_eq!(s.version(1), Some(version));
        cleanup(&dir);
    }

    #[test]
    fn stale_wal_records_after_a_checkpoint_snapshot_are_skipped() {
        // Simulate a crash between snapshot rename and WAL reset: write the
        // snapshot at the current state but leave the full WAL in place.
        let dir = fresh_dir("stale");
        let mut s = open(&dir);
        s.put(1, sample()).unwrap();
        s.edit(
            1,
            0,
            &[DocEdit::SetAttr {
                node: 0,
                name: "@rev".into(),
                value: "x".into(),
            }],
        )
        .unwrap();
        let text = tree_to_text(s.get(1).unwrap().0);
        write_snapshot(
            &RealVfs,
            &dir.join(SNAPSHOT_FILE),
            s.seq,
            s.docs
                .iter()
                .map(|(&key, r)| (key, r.version(), SnapshotSource::Tree(&r.tree))),
        )
        .unwrap();
        drop(s); // WAL still holds put@1 + edit@2

        let mut s = open(&dir);
        assert_eq!(s.version(1), Some(2), "replay skipped both stale records");
        assert_eq!(tree_to_text(s.get(1).unwrap().0), text);
        cleanup(&dir);
    }

    #[test]
    fn stale_wal_after_a_delete_and_reput_checkpoint_crash_is_skipped() {
        // The regression the global sequence exists for: put, edit, delete,
        // re-put, then a crash between snapshot rename and WAL reset. The
        // stale edit record targets a node the re-put document does not
        // have; a per-document version comparison would replay it (the
        // re-put "restarts" below the stale edit's version) and refuse to
        // open. The global rule skips everything at or below the footer
        // sequence.
        let dir = fresh_dir("stale-reput");
        let mut s = open(&dir);
        s.put(1, sample()).unwrap(); // seq 1
        s.edit(
            1,
            0,
            &[DocEdit::SetAttr {
                node: 1,
                name: "@title".into(),
                value: "A".into(),
            }],
        )
        .unwrap(); // seq 2
        s.delete(1).unwrap(); // seq 3
        assert_eq!(s.put(1, XmlTree::new("db")).unwrap(), 4);
        let text = tree_to_text(s.get(1).unwrap().0);
        write_snapshot(
            &RealVfs,
            &dir.join(SNAPSHOT_FILE),
            s.seq,
            s.docs
                .iter()
                .map(|(&key, r)| (key, r.version(), SnapshotSource::Tree(&r.tree))),
        )
        .unwrap();
        drop(s); // WAL still holds all four records

        let mut s = open(&dir);
        assert_eq!(s.version(1), Some(4), "the re-put document survived");
        assert_eq!(s.seq(), 4);
        assert_eq!(tree_to_text(s.get(1).unwrap().0), text);
        cleanup(&dir);
    }

    #[test]
    fn base_versions_are_aba_proof_across_delete_and_reput() {
        let dir = fresh_dir("aba");
        let mut s = open(&dir);
        let attr = [DocEdit::SetAttr {
            node: 0,
            name: "@rev".into(),
            value: "x".into(),
        }];
        let v1 = s.put(1, sample()).unwrap();
        s.delete(1).unwrap();
        let v2 = s.put(1, sample()).unwrap();
        assert!(
            v2 > v1,
            "a re-put version is above every version its predecessor had"
        );
        let err = s.edit(1, v1, &attr).unwrap_err();
        assert!(
            matches!(err, StoreError::VersionConflict { .. }),
            "an edit pinned to the predecessor must not apply: {err}"
        );
        s.edit(1, v2, &attr).unwrap();
        cleanup(&dir);
    }

    #[test]
    fn the_store_directory_is_exclusively_locked() {
        let dir = fresh_dir("lock");
        let s = open(&dir);
        let err = DocStore::<()>::open(config(&dir)).unwrap_err();
        assert!(matches!(err, StoreError::Locked { .. }), "{err}");
        drop(s); // the lock is released with the store
        drop(open(&dir));
        cleanup(&dir);
    }

    #[test]
    fn edits_that_could_exceed_the_document_cap_are_rejected() {
        let dir = fresh_dir("toolarge");
        let mut s = open(&dir);
        s.put(1, sample()).unwrap();
        // Pretend the document is one insert away from the codec cap.
        s.docs.get_mut(&DocKey::from(1)).unwrap().encoded_bytes = MAX_DOCUMENT_BYTES - 4;
        let grow = [DocEdit::InsertChild {
            parent: 0,
            at: 0,
            label: "book".into(),
        }];
        let err = s.edit(1, 0, &grow).unwrap_err();
        assert!(matches!(err, StoreError::DocTooLarge { .. }), "{err}");
        assert_eq!(s.version(1), Some(1), "rejected before anything applied");
        // A checkpoint refreshes the exact encoded size and re-admits.
        s.checkpoint().unwrap();
        s.edit(1, 0, &grow).unwrap();
        cleanup(&dir);
    }

    #[test]
    fn edit_growth_bounds_dominate_real_encoding_growth() {
        use xdx_xmltree::NullId;
        let batches: Vec<Vec<DocEdit>> = vec![
            vec![DocEdit::InsertChild {
                parent: 0,
                at: 0,
                label: "chapter-with-a-longish-label".into(),
            }],
            vec![DocEdit::SetAttr {
                node: 0,
                name: "@summary".into(),
                value: "a constant value of some length".into(),
            }],
            vec![DocEdit::SetAttr {
                node: 1,
                name: "@title".into(),
                value: Value::Null(NullId(7)),
            }],
            vec![
                DocEdit::InsertChild {
                    parent: 0,
                    at: 0,
                    label: "book".into(),
                },
                DocEdit::SetAttr {
                    node: 1,
                    name: "@title".into(),
                    value: "t".into(),
                },
                DocEdit::RemoveChild { parent: 0, at: 1 },
            ],
        ];
        let mut tree = sample();
        for batch in &batches {
            let before = encode_tree(&tree).len();
            let bound: usize = batch.iter().map(edit_growth_bound).sum();
            apply_edits(&mut tree, &mut None, batch).unwrap();
            let after = encode_tree(&tree).len();
            assert!(
                after <= before + bound,
                "encoding grew {} > bound {bound}",
                after - before
            );
        }
    }

    #[test]
    fn undecodable_snapshot_frames_surface_as_corrupt_not_panic() {
        let dir = fresh_dir("badframe");
        std::fs::create_dir_all(&dir).unwrap();
        // A frame that passes the snapshot checksum but is not a document.
        write_snapshot(
            &RealVfs,
            &dir.join(SNAPSHOT_FILE),
            1,
            [(DocKey::from(1), 1u64, SnapshotSource::Frame(b"not a frame"))].into_iter(),
        )
        .unwrap();
        let mut s = open(&dir);
        let err = s.get(1).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        assert!(s.get(1).is_err(), "stable across calls");
        // The bad frame still checkpoints verbatim; nothing is invented.
        s.checkpoint().unwrap();
        drop(s);
        let mut s = open(&dir);
        assert!(matches!(s.get(1).unwrap_err(), StoreError::Corrupt { .. }));
        cleanup(&dir);
    }

    #[test]
    fn admission_cap_applies_to_new_documents_only() {
        let dir = fresh_dir("cap");
        let mut s = DocStore::<()>::open(StoreConfig {
            max_resident_docs: 2,
            ..config(&dir)
        })
        .unwrap();
        s.put(1, XmlTree::new("db")).unwrap();
        s.put(2, XmlTree::new("db")).unwrap();
        assert!(matches!(
            s.put(3, XmlTree::new("db")),
            Err(StoreError::StoreFull { limit: 2 })
        ));
        // Replacing a resident document is fine at the cap. (The rejected
        // put did not advance the sequence; this one is the third mutation.)
        assert_eq!(s.put(2, sample()).unwrap(), 3);
        cleanup(&dir);
    }

    #[test]
    fn result_cache_is_invalidated_by_edits() {
        let dir = fresh_dir("cache");
        let mut s: DocStore<&'static str> = DocStore::open(config(&dir)).unwrap();
        s.put(1, sample()).unwrap();
        let v = s.version(1).unwrap();
        let cache = s.result_cache(1).unwrap();
        cache.insert(xdx_core::CacheKey::Consistency, v, "cached");
        assert_eq!(cache.get(&xdx_core::CacheKey::Consistency), Some(&"cached"));
        s.edit(
            1,
            0,
            &[DocEdit::SetAttr {
                node: 0,
                name: "@a".into(),
                value: "b".into(),
            }],
        )
        .unwrap();
        assert_eq!(
            s.result_cache(1)
                .unwrap()
                .get(&xdx_core::CacheKey::Consistency),
            None,
            "edit bumped the version"
        );
        cleanup(&dir);
    }

    #[test]
    fn checkpoint_compacts_garbage_heavy_arenas() {
        let dir = fresh_dir("compact");
        let mut s = open(&dir);
        s.put(1, sample()).unwrap();
        // Churn: insert and remove children until the arena is mostly junk.
        for _ in 0..8 {
            s.edit(
                1,
                0,
                &[
                    DocEdit::InsertChild {
                        parent: 0,
                        at: 0,
                        label: "book".into(),
                    },
                    DocEdit::RemoveChild { parent: 0, at: 0 },
                ],
            )
            .unwrap();
        }
        let (tree, _) = s.get(1).unwrap();
        assert!(tree.arena_len() > 2 * tree.size());
        let text = tree_to_text(tree);
        s.checkpoint().unwrap();
        let (tree, _) = s.get(1).unwrap();
        assert_eq!(tree.arena_len(), tree.size(), "arena compacted");
        assert_eq!(tree_to_text(tree), text, "document unchanged");
        cleanup(&dir);
    }

    /// Regression: a node inserted and then detached within one batch must
    /// not linger in the dirty set — its parent pointer survives the
    /// detach (only the detached *root*'s is cleared), so a stale entry
    /// would make `validate` fabricate a violation on a node the document
    /// no longer contains.
    #[test]
    fn insert_then_detach_in_one_batch_leaves_no_phantom_dirt() {
        let dir = fresh_dir("phantom");
        let mut s = open(&dir);
        s.put(1, sample()).unwrap();
        let dtd = book_dtd();
        assert!(s.validate(1, dtd.compiled()).unwrap());
        // Insert an undeclared label under the author (rank 2), then remove
        // the whole book subtree; the document is a bare `db` again.
        s.edit(
            1,
            0,
            &[
                DocEdit::InsertChild {
                    parent: 2,
                    at: 0,
                    label: "zzz".into(),
                },
                DocEdit::RemoveChild { parent: 0, at: 0 },
            ],
        )
        .unwrap();
        assert_eq!(tree_to_text(s.get(1).unwrap().0), "db");
        assert!(
            s.validate(1, dtd.compiled()).unwrap(),
            "a bare root conforms; detached nodes must not count"
        );
        cleanup(&dir);
    }

    #[test]
    fn settings_scope_documents_and_survive_restart() {
        let dir = fresh_dir("settings");
        let mut s: DocStore<&'static str> = DocStore::open(config(&dir)).unwrap();
        // The same doc id under two settings names two documents.
        s.put(7, sample()).unwrap();
        s.put((2, 7), XmlTree::new("db")).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(tree_to_text(s.get((2, 7)).unwrap().0), "db");
        assert_ne!(
            tree_to_text(s.get(7).unwrap().0),
            "db",
            "default-setting document is untouched"
        );
        assert_eq!(s.docs_in_setting(2).collect::<Vec<u64>>(), vec![7]);
        assert_eq!(s.docs_in_setting(0).collect::<Vec<u64>>(), vec![7]);
        // Scoping survives the WAL…
        drop(s);
        let mut s: DocStore<&'static str> = DocStore::open(config(&dir)).unwrap();
        assert_eq!(tree_to_text(s.get((2, 7)).unwrap().0), "db");
        // …and the snapshot.
        s.checkpoint().unwrap();
        drop(s);
        let mut s: DocStore<&'static str> = DocStore::open(config(&dir)).unwrap();
        assert_eq!(tree_to_text(s.get((2, 7)).unwrap().0), "db");
        assert_eq!(s.len(), 2);
        cleanup(&dir);
    }

    #[test]
    fn invalidate_setting_drops_derived_state_but_keeps_documents() {
        let dir = fresh_dir("invalidate");
        let mut s: DocStore<&'static str> = DocStore::open(config(&dir)).unwrap();
        let dtd = book_dtd();
        s.put((2, 1), sample()).unwrap();
        s.put(1, sample()).unwrap();
        let v = s.version((2, 1)).unwrap();
        assert!(s.validate((2, 1), dtd.compiled()).unwrap());
        s.result_cache((2, 1))
            .unwrap()
            .insert(xdx_core::CacheKey::Consistency, v, "stale");
        let v0 = s.version(1).unwrap();
        s.result_cache(1)
            .unwrap()
            .insert(xdx_core::CacheKey::Consistency, v0, "kept");
        assert_eq!(s.invalidate_setting(2), 1);
        // The document and its version survive; the derived state is gone.
        assert_eq!(s.version((2, 1)), Some(v));
        assert_eq!(
            s.result_cache((2, 1))
                .unwrap()
                .get(&xdx_core::CacheKey::Consistency),
            None,
            "cached result dropped on rebind"
        );
        assert_eq!(
            s.result_cache(1)
                .unwrap()
                .get(&xdx_core::CacheKey::Consistency),
            Some(&"kept"),
            "other settings untouched"
        );
        // The validation baseline was reset: the next validate is a full
        // scan (observable as still-correct answers after the reset).
        assert!(s.validate((2, 1), dtd.compiled()).unwrap());
        cleanup(&dir);
    }

    #[test]
    fn a_failed_wal_fsync_degrades_the_store_stickily() {
        use crate::vfs::{FaultPlan, FaultVfs};
        let dir = fresh_dir("degraded-fsync");
        let vfs = FaultVfs::real(FaultPlan::count_only());
        let mut s: DocStore = DocStore::open(StoreConfig {
            sync: SyncPolicy::Always,
            vfs: Arc::new(vfs.clone()),
            ..config(&dir)
        })
        .unwrap();
        s.put(1, sample()).unwrap();
        let text = tree_to_text(s.get(1).unwrap().0);
        // Fail the next fsync: the record's bytes may be written, but
        // durability is unknown — the put must not be acknowledged and the
        // store must go read-only.
        vfs.set_plan(FaultPlan::fail_sync(vfs.sync_ops()));
        let err = s.put(2, sample()).unwrap_err();
        assert!(matches!(err, StoreError::Degraded { .. }), "{err}");
        assert!(s.is_degraded());
        assert_eq!(vfs.injected(), 1);
        // Memory reflects exactly the acknowledged history...
        assert_eq!(s.seq(), 1);
        assert!(matches!(s.get(2), Err(StoreError::UnknownDoc { .. })));
        // ...reads keep serving...
        assert_eq!(tree_to_text(s.get(1).unwrap().0), text);
        assert!(s.validate(1, book_dtd().compiled()).unwrap());
        // ...and every further mutation is rejected, including checkpoints
        // (sticky: the failed fsync is never retried).
        assert!(matches!(
            s.put(3, sample()),
            Err(StoreError::Degraded { .. })
        ));
        assert!(matches!(s.delete(1), Err(StoreError::Degraded { .. })));
        assert!(matches!(s.checkpoint(), Err(StoreError::Degraded { .. })));
        drop(s);
        // A restart recovers a consistent prefix: doc 1 for sure; doc 2
        // only if its (unacknowledged) record reached the log in full.
        let mut s = open(&dir);
        assert!(!s.is_degraded());
        assert_eq!(tree_to_text(s.get(1).unwrap().0), text);
        assert!(s.seq() == 1 || s.seq() == 2);
        cleanup(&dir);
    }

    #[test]
    fn a_rolled_back_append_rejects_one_op_and_stays_healthy() {
        use crate::vfs::{FaultKind, FaultPlan, FaultVfs};
        let dir = fresh_dir("rollback");
        let vfs = FaultVfs::real(FaultPlan::count_only());
        let mut s: DocStore = DocStore::open(StoreConfig {
            sync: SyncPolicy::Always,
            vfs: Arc::new(vfs.clone()),
            ..config(&dir)
        })
        .unwrap();
        s.put(1, sample()).unwrap();
        // Tear the next WAL write: the append rolls the log back, the edit
        // rolls back in memory, and the store keeps serving writes.
        vfs.set_plan(FaultPlan::fail_op_with(vfs.ops(), FaultKind::ShortWrite));
        let before = tree_to_text(s.get(1).unwrap().0);
        let err = s
            .edit(
                1,
                0,
                &[DocEdit::SetAttr {
                    node: 0,
                    name: "@rev".into(),
                    value: "x".into(),
                }],
            )
            .unwrap_err();
        assert!(matches!(err, StoreError::Io(_)), "{err}");
        assert!(!s.is_degraded());
        assert_eq!(s.wal_rollbacks(), 1);
        assert_eq!(s.version(1), Some(1), "the failed edit was not applied");
        assert_eq!(tree_to_text(s.get(1).unwrap().0), before);
        // The same edit succeeds on retry.
        s.edit(
            1,
            0,
            &[DocEdit::SetAttr {
                node: 0,
                name: "@rev".into(),
                value: "x".into(),
            }],
        )
        .unwrap();
        drop(s);
        let mut s = open(&dir);
        assert_eq!(s.version(1), Some(2), "acknowledged history recovered");
        let (tree, _) = s.get(1).unwrap();
        assert!(tree.attrs(tree.root()).contains_key("@rev"));
        cleanup(&dir);
    }

    #[test]
    fn a_failed_snapshot_dir_sync_degrades_instead_of_being_swallowed() {
        use crate::vfs::{FaultPlan, FaultVfs};
        let dir = fresh_dir("dirsync");
        let vfs = FaultVfs::real(FaultPlan::count_only());
        let mut s: DocStore = DocStore::open(StoreConfig {
            sync: SyncPolicy::Always,
            vfs: Arc::new(vfs.clone()),
            ..config(&dir)
        })
        .unwrap();
        s.put(1, sample()).unwrap();
        // The checkpoint's sync order is: tmp-file fsync, then (after the
        // rename) the directory fsync. Fail the second sync from here.
        vfs.set_plan(FaultPlan::fail_sync(vfs.sync_ops() + 1));
        let err = s.checkpoint().unwrap_err();
        assert!(matches!(err, StoreError::Degraded { .. }), "{err}");
        assert!(
            s.degraded_reason().unwrap().contains("snapshot fsync"),
            "{:?}",
            s.degraded_reason()
        );
        // Crucially, the WAL was NOT reset: if the rename's durability is
        // unknown, the log must keep covering the full history.
        assert!(s.wal_len() > 0);
        drop(s);
        let s = open(&dir);
        assert_eq!(s.version(1), Some(1));
        cleanup(&dir);
    }

    #[test]
    fn an_abandoned_snapshot_write_fails_the_checkpoint_but_not_the_store() {
        use crate::vfs::{FaultPlan, FaultVfs};
        let dir = fresh_dir("abandon");
        let vfs = FaultVfs::real(FaultPlan::count_only());
        let mut s: DocStore = DocStore::open(StoreConfig {
            sync: SyncPolicy::Always,
            vfs: Arc::new(vfs.clone()),
            ..config(&dir)
        })
        .unwrap();
        s.put(1, sample()).unwrap();
        let wal_before = s.wal_len();
        // Fail the tmp-file create (the next non-sync op after wal.sync's
        // no-op): the old snapshot and the WAL stay authoritative.
        vfs.set_plan(FaultPlan::fail_op(vfs.ops()));
        let err = s.checkpoint().unwrap_err();
        assert!(matches!(err, StoreError::Io(_)), "{err}");
        assert!(!s.is_degraded());
        assert_eq!(s.wal_len(), wal_before, "WAL untouched");
        // The store still accepts writes, and a later checkpoint works.
        s.put(2, sample()).unwrap();
        s.checkpoint().unwrap();
        assert_eq!(s.wal_len(), 0);
        drop(s);
        let s = open(&dir);
        assert_eq!(s.len(), 2);
        cleanup(&dir);
    }
}
