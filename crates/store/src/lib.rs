//! # xdx-store — resident document store
//!
//! Documents served by `xdx-server` used to be ship-per-request: every
//! consistency check, canonical solution or certain-answer query re-sent
//! and re-parsed the whole source document. This crate keeps documents
//! **resident**: decoded once, persisted as binary snapshots plus a
//! write-ahead log of node-local edits, re-validated in `O(dirty)` after an
//! edit, with derived results cached per document version.
//!
//! * [`store`] — the [`DocStore`]: put/get/edit/delete, crash recovery,
//!   checkpointing, incremental conformance validation, version-tagged
//!   result caches;
//! * [`edit`] — [`DocEdit`] (insert/remove child, set/remove attribute),
//!   preorder-rank addressing, the wire encoding, atomic batch application;
//! * [`wal`] — length-prefixed, checksummed records with configurable
//!   `fsync` batching ([`SyncPolicy`]) and prefix-consistent torn-tail
//!   recovery;
//! * [`snapshot`] — the checkpoint segment file: binary codec frames plus
//!   a checksummed index, written atomically via tmp + rename;
//! * [`vfs`] — the filesystem seam: every store I/O goes through a
//!   [`Vfs`], so the deterministic [`FaultVfs`] can fail any single
//!   operation and the fault-matrix tests can reach every error path.
//!
//! `DESIGN.md` next to this crate documents the on-disk formats, the
//! crash-recovery argument, and the failure semantics (rollback vs sticky
//! degraded read-only mode) in full.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bytes;
pub mod edit;
pub mod key;
pub mod snapshot;
pub mod store;
pub mod vfs;
pub mod wal;

pub use key::{DocKey, DEFAULT_SETTING};

pub use edit::{
    apply_edits, decode_edits_exact, encode_edits, AppliedEdits, DocEdit, EditError,
    MAX_EDITS_PER_BATCH,
};
pub use snapshot::{
    load_snapshot_bytes, load_snapshot_frames, Snapshot, SnapshotDoc, SnapshotError, SnapshotFrame,
    SnapshotSource, SnapshotWriteError,
};
pub use store::{
    DocStore, EditReceipt, StoreConfig, StoreError, StoreMetrics, LOCK_FILE, SNAPSHOT_FILE,
    WAL_FILE,
};
pub use vfs::{FaultKind, FaultPlan, FaultVfs, RealVfs, Vfs, VfsFile};
pub use wal::{replay, SyncPolicy, Wal, WalError, WalOp, WalRecord};
