//! Node-local document edits.
//!
//! A [`DocEdit`] is the unit the WAL records and the wire's `EditDoc` op
//! carries: inserting or removing one child, setting or removing one
//! attribute. The data model has no text nodes (Section 2 of the paper puts
//! all character data in attributes), so "set text" is [`DocEdit::SetAttr`].
//!
//! # Addressing
//!
//! Edits address nodes by **preorder rank at the document's current
//! version** — rank 0 is the root, rank `i` the `i`-th node in document
//! order. Ranks are a property of the logical tree, not of the arena, so
//! they survive snapshot round-trips and arena compaction (where raw
//! [`NodeId`]s would not), which is what makes WAL replay after a restart
//! well-defined. Within one batch, edits apply **sequentially**: edit `k+1`
//! addresses the tree as left by edit `k` (an insert shifts the ranks of
//! everything after it in document order, a remove shifts them back).
//!
//! # Atomicity
//!
//! [`apply_edits`] applies a batch all-or-nothing: every mutation is pushed
//! onto an undo log, and the first failing edit rolls the document back to
//! its pre-batch state before the error is returned. (Arena slots allocated
//! by rolled-back inserts leak until the next checkpoint compaction —
//! detached slots are invisible to ranks, codecs and traversals, so this is
//! a space cost only.)

use crate::bytes::{put_str, Cursor};
use std::fmt;
use xdx_xmltree::limits::MAX_DOCUMENT_NODES;
use xdx_xmltree::{AttrName, ElementType, NodeId, NullId, Value, XmlTree};

/// Hard cap on the number of edits one batch (one WAL record, one `EditDoc`
/// request) may carry. Batches are meant to be "what one writer did just
/// now", not a bulk-load channel — bulk loads ship a whole document.
pub const MAX_EDITS_PER_BATCH: usize = 1024;

/// One node-local edit (see the module docs for addressing semantics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DocEdit {
    /// Insert a fresh leaf labelled `label` at position `at` of the child
    /// list of the node with preorder rank `parent`.
    InsertChild {
        /// Preorder rank of the parent.
        parent: u32,
        /// Position in the parent's child list (`0..=len`).
        at: u32,
        /// Label of the new leaf.
        label: ElementType,
    },
    /// Remove the child at position `at` of the node with rank `parent`
    /// (the whole subtree below it goes too).
    RemoveChild {
        /// Preorder rank of the parent.
        parent: u32,
        /// Position in the parent's child list (`0..len`).
        at: u32,
    },
    /// Set (or overwrite) one attribute of the node with rank `node`.
    SetAttr {
        /// Preorder rank of the node.
        node: u32,
        /// Attribute name.
        name: AttrName,
        /// New value.
        value: Value,
    },
    /// Remove one attribute of the node with rank `node`. Removing an
    /// attribute the node does not carry is an error (and fails the batch).
    RemoveAttr {
        /// Preorder rank of the node.
        node: u32,
        /// Attribute name.
        name: AttrName,
    },
}

/// Why an edit batch was rejected. The document is unchanged whenever one
/// of these is returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditError {
    /// A preorder rank at or past the document's node count.
    NodeOutOfRange {
        /// The offending rank.
        rank: u32,
        /// Current number of reachable nodes.
        nodes: usize,
    },
    /// A child position outside the parent's child list.
    PositionOutOfRange {
        /// The offending position.
        at: u32,
        /// The child-list length it was checked against.
        len: usize,
    },
    /// `RemoveAttr` named an attribute the node does not carry.
    MissingAttr {
        /// The absent attribute.
        name: AttrName,
    },
    /// The insert would grow the document past [`MAX_DOCUMENT_NODES`].
    DocumentFull,
    /// The batch is larger than [`MAX_EDITS_PER_BATCH`].
    BatchTooLarge {
        /// Number of edits in the rejected batch.
        len: usize,
    },
    /// The encoded form could not be decoded.
    Malformed(String),
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::NodeOutOfRange { rank, nodes } => {
                write!(
                    f,
                    "node rank {rank} out of range (document has {nodes} nodes)"
                )
            }
            EditError::PositionOutOfRange { at, len } => {
                write!(
                    f,
                    "child position {at} out of range (child list has {len} entries)"
                )
            }
            EditError::MissingAttr { name } => {
                write!(f, "attribute {name} is not present on the node")
            }
            EditError::DocumentFull => {
                write!(
                    f,
                    "insert would exceed the {MAX_DOCUMENT_NODES}-node document cap"
                )
            }
            EditError::BatchTooLarge { len } => {
                write!(
                    f,
                    "{len} edits exceed the {MAX_EDITS_PER_BATCH}-edit batch cap"
                )
            }
            EditError::Malformed(m) => write!(f, "malformed edit encoding: {m}"),
        }
    }
}

impl std::error::Error for EditError {}

// ---------------------------------------------------------------------------
// Wire encoding
// ---------------------------------------------------------------------------

const TAG_INSERT_CHILD: u8 = 1;
const TAG_REMOVE_CHILD: u8 = 2;
const TAG_SET_ATTR: u8 = 3;
const TAG_REMOVE_ATTR: u8 = 4;

fn put_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Const(s) => {
            out.push(0);
            put_str(out, s);
        }
        Value::Null(id) => {
            out.push(1);
            out.extend_from_slice(&id.0.to_be_bytes());
        }
    }
}

impl DocEdit {
    /// Append this edit's encoding (same integer conventions as the binary
    /// document codec: big-endian, length-prefixed strings, value tags
    /// `0x00` const / `0x01` null).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            DocEdit::InsertChild { parent, at, label } => {
                out.push(TAG_INSERT_CHILD);
                out.extend_from_slice(&parent.to_be_bytes());
                out.extend_from_slice(&at.to_be_bytes());
                put_str(out, label.as_str());
            }
            DocEdit::RemoveChild { parent, at } => {
                out.push(TAG_REMOVE_CHILD);
                out.extend_from_slice(&parent.to_be_bytes());
                out.extend_from_slice(&at.to_be_bytes());
            }
            DocEdit::SetAttr { node, name, value } => {
                out.push(TAG_SET_ATTR);
                out.extend_from_slice(&node.to_be_bytes());
                put_str(out, name.as_str());
                put_value(out, value);
            }
            DocEdit::RemoveAttr { node, name } => {
                out.push(TAG_REMOVE_ATTR);
                out.extend_from_slice(&node.to_be_bytes());
                put_str(out, name.as_str());
            }
        }
    }

    pub(crate) fn decode(c: &mut Cursor<'_>) -> Result<DocEdit, EditError> {
        let truncated = || EditError::Malformed("truncated edit record".into());
        let tag = c.u8().ok_or_else(truncated)?;
        match tag {
            TAG_INSERT_CHILD => {
                let parent = c.u32().ok_or_else(truncated)?;
                let at = c.u32().ok_or_else(truncated)?;
                let label = c.str().ok_or_else(truncated)?;
                Ok(DocEdit::InsertChild {
                    parent,
                    at,
                    label: ElementType::new(label),
                })
            }
            TAG_REMOVE_CHILD => {
                let parent = c.u32().ok_or_else(truncated)?;
                let at = c.u32().ok_or_else(truncated)?;
                Ok(DocEdit::RemoveChild { parent, at })
            }
            TAG_SET_ATTR => {
                let node = c.u32().ok_or_else(truncated)?;
                let name = AttrName::new(c.str().ok_or_else(truncated)?);
                let value = match c.u8().ok_or_else(truncated)? {
                    0 => Value::constant(c.str().ok_or_else(truncated)?),
                    1 => Value::Null(NullId(c.u64().ok_or_else(truncated)?)),
                    t => return Err(EditError::Malformed(format!("unknown value tag {t}"))),
                };
                Ok(DocEdit::SetAttr { node, name, value })
            }
            TAG_REMOVE_ATTR => {
                let node = c.u32().ok_or_else(truncated)?;
                let name = AttrName::new(c.str().ok_or_else(truncated)?);
                Ok(DocEdit::RemoveAttr { node, name })
            }
            t => Err(EditError::Malformed(format!("unknown edit tag {t}"))),
        }
    }
}

/// Encode a batch as `n:u16` followed by `n` edits (the payload format both
/// the WAL's `Edit` record and the wire's `EditDoc` body embed).
pub fn encode_edits(edits: &[DocEdit], out: &mut Vec<u8>) {
    out.extend_from_slice(
        &u16::try_from(edits.len())
            .expect("edit batches are capped below u16::MAX")
            .to_be_bytes(),
    );
    for e in edits {
        e.encode_into(out);
    }
}

/// Decode a batch encoded by [`encode_edits`]. Total: truncated or garbage
/// input yields [`EditError::Malformed`], never a panic or an oversized
/// allocation (capacity is bounded by the bytes actually present).
pub(crate) fn decode_edits(c: &mut Cursor<'_>) -> Result<Vec<DocEdit>, EditError> {
    let n = c
        .u16()
        .ok_or_else(|| EditError::Malformed("truncated edit count".into()))? as usize;
    if n > MAX_EDITS_PER_BATCH {
        return Err(EditError::BatchTooLarge { len: n });
    }
    // The smallest edit is 9 bytes; do not trust the count beyond that.
    if n > c.remaining() / 9 + 1 {
        return Err(EditError::Malformed(format!(
            "edit count {n} exceeds the payload"
        )));
    }
    let mut edits = Vec::with_capacity(n);
    for _ in 0..n {
        edits.push(DocEdit::decode(c)?);
    }
    Ok(edits)
}

/// Decode a standalone edit-batch buffer (the wire's `EditDoc` body),
/// rejecting trailing bytes.
pub fn decode_edits_exact(bytes: &[u8]) -> Result<Vec<DocEdit>, EditError> {
    let mut c = Cursor::new(bytes);
    let edits = decode_edits(&mut c)?;
    if !c.is_empty() {
        return Err(EditError::Malformed(format!(
            "{} trailing bytes after the edit batch",
            c.remaining()
        )));
    }
    Ok(edits)
}

// ---------------------------------------------------------------------------
// Application
// ---------------------------------------------------------------------------

/// What [`apply_edits`] did, for the caller's dirty-tracking. Also carries
/// the batch's undo log: a caller whose *own* post-apply step fails (e.g.
/// the store's WAL append) can [`AppliedEdits::rollback`] to restore the
/// pre-batch document.
#[derive(Debug, Default)]
pub struct AppliedEdits {
    /// Every node whose attribute set or child list changed, plus every
    /// freshly inserted node — exactly the seed set
    /// [`xdx_core::CompiledSetting::chase_incremental`] and the store's
    /// incremental conformance check require.
    pub dirty: Vec<NodeId>,
    /// Roots of subtrees detached by `RemoveChild` (their descendants must
    /// be dropped from any per-node bookkeeping).
    pub detached: Vec<NodeId>,
    /// Did any edit change tree structure (as opposed to attributes only)?
    /// Structure changes invalidate preorder-rank caches.
    pub structural: bool,
    undo: Vec<Undo>,
}

impl AppliedEdits {
    /// Undo the whole batch on `tree` (which must be the tree it was
    /// applied to, unmodified since).
    pub fn rollback(self, tree: &mut XmlTree) {
        rollback(tree, self.undo);
    }
}

fn rollback(tree: &mut XmlTree, undo: Vec<Undo>) {
    for u in undo.into_iter().rev() {
        match u {
            Undo::Inserted { parent, child } => tree.detach_child(parent, child),
            Undo::Removed {
                parent,
                child,
                order: siblings,
            } => {
                tree.attach_child(parent, child);
                tree.set_child_order(parent, siblings);
            }
            Undo::Attr { node, name, old } => match old {
                Some(v) => {
                    tree.set_attr(node, name, v);
                }
                None => {
                    tree.remove_attr(node, &name);
                }
            },
        }
    }
}

#[derive(Debug)]
enum Undo {
    Inserted {
        parent: NodeId,
        child: NodeId,
    },
    Removed {
        parent: NodeId,
        child: NodeId,
        order: Vec<NodeId>,
    },
    Attr {
        node: NodeId,
        name: AttrName,
        old: Option<Value>,
    },
}

fn resolve(
    tree: &XmlTree,
    order: &mut Option<Vec<NodeId>>,
    rank: u32,
) -> Result<NodeId, EditError> {
    let order = order.get_or_insert_with(|| tree.preorder().collect());
    order
        .get(rank as usize)
        .copied()
        .ok_or(EditError::NodeOutOfRange {
            rank,
            nodes: order.len(),
        })
}

/// Apply a batch of edits to `tree`, all-or-nothing (see the module docs).
///
/// `order` is the caller's preorder-rank cache: ranks resolve against it,
/// it is rebuilt lazily when absent, and it is invalidated (set to `None`)
/// by every structural edit — pass the same slot across calls to amortise
/// the collection for attribute-only batches, or a fresh `None` otherwise.
pub fn apply_edits(
    tree: &mut XmlTree,
    order: &mut Option<Vec<NodeId>>,
    edits: &[DocEdit],
) -> Result<AppliedEdits, EditError> {
    if edits.len() > MAX_EDITS_PER_BATCH {
        return Err(EditError::BatchTooLarge { len: edits.len() });
    }
    let mut applied = AppliedEdits::default();
    let mut fail: Option<EditError> = None;
    for edit in edits {
        let step = apply_one(tree, order, edit, &mut applied);
        if let Err(e) = step {
            fail = Some(e);
            break;
        }
    }
    let Some(e) = fail else {
        return Ok(applied);
    };
    // Roll back in reverse order; the rank cache is stale either way.
    *order = None;
    rollback(tree, applied.undo);
    Err(e)
}

fn apply_one(
    tree: &mut XmlTree,
    order: &mut Option<Vec<NodeId>>,
    edit: &DocEdit,
    applied: &mut AppliedEdits,
) -> Result<(), EditError> {
    match edit {
        DocEdit::InsertChild { parent, at, label } => {
            let parent = resolve(tree, order, *parent)?;
            let len = tree.children(parent).len();
            if *at as usize > len {
                return Err(EditError::PositionOutOfRange { at: *at, len });
            }
            if tree.arena_len() >= MAX_DOCUMENT_NODES {
                return Err(EditError::DocumentFull);
            }
            let child = tree.insert_child(parent, *at as usize, label.clone());
            applied.undo.push(Undo::Inserted { parent, child });
            applied.dirty.push(parent);
            applied.dirty.push(child);
            applied.structural = true;
            *order = None;
        }
        DocEdit::RemoveChild { parent, at } => {
            let parent = resolve(tree, order, *parent)?;
            let siblings = tree.children(parent).to_vec();
            let Some(&child) = siblings.get(*at as usize) else {
                return Err(EditError::PositionOutOfRange {
                    at: *at,
                    len: siblings.len(),
                });
            };
            tree.detach_child(parent, child);
            applied.undo.push(Undo::Removed {
                parent,
                child,
                order: siblings,
            });
            applied.dirty.push(parent);
            applied.detached.push(child);
            applied.structural = true;
            *order = None;
        }
        DocEdit::SetAttr { node, name, value } => {
            let node = resolve(tree, order, *node)?;
            let old = tree.set_attr(node, name.clone(), value.clone());
            applied.undo.push(Undo::Attr {
                node,
                name: name.clone(),
                old,
            });
            applied.dirty.push(node);
        }
        DocEdit::RemoveAttr { node, name } => {
            let node = resolve(tree, order, *node)?;
            let Some(old) = tree.remove_attr(node, name) else {
                return Err(EditError::MissingAttr { name: name.clone() });
            };
            applied.undo.push(Undo::Attr {
                node,
                name: name.clone(),
                old: Some(old),
            });
            applied.dirty.push(node);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdx_xmltree::tree_to_text;

    fn sample() -> XmlTree {
        let mut t = XmlTree::new("db");
        let b = t.add_child(t.root(), "book");
        t.set_attr(b, "@title", "CO");
        t.add_child(b, "author");
        t
    }

    #[test]
    fn edits_round_trip_through_the_wire_encoding() {
        let edits = vec![
            DocEdit::InsertChild {
                parent: 0,
                at: 1,
                label: ElementType::new("book"),
            },
            DocEdit::RemoveChild { parent: 0, at: 0 },
            DocEdit::SetAttr {
                node: 2,
                name: AttrName::new("@name"),
                value: Value::constant("x"),
            },
            DocEdit::SetAttr {
                node: 2,
                name: AttrName::new("@aff"),
                value: Value::Null(NullId(9)),
            },
            DocEdit::RemoveAttr {
                node: 1,
                name: AttrName::new("@title"),
            },
        ];
        let mut buf = Vec::new();
        encode_edits(&edits, &mut buf);
        assert_eq!(decode_edits_exact(&buf).unwrap(), edits);
    }

    #[test]
    fn truncated_and_garbage_edit_buffers_never_panic() {
        let edits = vec![DocEdit::SetAttr {
            node: 0,
            name: AttrName::new("@a"),
            value: Value::constant("v"),
        }];
        let mut buf = Vec::new();
        encode_edits(&edits, &mut buf);
        for cut in 0..buf.len() {
            assert!(decode_edits_exact(&buf[..cut]).is_err());
        }
        for at in 0..buf.len() {
            let mut b = buf.clone();
            b[at] ^= 0x80;
            let _ = decode_edits_exact(&b); // must not panic
        }
    }

    #[test]
    fn sequential_ranks_see_earlier_edits() {
        let mut t = sample();
        // Insert a second book before the first; its rank (1) is then valid
        // for the SetAttr that follows in the same batch.
        let batch = vec![
            DocEdit::InsertChild {
                parent: 0,
                at: 0,
                label: ElementType::new("book"),
            },
            DocEdit::SetAttr {
                node: 1,
                name: AttrName::new("@title"),
                value: Value::constant("New"),
            },
        ];
        let mut order = None;
        let applied = apply_edits(&mut t, &mut order, &batch).unwrap();
        assert!(applied.structural);
        assert_eq!(
            tree_to_text(&t),
            "db[book(@title=\"New\"),book(@title=\"CO\")[author]]"
        );
    }

    #[test]
    fn failed_batches_roll_back_completely() {
        let mut t = sample();
        let before = tree_to_text(&t);
        let arena_before = t.arena_len();
        let batch = vec![
            DocEdit::InsertChild {
                parent: 0,
                at: 0,
                label: ElementType::new("book"),
            },
            DocEdit::RemoveChild { parent: 1, at: 0 }, // fresh book has no children
        ];
        let mut order = None;
        let err = apply_edits(&mut t, &mut order, &batch).unwrap_err();
        assert!(matches!(
            err,
            EditError::PositionOutOfRange { at: 0, len: 0 }
        ));
        assert_eq!(tree_to_text(&t), before, "document must be unchanged");
        // The rolled-back insert leaks a detached arena slot (documented).
        assert_eq!(t.arena_len(), arena_before + 1);
        assert_eq!(t.size(), 3);
    }

    #[test]
    fn remove_missing_attr_is_an_error() {
        let mut t = sample();
        let batch = vec![DocEdit::RemoveAttr {
            node: 0,
            name: AttrName::new("@nope"),
        }];
        let err = apply_edits(&mut t, &mut None, &batch).unwrap_err();
        assert!(matches!(err, EditError::MissingAttr { .. }));
    }

    #[test]
    fn out_of_range_ranks_are_rejected() {
        let mut t = sample();
        let err = apply_edits(
            &mut t,
            &mut None,
            &[DocEdit::RemoveChild { parent: 99, at: 0 }],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            EditError::NodeOutOfRange { rank: 99, nodes: 3 }
        ));
    }

    #[test]
    fn detached_subtrees_are_invisible_to_ranks() {
        let mut t = sample();
        let mut order = None;
        apply_edits(
            &mut t,
            &mut order,
            &[DocEdit::RemoveChild { parent: 0, at: 0 }],
        )
        .unwrap();
        // Only the root remains reachable; rank 1 must now be out of range
        // even though the arena still holds the detached book and author.
        let err = apply_edits(
            &mut t,
            &mut order,
            &[DocEdit::SetAttr {
                node: 1,
                name: AttrName::new("@x"),
                value: Value::constant("v"),
            }],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            EditError::NodeOutOfRange { rank: 1, nodes: 1 }
        ));
    }
}
