//! Checkpoint snapshots.
//!
//! A snapshot is one segment file holding every resident document as a
//! binary codec frame ([`xdx_xmltree::binary`]), followed by a checksummed
//! index and a footer that locates it:
//!
//! ```text
//! file    := magic:8 ("XDXSNAP2")  frames…  index  footer
//! index   := count × entry                 -- entries sorted by (setting, doc)
//! entry   := setting_id:u64 doc_id:u64 version:u64 offset:u64 len:u32 crc:u64   (44 bytes)
//! footer  := seq:u64 index_offset:u64 index_count:u32 index_crc:u64 magic:8 ("XDXSNAPE")
//! ```
//!
//! Format v1 (`XDXSNAP1`, 36-byte entries without the setting id) predates
//! the multi-tenant setting registry; the magic bump makes a v1 file fail
//! loudly at open instead of misparsing (see `DESIGN.md`).
//!
//! `seq` is the store-wide mutation sequence at checkpoint time — every
//! WAL record whose version is at or below it is already reflected in the
//! snapshot, which is what WAL replay skips by (see [`crate::store`]).
//! `offset`/`len` locate a frame (absolute file offsets), `crc` is FNV-1a
//! of the frame bytes, `index_crc` FNV-1a of the index bytes followed by
//! the footer's own `seq`/`index_offset`/`index_count` fields (so a bit
//! flip in the sequence cannot silently change which records replay). The
//! loader validates magics, footer geometry, index checksum, entry bounds
//! and per-frame checksums before decoding any frame, and the frame
//! decoder itself is total — so arbitrary bytes produce a
//! [`SnapshotError`], never a panic or an oversized allocation.
//!
//! Snapshots are written to `<name>.tmp`, fsynced, then atomically renamed
//! over `<name>` (and the directory fsynced): at every instant the named
//! file is either the complete old snapshot or the complete new one. A
//! corrupt named snapshot therefore indicates storage-level damage, and
//! loading reports it as an error instead of guessing.

use crate::bytes::{fnv1a, Cursor};
use crate::key::DocKey;
use crate::vfs::Vfs;
use std::fmt;
use std::path::Path;
use xdx_xmltree::{decode_tree, encode_tree, XmlTree};

const MAGIC: &[u8; 8] = b"XDXSNAP2";
const V1_MAGIC: &[u8; 8] = b"XDXSNAP1";
const FOOTER_MAGIC: &[u8; 8] = b"XDXSNAPE";
const ENTRY_BYTES: usize = 8 + 8 + 8 + 8 + 4 + 8;
const FOOTER_BYTES: usize = 8 + 8 + 4 + 8 + 8;

/// A validated snapshot: the store-wide mutation sequence recorded at
/// checkpoint time plus every document frame, sorted by id.
#[derive(Debug)]
pub struct Snapshot {
    /// Store-wide mutation sequence at checkpoint time. WAL records whose
    /// version is `<= seq` are already reflected in `docs`.
    pub seq: u64,
    /// Checksum-verified, still-undecoded document frames.
    pub docs: Vec<SnapshotFrame>,
}

/// One document recovered from a snapshot.
#[derive(Debug)]
pub struct SnapshotDoc {
    /// Setting-scoped document key.
    pub key: DocKey,
    /// Version at checkpoint time.
    pub version: u64,
    /// The document.
    pub tree: XmlTree,
}

/// One checksum-verified but still *undecoded* document frame — what the
/// lazy load path hands to [`crate::store::DocStore`], which materializes
/// the tree on first access instead of paying per-node construction for
/// every resident document at open time.
#[derive(Debug)]
pub struct SnapshotFrame {
    /// Setting-scoped document key.
    pub key: DocKey,
    /// Version at checkpoint time.
    pub version: u64,
    /// The binary codec frame (checksum already verified).
    pub frame: Vec<u8>,
}

/// Why a snapshot image was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError {
    /// Human-readable description.
    pub message: String,
}

impl SnapshotError {
    fn new(message: impl Into<String>) -> SnapshotError {
        SnapshotError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot: {}", self.message)
    }
}

impl std::error::Error for SnapshotError {}

/// Decode a snapshot image fully (see the module docs; total over arbitrary
/// bytes). Documents come back sorted by id. This is the eager twin of
/// [`load_snapshot_frames`] — tools and tests that want trees now.
pub fn load_snapshot_bytes(bytes: &[u8]) -> Result<Vec<SnapshotDoc>, SnapshotError> {
    load_snapshot_frames(bytes)?
        .docs
        .into_iter()
        .map(|f| {
            let tree = decode_tree(&f.frame).map_err(|e| {
                SnapshotError::new(format!("frame for document {} does not decode: {e}", f.key))
            })?;
            Ok(SnapshotDoc {
                key: f.key,
                version: f.version,
                tree,
            })
        })
        .collect()
}

/// Validate a snapshot image — magics, footer geometry, index checksum,
/// entry bounds, per-frame checksums — and return the checkpoint sequence
/// and raw frames *without* decoding any tree. Total over arbitrary bytes.
pub fn load_snapshot_frames(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
    if bytes.len() < MAGIC.len() + FOOTER_BYTES {
        return Err(SnapshotError::new(format!(
            "{} bytes is shorter than an empty snapshot",
            bytes.len()
        )));
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        if &bytes[..V1_MAGIC.len()] == V1_MAGIC {
            return Err(SnapshotError::new(
                "format-v1 snapshot (XDXSNAP1, no setting ids) — \
                 this build reads only format v2; see DESIGN.md",
            ));
        }
        return Err(SnapshotError::new("bad leading magic"));
    }
    let footer = &bytes[bytes.len() - FOOTER_BYTES..];
    if &footer[FOOTER_BYTES - 8..] != FOOTER_MAGIC {
        return Err(SnapshotError::new("bad trailing magic"));
    }
    let mut f = Cursor::new(footer);
    let seq = f.u64().expect("footer sized above");
    let index_offset = f.u64().expect("footer sized above") as usize;
    let index_count = f.u32().expect("footer sized above") as usize;
    let index_crc = f.u64().expect("footer sized above");

    let index_end = bytes.len() - FOOTER_BYTES;
    let index_bytes_len = index_count
        .checked_mul(ENTRY_BYTES)
        .ok_or_else(|| SnapshotError::new("index count overflows"))?;
    if index_offset < MAGIC.len()
        || index_offset > index_end
        || index_end - index_offset != index_bytes_len
    {
        return Err(SnapshotError::new(format!(
            "footer index geometry is inconsistent \
             (offset {index_offset}, count {index_count}, file {} bytes)",
            bytes.len()
        )));
    }
    let index = &bytes[index_offset..index_end];
    if footer_crc(index, seq, index_offset as u64, index_count as u32) != index_crc {
        return Err(SnapshotError::new("index checksum mismatch"));
    }

    let mut docs = Vec::with_capacity(index_count);
    let mut c = Cursor::new(index);
    let mut last_key: Option<DocKey> = None;
    for _ in 0..index_count {
        let setting = c.u64().expect("index sized above");
        let doc = c.u64().expect("index sized above");
        let key = DocKey::new(setting, doc);
        let version = c.u64().expect("index sized above");
        let offset = c.u64().expect("index sized above") as usize;
        let len = c.u32().expect("index sized above") as usize;
        let crc = c.u64().expect("index sized above");
        if last_key.is_some_and(|p| p >= key) {
            return Err(SnapshotError::new("index keys are not strictly increasing"));
        }
        last_key = Some(key);
        if offset < MAGIC.len() || offset.saturating_add(len) > index_offset {
            return Err(SnapshotError::new(format!(
                "frame for document {key} is out of bounds"
            )));
        }
        let frame = &bytes[offset..offset + len];
        if fnv1a(frame) != crc {
            return Err(SnapshotError::new(format!(
                "frame checksum mismatch for document {key}"
            )));
        }
        docs.push(SnapshotFrame {
            key,
            version,
            frame: frame.to_vec(),
        });
    }
    Ok(Snapshot { seq, docs })
}

/// Checksum guarding the index *and* the footer's own fields: a bit flip
/// in the recorded sequence must fail validation, not silently change
/// which WAL records replay.
fn footer_crc(index: &[u8], seq: u64, index_offset: u64, count: u32) -> u64 {
    let mut buf = Vec::with_capacity(index.len() + 20);
    buf.extend_from_slice(index);
    buf.extend_from_slice(&seq.to_be_bytes());
    buf.extend_from_slice(&index_offset.to_be_bytes());
    buf.extend_from_slice(&count.to_be_bytes());
    fnv1a(&buf)
}

/// Load the snapshot at `path` without decoding trees (the store's open
/// path). A missing file is an empty store (`Ok` with no documents and
/// sequence 0); unreadable or corrupt bytes are errors.
pub fn load_snapshot(vfs: &dyn Vfs, path: &Path) -> Result<Snapshot, crate::store::StoreError> {
    let bytes = match vfs.read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(Snapshot {
                seq: 0,
                docs: Vec::new(),
            })
        }
        Err(e) => return Err(crate::store::StoreError::Io(e)),
    };
    load_snapshot_frames(&bytes).map_err(|e| crate::store::StoreError::Corrupt {
        context: format!("{} — {e}", path.display()),
    })
}

/// What a snapshot writer has in hand for one document: a live tree (to be
/// encoded) or a frame that is still byte-identical to the document — an
/// undecoded lazy load, which the checkpoint copies through verbatim
/// instead of decode + re-encode.
#[derive(Debug, Clone, Copy)]
pub enum SnapshotSource<'a> {
    /// Encode this tree.
    Tree(&'a XmlTree),
    /// Copy these (already encoded) frame bytes through.
    Frame(&'a [u8]),
}

/// Serialize a snapshot image. `seq` is the store-wide mutation sequence
/// the snapshot reflects; `docs` must be sorted by key (the store's
/// iteration provides that).
pub fn encode_snapshot<'a>(
    seq: u64,
    docs: impl Iterator<Item = (DocKey, u64, SnapshotSource<'a>)>,
) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    let mut index = Vec::new();
    let mut count: u32 = 0;
    for (key, version, source) in docs {
        let frame = match source {
            SnapshotSource::Tree(tree) => std::borrow::Cow::Owned(encode_tree(tree)),
            SnapshotSource::Frame(bytes) => std::borrow::Cow::Borrowed(bytes),
        };
        index.extend_from_slice(&key.setting.to_be_bytes());
        index.extend_from_slice(&key.doc.to_be_bytes());
        index.extend_from_slice(&version.to_be_bytes());
        index.extend_from_slice(&(out.len() as u64).to_be_bytes());
        index.extend_from_slice(
            &u32::try_from(frame.len())
                .expect("frame length")
                .to_be_bytes(),
        );
        index.extend_from_slice(&fnv1a(&frame).to_be_bytes());
        out.extend_from_slice(&frame);
        count += 1;
    }
    let index_offset = out.len() as u64;
    let index_crc = footer_crc(&index, seq, index_offset, count);
    out.extend_from_slice(&index);
    out.extend_from_slice(&seq.to_be_bytes());
    out.extend_from_slice(&index_offset.to_be_bytes());
    out.extend_from_slice(&count.to_be_bytes());
    out.extend_from_slice(&index_crc.to_be_bytes());
    out.extend_from_slice(FOOTER_MAGIC);
    out
}

/// How a snapshot write failed — which side of the "is the old state still
/// authoritative, with durability intact?" line the failure landed on. The
/// store's checkpoint turns this into its rollback-vs-degraded decision
/// (see `DESIGN.md`).
#[derive(Debug)]
pub enum SnapshotWriteError {
    /// The attempt died before anything replaced the named snapshot and
    /// without an fsync failing (tmp create/write, or the rename itself):
    /// the previous snapshot is untouched and still durable — the
    /// checkpoint simply did not happen.
    Abandoned(std::io::Error),
    /// An fsync failed — the tmp file's before the rename, or the parent
    /// directory's after it. Durability of what the kernel accepted is
    /// unknown and a failed fsync is never retried, so the caller must
    /// stop trusting further writes.
    SyncFailed(std::io::Error),
}

impl SnapshotWriteError {
    /// Take the underlying I/O error.
    pub fn into_io(self) -> std::io::Error {
        match self {
            SnapshotWriteError::Abandoned(e) | SnapshotWriteError::SyncFailed(e) => e,
        }
    }
}

impl fmt::Display for SnapshotWriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotWriteError::Abandoned(e) => {
                write!(f, "snapshot write abandoned (old snapshot intact): {e}")
            }
            SnapshotWriteError::SyncFailed(e) => write!(f, "snapshot fsync failed: {e}"),
        }
    }
}

impl std::error::Error for SnapshotWriteError {}

/// Write a snapshot atomically: encode, write `<path>.tmp`, fsync, rename
/// over `path`, fsync the parent directory. The error distinguishes an
/// abandoned attempt (old snapshot intact and durable) from a failed fsync
/// (durability unknown) — see [`SnapshotWriteError`].
pub fn write_snapshot<'a>(
    vfs: &dyn Vfs,
    path: &Path,
    seq: u64,
    docs: impl Iterator<Item = (DocKey, u64, SnapshotSource<'a>)>,
) -> Result<(), SnapshotWriteError> {
    let bytes = encode_snapshot(seq, docs);
    let tmp = path.with_extension("tmp");
    {
        let mut f = vfs.create(&tmp).map_err(SnapshotWriteError::Abandoned)?;
        f.write_all(&bytes).map_err(SnapshotWriteError::Abandoned)?;
        f.sync_all().map_err(SnapshotWriteError::SyncFailed)?;
    }
    vfs.rename(&tmp, path)
        .map_err(SnapshotWriteError::Abandoned)?;
    if let Some(dir) = path.parent() {
        // Persist the rename itself. A directory-fsync failure is a real
        // durability hole — a crash could resurrect the *old* snapshot
        // after the caller has acted on the new one (e.g. reset the WAL) —
        // so it propagates instead of being swallowed.
        vfs.sync_dir(dir).map_err(SnapshotWriteError::SyncFailed)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_docs() -> Vec<(DocKey, u64, XmlTree)> {
        let mut a = XmlTree::new("db");
        let b = a.add_child(a.root(), "book");
        a.set_attr(b, "@title", "CO");
        let c = XmlTree::new("db");
        // Same doc id under two settings: scoped keys keep them distinct.
        vec![(DocKey::new(0, 7), 7, a), (DocKey::new(2, 7), 1, c)]
    }

    fn encode(docs: &[(DocKey, u64, XmlTree)]) -> Vec<u8> {
        encode_snapshot(
            42,
            docs.iter()
                .map(|(k, v, t)| (*k, *v, SnapshotSource::Tree(t))),
        )
    }

    #[test]
    fn frame_sources_write_byte_identical_snapshots() {
        let docs = sample_docs();
        let from_trees = encode(&docs);
        let snap = load_snapshot_frames(&from_trees).unwrap();
        assert_eq!(snap.seq, 42);
        let from_frames = encode_snapshot(
            snap.seq,
            snap.docs
                .iter()
                .map(|f| (f.key, f.version, SnapshotSource::Frame(&f.frame))),
        );
        assert_eq!(from_trees, from_frames);
    }

    #[test]
    fn a_bit_flip_in_the_footer_sequence_fails_validation() {
        let bytes = encode(&sample_docs());
        let seq_at = bytes.len() - FOOTER_BYTES;
        let mut b = bytes.clone();
        b[seq_at + 7] ^= 0x01; // low byte of seq: 42 -> 43
        let err = load_snapshot_frames(&b).unwrap_err();
        assert!(err.message.contains("checksum"), "{err}");
    }

    #[test]
    fn snapshots_round_trip() {
        let docs = sample_docs();
        let back = load_snapshot_bytes(&encode(&docs)).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!((back[0].key, back[0].version), (DocKey::new(0, 7), 7));
        assert_eq!((back[1].key, back[1].version), (DocKey::new(2, 7), 1));
        assert_eq!(
            back[0].tree.ordered_canonical_form(),
            docs[0].2.ordered_canonical_form()
        );
    }

    #[test]
    fn empty_snapshots_round_trip() {
        let back = load_snapshot_bytes(&encode(&[])).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn truncations_and_bit_flips_never_panic() {
        let bytes = encode(&sample_docs());
        for cut in 0..bytes.len() {
            assert!(load_snapshot_bytes(&bytes[..cut]).is_err());
        }
        for at in 0..bytes.len() {
            let mut b = bytes.clone();
            b[at] ^= 0x01;
            // Must not panic; almost always an error (a flip in a frame's
            // padding-free payload is caught by its checksum).
            let _ = load_snapshot_bytes(&b);
        }
    }

    #[test]
    fn frame_corruption_is_caught_by_the_checksum() {
        let bytes = encode(&sample_docs());
        // Flip a bit inside the first frame (right after the magic).
        let mut b = bytes.clone();
        b[MAGIC.len() + 3] ^= 0x10;
        let err = load_snapshot_bytes(&b).unwrap_err();
        assert!(err.message.contains("checksum"), "{err}");
    }

    #[test]
    fn format_v1_snapshots_fail_loudly_by_name() {
        let mut bytes = encode(&sample_docs());
        bytes[..V1_MAGIC.len()].copy_from_slice(V1_MAGIC);
        let err = load_snapshot_frames(&bytes).unwrap_err();
        assert!(err.message.contains("format-v1"), "{err}");
    }

    #[test]
    fn missing_file_is_an_empty_store() {
        let snap = load_snapshot(
            &crate::vfs::RealVfs,
            Path::new("/nonexistent/xdx/snapshot.bin"),
        )
        .unwrap();
        assert_eq!(snap.seq, 0);
        assert!(snap.docs.is_empty());
    }
}
