//! Byte-level helpers shared by the WAL and snapshot codecs: a bounds-checked
//! cursor (every read is total — truncated input yields `None`, never a
//! panic) and the FNV-1a checksum both formats use.

/// FNV-1a over `bytes`. The store's integrity checks guard against torn
/// writes and bit rot, not adversaries with write access to the data
/// directory, so a fast non-cryptographic checksum is the right tool (and
/// the same function the binary codec's name interner already trusts).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A forward-only reader over a byte slice.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    pub(crate) fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Option<u16> {
        let b = self.take(2)?;
        Some(u16::from_be_bytes([b[0], b[1]]))
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        let b = self.take(4)?;
        Some(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Some(u64::from_be_bytes(a))
    }

    /// A length-prefixed UTF-8 string (`len:u32` then the bytes).
    pub(crate) fn str(&mut self) -> Option<&'a str> {
        let len = self.u32()? as usize;
        std::str::from_utf8(self.take(len)?).ok()
    }
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&u32::try_from(s.len()).expect("string length").to_be_bytes());
    out.extend_from_slice(s.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_is_total_on_truncated_input() {
        let mut c = Cursor::new(&[1, 2, 3]);
        assert_eq!(c.u16(), Some(0x0102));
        assert_eq!(c.u32(), None, "not enough bytes left");
        assert_eq!(c.u8(), Some(3), "failed reads consume nothing");
        assert!(c.is_empty());
    }

    #[test]
    fn fnv_distinguishes_nearby_inputs() {
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        assert_ne!(fnv1a(b""), fnv1a(b"\0"));
    }
}
