//! Setting-scoped document keys.
//!
//! A multi-tenant server stores documents for more than one exchange
//! setting, and two tenants may well both call their document `1`. Every
//! store index — the resident map, WAL records, snapshot entries, result
//! caches — is therefore keyed by a [`DocKey`]: the pair of a **setting
//! binding id** and the document id within it.
//!
//! Setting id [`DEFAULT_SETTING`] (`0`) is the setting a server is born
//! with (the one passed to its constructor); protocol v1/v2 clients, which
//! cannot name a setting, implicitly address it. `From<u64>` maps a bare
//! document id into the default setting so single-setting embedders and the
//! pre-registry call sites keep working unchanged.

use std::fmt;

/// The implicit setting binding: what a bare document id (protocol v1/v2,
/// or `DocKey::from(doc_id)`) addresses.
pub const DEFAULT_SETTING: u64 = 0;

/// A setting-scoped document key. Ordered by `(setting, doc)`, so all of a
/// setting's documents are contiguous in the store's BTree indexes and a
/// per-setting scan is one `range`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DocKey {
    /// The setting binding id (see [`DEFAULT_SETTING`]).
    pub setting: u64,
    /// The document id within the setting.
    pub doc: u64,
}

impl DocKey {
    /// A key in an explicit setting.
    pub fn new(setting: u64, doc: u64) -> DocKey {
        DocKey { setting, doc }
    }

    /// The smallest key of `setting` (for range scans).
    pub fn setting_min(setting: u64) -> DocKey {
        DocKey { setting, doc: 0 }
    }

    /// The largest key of `setting` (for range scans).
    pub fn setting_max(setting: u64) -> DocKey {
        DocKey {
            setting,
            doc: u64::MAX,
        }
    }
}

impl From<u64> for DocKey {
    /// A bare document id addresses the default setting.
    fn from(doc: u64) -> DocKey {
        DocKey {
            setting: DEFAULT_SETTING,
            doc,
        }
    }
}

impl From<(u64, u64)> for DocKey {
    /// `(setting, doc)`.
    fn from((setting, doc): (u64, u64)) -> DocKey {
        DocKey { setting, doc }
    }
}

impl fmt::Display for DocKey {
    /// Default-setting keys print as the bare document id (matching the
    /// single-setting era's messages); scoped keys as `setting/doc`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.setting == DEFAULT_SETTING {
            write!(f, "{}", self.doc)
        } else {
            write!(f, "{}/{}", self.setting, self.doc)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_groups_by_setting() {
        let mut keys = [
            DocKey::new(1, 0),
            DocKey::new(0, 5),
            DocKey::new(1, 2),
            DocKey::new(0, 1),
        ];
        keys.sort();
        assert_eq!(
            keys,
            [
                DocKey::new(0, 1),
                DocKey::new(0, 5),
                DocKey::new(1, 0),
                DocKey::new(1, 2),
            ]
        );
        assert!(DocKey::setting_min(1) <= DocKey::new(1, 0));
        assert!(DocKey::setting_max(1) >= DocKey::new(1, u64::MAX));
    }

    #[test]
    fn bare_ids_address_the_default_setting_and_print_bare() {
        let k: DocKey = 7u64.into();
        assert_eq!(k, DocKey::new(DEFAULT_SETTING, 7));
        assert_eq!(k.to_string(), "7");
        assert_eq!(DocKey::new(3, 7).to_string(), "3/7");
        assert_eq!(DocKey::from((3, 7)), DocKey::new(3, 7));
    }
}
