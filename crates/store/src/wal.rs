//! The write-ahead log.
//!
//! Every mutation the store acknowledges — `Put`, `Edit`, `Delete` — is
//! appended here before the call returns, so a crash at any point loses at
//! most the operations whose appends had not completed (and, under a
//! batched [`SyncPolicy`], at most the unsynced tail). Recovery is
//! **prefix-consistent**: [`replay`] decodes records until the first one
//! that is torn, checksum-corrupt or semantically undecodable, keeps
//! everything before it and reports the byte offset where the valid prefix
//! ends; [`Wal::open`] truncates the file there, so a torn tail can never
//! corrupt — only shorten — history.
//!
//! # Record layout (format v2 — setting-scoped keys)
//!
//! All integers big-endian, like the rest of the workspace's formats.
//!
//! ```text
//! record  := len:u32  crc:u64  payload        -- len = |payload|, crc = FNV-1a(payload)
//! payload := op:u8  setting_id:u64  doc_id:u64  version:u64  body
//! body    := frame                            -- op 0x11 (Put): a binary document frame
//!          | n:u16  n × edit                  -- op 0x12 (Edit): see crate::edit
//!          | ε                                -- op 0x13 (Delete)
//! ```
//!
//! Format v1 (ops `1..=3`, no `setting_id`) predates the multi-tenant
//! setting registry. The op codes were bumped with the layout so a v1
//! record can never half-decode as a v2 one: replay treats a v1 log as an
//! unrecognizable tail (see `DESIGN.md` on the pre-1.0 format bump).
//!
//! `version` is the document's version **after** the operation applies — a
//! stamp from the *store-wide* monotone mutation sequence, so record
//! versions are strictly increasing through the file and never reused
//! across a delete + re-put. Replay compares them against the sequence
//! recorded in the snapshot footer to skip records the snapshot already
//! covers (which is what makes a crash between snapshot rename and WAL
//! truncation harmless — see [`crate::store`]).

use crate::bytes::{fnv1a, Cursor};
use crate::edit::{decode_edits, encode_edits, DocEdit};
use crate::key::DocKey;
use crate::vfs::{Vfs, VfsFile};
use std::fmt;
use std::path::Path;
use xdx_xmltree::limits::MAX_DOCUMENT_BYTES;

/// Upper bound on one record's payload. A `Put` carries a whole encoded
/// document, so this tracks the codec's hard cap (plus header slack) rather
/// than the much smaller per-frame wire default.
pub const MAX_RECORD_BYTES: usize = MAX_DOCUMENT_BYTES + 64;

/// When `append` pushes bytes to the kernel, when does it also `fsync`?
///
/// The choice trades the *durability* of the most recent tail against
/// throughput; it never affects consistency — recovery is prefix-consistent
/// under every policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every record (durable the moment `append` returns).
    Always,
    /// `fsync` once at least this many bytes have accumulated since the
    /// last sync — the batching mode for edit-heavy workloads.
    EveryBytes(u64),
    /// Never `fsync` from `append` (the OS flushes on its own schedule;
    /// checkpoints still sync). For tests and bulk loads.
    Never,
}

/// One logged operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// A whole document was stored (body: binary document frame).
    Put(Vec<u8>),
    /// A batch of node-local edits was applied.
    Edit(Vec<DocEdit>),
    /// The document was deleted.
    Delete,
}

/// One WAL record: which document (setting-scoped), the version after the
/// operation, and the operation itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Setting-scoped document key.
    pub key: DocKey,
    /// Document version after this operation (a store-wide sequence stamp;
    /// see the module docs).
    pub version: u64,
    /// The operation.
    pub op: WalOp,
}

// Format-v2 op codes; v1 used 1..=3 with a setting-less payload, and the
// bump keeps the two layouts from ever half-decoding as each other.
const OP_PUT: u8 = 0x11;
const OP_EDIT: u8 = 0x12;
const OP_DELETE: u8 = 0x13;

impl WalRecord {
    /// Encode the payload (everything the checksum covers).
    fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            1 + 8
                + 8
                + 8
                + match &self.op {
                    WalOp::Put(frame) => frame.len(),
                    WalOp::Edit(edits) => 2 + edits.len() * 16,
                    WalOp::Delete => 0,
                },
        );
        out.push(match &self.op {
            WalOp::Put(_) => OP_PUT,
            WalOp::Edit(_) => OP_EDIT,
            WalOp::Delete => OP_DELETE,
        });
        out.extend_from_slice(&self.key.setting.to_be_bytes());
        out.extend_from_slice(&self.key.doc.to_be_bytes());
        out.extend_from_slice(&self.version.to_be_bytes());
        match &self.op {
            WalOp::Put(frame) => out.extend_from_slice(frame),
            WalOp::Edit(edits) => encode_edits(edits, &mut out),
            WalOp::Delete => {}
        }
        out
    }

    /// Decode one payload. `None` means the payload is not a valid record
    /// (recovery treats that as the end of the consistent prefix).
    fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
        let mut c = Cursor::new(payload);
        let op = c.u8()?;
        let setting = c.u64()?;
        let doc = c.u64()?;
        let version = c.u64()?;
        let op = match op {
            OP_PUT => WalOp::Put(c.take(c.remaining())?.to_vec()),
            OP_EDIT => {
                let edits = decode_edits(&mut c).ok()?;
                if !c.is_empty() {
                    return None;
                }
                WalOp::Edit(edits)
            }
            OP_DELETE => {
                if !c.is_empty() {
                    return None;
                }
                WalOp::Delete
            }
            _ => return None,
        };
        Some(WalRecord {
            key: DocKey::new(setting, doc),
            version,
            op,
        })
    }
}

/// Decode the longest consistent prefix of a WAL image. Returns the decoded
/// records and the byte length of that prefix. Total over arbitrary bytes:
/// a torn header, a length past the buffer (or past [`MAX_RECORD_BYTES`]),
/// a checksum mismatch or an undecodable payload all just end the prefix —
/// no panic, no allocation sized from untrusted lengths.
pub fn replay(bytes: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut c = Cursor::new(bytes);
    let mut good = 0usize;
    while let Some(len) = c.u32() {
        let len = len as usize;
        if len > MAX_RECORD_BYTES {
            break;
        }
        let Some(crc) = c.u64() else { break };
        let Some(payload) = c.take(len) else { break };
        if fnv1a(payload) != crc {
            break;
        }
        let Some(rec) = WalRecord::decode_payload(payload) else {
            break;
        };
        records.push(rec);
        good = c.pos();
    }
    (records, good)
}

/// How a WAL write failed — the distinction the store's failure semantics
/// turn on (see `DESIGN.md`).
#[derive(Debug)]
pub enum WalError {
    /// The operation failed but the log was **rolled back** to its
    /// pre-operation length: the on-disk log still matches what the store
    /// has acknowledged, so the store can reject the one operation and
    /// keep serving normally.
    RolledBack(std::io::Error),
    /// The log's on-disk state is no longer known to match memory — a
    /// failed `fsync` (which may have dropped dirty pages; it is never
    /// retried), or a rollback that itself failed. The store must stop
    /// acknowledging mutations (sticky degraded mode).
    Broken(std::io::Error),
}

impl WalError {
    /// The underlying I/O error.
    pub fn io(&self) -> &std::io::Error {
        match self {
            WalError::RolledBack(e) | WalError::Broken(e) => e,
        }
    }

    /// Take the underlying I/O error.
    pub fn into_io(self) -> std::io::Error {
        match self {
            WalError::RolledBack(e) | WalError::Broken(e) => e,
        }
    }
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::RolledBack(e) => write!(f, "WAL append failed (rolled back): {e}"),
            WalError::Broken(e) => write!(f, "WAL broken (on-disk state unknown): {e}"),
        }
    }
}

impl std::error::Error for WalError {}

/// An open, append-only WAL file.
#[derive(Debug)]
pub struct Wal {
    file: Box<dyn VfsFile>,
    policy: SyncPolicy,
    unsynced: u64,
    len: u64,
    fsync_hist: Option<std::sync::Arc<xdx_obs::Histogram>>,
}

impl Wal {
    /// Open (creating if absent) the log at `path`, replay its consistent
    /// prefix, and truncate any torn tail. Returns the log positioned for
    /// appends plus the replayed records.
    pub fn open(
        vfs: &dyn Vfs,
        path: &Path,
        policy: SyncPolicy,
    ) -> std::io::Result<(Wal, Vec<WalRecord>)> {
        let bytes = match vfs.read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let (records, good) = replay(&bytes);
        let mut file = vfs.open_rw(path)?;
        if bytes.len() > good {
            file.set_len(good as u64)?;
            file.sync_all()?;
        }
        file.seek_to(good as u64)?;
        Ok((
            Wal {
                file,
                policy,
                unsynced: 0,
                len: good as u64,
                fsync_hist: None,
            },
            records,
        ))
    }

    /// Append one record (and `fsync` per the policy). The operation is
    /// recoverable once this returns — immediately under
    /// [`SyncPolicy::Always`], after the next sync otherwise.
    ///
    /// On failure the error says which side of the rollback line the log
    /// landed on: [`WalError::RolledBack`] means the log was truncated back
    /// to its pre-append length (disk still matches acknowledged history);
    /// [`WalError::Broken`] means it was not — a failed rollback, or a
    /// failed `fsync` after the bytes were already written.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), WalError> {
        let payload = record.encode_payload();
        assert!(
            payload.len() <= MAX_RECORD_BYTES,
            "WAL record exceeds MAX_RECORD_BYTES"
        );
        let mut buf = Vec::with_capacity(12 + payload.len());
        buf.extend_from_slice(
            &u32::try_from(payload.len())
                .expect("record length")
                .to_be_bytes(),
        );
        buf.extend_from_slice(&fnv1a(&payload).to_be_bytes());
        buf.extend_from_slice(&payload);
        let pre_len = self.len;
        if let Err(e) = self.file.write_all(&buf) {
            // A failed (possibly short) write: truncate the log back to the
            // acknowledged prefix and reposition. If that works, disk still
            // matches memory; if it does not, the tail is in an unknown
            // state and the log is broken. (Replay would truncate a torn
            // tail at the next open either way — the rollback is what lets
            // the *running* store keep serving.)
            return match self
                .file
                .set_len(pre_len)
                .and_then(|()| self.file.seek_to(pre_len))
            {
                Ok(()) => Err(WalError::RolledBack(e)),
                Err(_) => Err(WalError::Broken(e)),
            };
        }
        self.len += buf.len() as u64;
        self.unsynced += buf.len() as u64;
        match self.policy {
            // A failed fsync is never rolled back and never retried: the
            // kernel may have discarded the dirty pages while reporting
            // which of them reached the disk to nobody.
            SyncPolicy::Always => self.sync().map_err(WalError::Broken)?,
            SyncPolicy::EveryBytes(n) => {
                if self.unsynced >= n {
                    self.sync().map_err(WalError::Broken)?;
                }
            }
            SyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Force everything appended so far to stable storage. A failure here
    /// means durability of the unsynced tail is unknown — callers must
    /// treat it as fatal for further mutations (never retry a failed
    /// fsync; see `DESIGN.md`).
    pub fn sync(&mut self) -> std::io::Result<()> {
        if self.unsynced > 0 {
            let started = self.fsync_hist.as_ref().map(|_| std::time::Instant::now());
            self.file.sync_data()?;
            if let (Some(hist), Some(t0)) = (&self.fsync_hist, started) {
                hist.record_duration(t0.elapsed());
            }
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Record every subsequent data-`fsync` latency into `hist`. Only syncs
    /// that actually reach [`VfsFile::sync_data`] are recorded (a no-op
    /// [`Wal::sync`] with nothing unsynced is free and stays unrecorded),
    /// and failed syncs are not: the store is about to go degraded and a
    /// partial timing would pollute the latency profile.
    pub fn set_fsync_histogram(&mut self, hist: std::sync::Arc<xdx_obs::Histogram>) {
        self.fsync_hist = Some(hist);
    }

    /// Discard the whole log (a checkpoint has made it redundant). On
    /// failure the file's state is unknown — callers must treat it like a
    /// failed fsync.
    pub fn reset(&mut self) -> std::io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek_to(0)?;
        self.file.sync_all()?;
        self.len = 0;
        self.unsynced = 0;
        Ok(())
    }

    /// Current byte length of the log.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdx_xmltree::AttrName;
    use xdx_xmltree::Value;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord {
                key: DocKey::from(1),
                version: 1,
                op: WalOp::Put(vec![1, 2, 3, 4]),
            },
            WalRecord {
                key: DocKey::new(9, 1),
                version: 2,
                op: WalOp::Edit(vec![DocEdit::SetAttr {
                    node: 0,
                    name: AttrName::new("@a"),
                    value: Value::constant("v"),
                }]),
            },
            WalRecord {
                key: DocKey::from(1),
                version: 3,
                op: WalOp::Delete,
            },
        ]
    }

    fn encode_all(records: &[WalRecord]) -> Vec<u8> {
        let mut out = Vec::new();
        for r in records {
            let payload = r.encode_payload();
            out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
            out.extend_from_slice(&fnv1a(&payload).to_be_bytes());
            out.extend_from_slice(&payload);
        }
        out
    }

    #[test]
    fn records_round_trip() {
        let records = sample_records();
        let bytes = encode_all(&records);
        let (back, good) = replay(&bytes);
        assert_eq!(back, records);
        assert_eq!(good, bytes.len());
    }

    #[test]
    fn every_truncation_recovers_a_record_prefix() {
        let records = sample_records();
        let bytes = encode_all(&records);
        for cut in 0..bytes.len() {
            let (back, good) = replay(&bytes[..cut]);
            assert!(good <= cut);
            assert_eq!(back.as_slice(), &records[..back.len()], "prefix property");
            // Re-replaying the reported-good prefix yields the same records.
            let (again, good2) = replay(&bytes[..good]);
            assert_eq!(again, back);
            assert_eq!(good2, good);
        }
    }

    #[test]
    fn corrupt_tails_stop_the_replay_cleanly() {
        let records = sample_records();
        let bytes = encode_all(&records);
        // Flip one bit inside the *last* record's payload: the first two
        // records must survive, the last must be dropped.
        let mut b = bytes.clone();
        let last = b.len() - 2;
        b[last] ^= 0x40;
        let (back, good) = replay(&b);
        assert_eq!(back, records[..2]);
        assert!(good < bytes.len());
    }

    #[test]
    fn garbage_never_panics_and_yields_nothing() {
        let (r, good) = replay(&[0xff; 37]);
        assert!(r.is_empty());
        assert_eq!(good, 0);
        // A length field claiming more than the cap.
        let mut b = (u32::MAX).to_be_bytes().to_vec();
        b.extend_from_slice(&[0u8; 32]);
        let (r, good) = replay(&b);
        assert!(r.is_empty());
        assert_eq!(good, 0);
    }

    #[test]
    fn format_v1_records_do_not_half_decode() {
        // A well-checksummed v1 record (op 1, no setting_id): the v2
        // decoder must reject it outright — ending the prefix — rather
        // than misread its fields into a scoped key.
        let mut payload = vec![1u8]; // v1 OP_PUT
        payload.extend_from_slice(&7u64.to_be_bytes()); // doc_id
        payload.extend_from_slice(&1u64.to_be_bytes()); // version
        payload.extend_from_slice(&[0xAA; 16]); // frame
        let mut bytes = (payload.len() as u32).to_be_bytes().to_vec();
        bytes.extend_from_slice(&fnv1a(&payload).to_be_bytes());
        bytes.extend_from_slice(&payload);
        let (records, good) = replay(&bytes);
        assert!(records.is_empty());
        assert_eq!(good, 0);
    }

    #[test]
    fn open_truncates_torn_tails_and_appends_after_them() {
        let dir = std::env::temp_dir().join(format!("xdx-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);

        let records = sample_records();
        let mut torn = encode_all(&records[..2]);
        let keep = torn.len();
        torn.extend_from_slice(&encode_all(&records[2..])[..7]); // torn third record
        std::fs::write(&path, &torn).unwrap();

        let (mut wal, replayed) =
            Wal::open(&crate::vfs::RealVfs, &path, SyncPolicy::Always).unwrap();
        assert_eq!(replayed, records[..2]);
        assert_eq!(wal.len(), keep as u64);
        wal.append(&records[2]).unwrap();
        drop(wal);

        let (_, replayed) = Wal::open(&crate::vfs::RealVfs, &path, SyncPolicy::Never).unwrap();
        assert_eq!(
            replayed, records,
            "append lands cleanly after the truncation"
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn failed_appends_roll_the_log_back_to_the_acknowledged_prefix() {
        use crate::vfs::{FaultKind, FaultPlan, FaultVfs};
        let dir = std::env::temp_dir().join(format!("xdx-wal-rollback-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        let records = sample_records();

        let vfs = FaultVfs::real(FaultPlan::count_only());
        let (mut wal, _) = Wal::open(&vfs, &path, SyncPolicy::Always).unwrap();
        wal.append(&records[0]).unwrap();
        // Fail the next write with a torn (short) write: the rollback must
        // truncate the partial record so the on-disk log still holds
        // exactly the acknowledged record.
        let next_write = vfs.ops(); // append's write_all is the next op
        vfs.set_plan(FaultPlan::fail_op_with(next_write, FaultKind::ShortWrite));
        let err = wal.append(&records[1]).unwrap_err();
        assert!(matches!(err, WalError::RolledBack(_)), "{err}");
        assert_eq!(wal.len(), {
            let p = records[0].encode_payload();
            (12 + p.len()) as u64
        });
        // The log keeps working: the rolled-back record can be re-appended.
        wal.append(&records[1]).unwrap();
        drop(wal);
        let (_, replayed) = Wal::open(&crate::vfs::RealVfs, &path, SyncPolicy::Never).unwrap();
        assert_eq!(replayed, records[..2]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_fsyncs_report_the_log_broken() {
        use crate::vfs::{FaultPlan, FaultVfs};
        let dir = std::env::temp_dir().join(format!("xdx-wal-fsync-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        let records = sample_records();

        let vfs = FaultVfs::real(FaultPlan::count_only());
        let (mut wal, _) = Wal::open(&vfs, &path, SyncPolicy::Always).unwrap();
        wal.append(&records[0]).unwrap();
        vfs.set_plan(FaultPlan::fail_sync(vfs.sync_ops()));
        let err = wal.append(&records[1]).unwrap_err();
        assert!(matches!(err, WalError::Broken(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
