//! The store's filesystem seam.
//!
//! Every byte the store moves to or from disk goes through a [`Vfs`] — a
//! small trait covering exactly the operations the WAL, the snapshot writer
//! and the store's open path perform: whole-file reads, append-oriented
//! opens, truncating creates, rename, remove, and file/directory fsync.
//! Production uses [`RealVfs`] (a thin veneer over `std::fs`); tests wrap
//! it in a [`FaultVfs`] that injects one deterministic failure — an error,
//! a short write, a failed fsync — at a chosen operation index, which is
//! what makes *every* I/O failure point in the store reachable from the
//! fault-matrix harness without touching a real disk's error paths.
//!
//! The seam deliberately excludes the advisory lock file: lock acquisition
//! failures are an ordinary, already-tested error path
//! ([`crate::store::StoreError::Locked`]), and injecting faults there would
//! only test `std`.

use std::fmt::Debug;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// An open file handle, as the store uses one: sequential appends, explicit
/// syncs, truncation, and repositioning. Reads happen through
/// [`Vfs::read`] (the store only ever reads whole files).
pub trait VfsFile: Debug + Send {
    /// Write the whole buffer at the current position.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// `fdatasync` — flush file data (not necessarily metadata).
    fn sync_data(&mut self) -> io::Result<()>;
    /// `fsync` — flush file data and metadata.
    fn sync_all(&mut self) -> io::Result<()>;
    /// Truncate (or extend) the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Reposition to absolute offset `pos`.
    fn seek_to(&mut self, pos: u64) -> io::Result<()>;
}

/// The filesystem operations the store performs. Implementations must be
/// shareable across threads (the server keeps one store behind a mutex but
/// opens it from whichever thread constructs it).
pub trait Vfs: Debug + Send + Sync {
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Open for read+write, creating if absent, **without** truncating —
    /// the WAL's open mode.
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Create (truncating) for write — the snapshot tmp file's mode.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Atomically rename `from` over `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Open `dir` and fsync it — what persists a rename within it.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Create a directory and its parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
}

/// The production [`Vfs`]: `std::fs`, nothing else.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealVfs;

#[derive(Debug)]
struct RealFile(std::fs::File);

impl VfsFile for RealFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        io::Write::write_all(&mut self.0, buf)
    }
    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
    fn seek_to(&mut self, pos: u64) -> io::Result<()> {
        io::Seek::seek(&mut self.0, io::SeekFrom::Start(pos)).map(|_| ())
    }
}

impl Vfs for RealVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)?;
        Ok(Box::new(RealFile(file)))
    }
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile(std::fs::File::create(path)?)))
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Directories cannot be opened for sync on every platform; opening
        // read-only is the portable approximation.
        std::fs::File::open(dir)?.sync_all()
    }
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }
}

/// How an injected fault manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails outright, touching nothing.
    Error,
    /// A write lands only a prefix of its buffer before failing — a torn
    /// write. Non-write operations scheduled with this kind fail outright.
    ShortWrite,
}

/// One deterministic fault schedule. Operations are counted in the order
/// the store performs them; the schedule names which one fails and how.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Fail the operation with this 0-based index (`None`: count only).
    pub fail_at: Option<u64>,
    /// How the chosen operation fails.
    pub kind: FaultKind,
    /// Count (and fail) only sync operations (`sync_data`/`sync_all`/
    /// `sync_dir`) — the fsync-error schedules.
    pub sync_only: bool,
    /// Error-then-recover: disarm after the first injection, so every
    /// later operation succeeds.
    pub once: bool,
}

impl FaultPlan {
    /// Count operations without ever failing one (the matrix's sizing run).
    pub fn count_only() -> FaultPlan {
        FaultPlan {
            fail_at: None,
            kind: FaultKind::Error,
            sync_only: false,
            once: false,
        }
    }

    /// Fail operation `n` with an outright error, then recover.
    pub fn fail_op(n: u64) -> FaultPlan {
        FaultPlan {
            fail_at: Some(n),
            kind: FaultKind::Error,
            sync_only: false,
            once: true,
        }
    }

    /// Fail operation `n` with `kind`, then recover.
    pub fn fail_op_with(n: u64, kind: FaultKind) -> FaultPlan {
        FaultPlan {
            fail_at: Some(n),
            kind,
            sync_only: false,
            once: true,
        }
    }

    /// Fail the `n`-th **sync** operation (fsync-error schedule).
    pub fn fail_sync(n: u64) -> FaultPlan {
        FaultPlan {
            fail_at: Some(n),
            kind: FaultKind::Error,
            sync_only: true,
            once: true,
        }
    }

    /// A schedule derived deterministically from `seed`: some operation in
    /// `0..horizon` fails, with kind, sync-scoping and recovery chosen by
    /// the seed's bits. Two runs with the same seed inject identically.
    pub fn seeded(seed: u64, horizon: u64) -> FaultPlan {
        // xorshift64: deterministic, dependency-free.
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let fail_at = next() % horizon.max(1);
        let kind = if next() % 3 == 0 {
            FaultKind::ShortWrite
        } else {
            FaultKind::Error
        };
        let sync_only = next() % 4 == 0;
        FaultPlan {
            fail_at: Some(fail_at),
            kind,
            sync_only,
            once: next() % 2 == 0,
        }
    }
}

#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    /// Fallible operations seen (every class).
    ops: u64,
    /// Sync-class operations seen.
    sync_ops: u64,
    /// Faults injected.
    injected: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpClass {
    Sync,
    Write,
    Other,
}

/// A [`Vfs`] wrapper that injects one scheduled failure (see [`FaultPlan`])
/// and counts every fallible operation, including those performed through
/// files it has already handed out. Cloning shares the schedule and the
/// counters, so a test can keep a handle while the store owns another.
#[derive(Debug, Clone)]
pub struct FaultVfs {
    inner: Arc<dyn Vfs>,
    state: Arc<Mutex<FaultState>>,
}

impl FaultVfs {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: Arc<dyn Vfs>, plan: FaultPlan) -> FaultVfs {
        FaultVfs {
            inner,
            state: Arc::new(Mutex::new(FaultState {
                plan,
                ops: 0,
                sync_ops: 0,
                injected: 0,
            })),
        }
    }

    /// Wrap the real filesystem under `plan`.
    pub fn real(plan: FaultPlan) -> FaultVfs {
        FaultVfs::new(Arc::new(RealVfs), plan)
    }

    /// Total fallible operations observed so far.
    pub fn ops(&self) -> u64 {
        self.state.lock().expect("fault state").ops
    }

    /// Sync-class operations observed so far.
    pub fn sync_ops(&self) -> u64 {
        self.state.lock().expect("fault state").sync_ops
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.state.lock().expect("fault state").injected
    }

    /// Replace the schedule (counters keep running).
    pub fn set_plan(&self, plan: FaultPlan) {
        self.state.lock().expect("fault state").plan = plan;
    }

    /// Count one operation of `class`; `Some(kind)` means it must fail.
    fn check(&self, class: OpClass) -> Option<FaultKind> {
        let mut st = self.state.lock().expect("fault state");
        let idx = if class == OpClass::Sync {
            st.sync_ops += 1;
            st.sync_ops - 1
        } else {
            st.ops
        };
        st.ops += 1;
        let idx = if st.plan.sync_only {
            if class != OpClass::Sync {
                return None;
            }
            idx
        } else {
            st.ops - 1
        };
        if st.plan.fail_at == Some(idx) {
            st.injected += 1;
            if st.plan.once {
                st.plan.fail_at = None;
            }
            Some(st.plan.kind)
        } else {
            None
        }
    }

    fn injected_error(&self, what: &str) -> io::Error {
        io::Error::other(format!("injected fault: {what}"))
    }
}

#[derive(Debug)]
struct FaultFile {
    inner: Box<dyn VfsFile>,
    vfs: FaultVfs,
}

impl VfsFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.vfs.check(OpClass::Write) {
            None => self.inner.write_all(buf),
            Some(FaultKind::Error) => Err(self.vfs.injected_error("write_all")),
            Some(FaultKind::ShortWrite) => {
                // A torn write: a prefix reaches the file, the rest never
                // does, and the caller sees a failure.
                let half = buf.len() / 2;
                let _ = self.inner.write_all(&buf[..half]);
                Err(self.vfs.injected_error("short write"))
            }
        }
    }
    fn sync_data(&mut self) -> io::Result<()> {
        match self.vfs.check(OpClass::Sync) {
            None => self.inner.sync_data(),
            Some(_) => Err(self.vfs.injected_error("sync_data")),
        }
    }
    fn sync_all(&mut self) -> io::Result<()> {
        match self.vfs.check(OpClass::Sync) {
            None => self.inner.sync_all(),
            Some(_) => Err(self.vfs.injected_error("sync_all")),
        }
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        match self.vfs.check(OpClass::Other) {
            None => self.inner.set_len(len),
            Some(_) => Err(self.vfs.injected_error("set_len")),
        }
    }
    fn seek_to(&mut self, pos: u64) -> io::Result<()> {
        // Repositioning is a pure in-process state change; not a fault site.
        self.inner.seek_to(pos)
    }
}

impl Vfs for FaultVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.check(OpClass::Other) {
            None => self.inner.read(path),
            Some(_) => Err(self.injected_error("read")),
        }
    }
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        match self.check(OpClass::Other) {
            None => Ok(Box::new(FaultFile {
                inner: self.inner.open_rw(path)?,
                vfs: self.clone(),
            })),
            Some(_) => Err(self.injected_error("open_rw")),
        }
    }
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        match self.check(OpClass::Other) {
            None => Ok(Box::new(FaultFile {
                inner: self.inner.create(path)?,
                vfs: self.clone(),
            })),
            Some(_) => Err(self.injected_error("create")),
        }
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.check(OpClass::Other) {
            None => self.inner.rename(from, to),
            Some(_) => Err(self.injected_error("rename")),
        }
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.check(OpClass::Other) {
            None => self.inner.remove_file(path),
            Some(_) => Err(self.injected_error("remove_file")),
        }
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        match self.check(OpClass::Sync) {
            None => self.inner.sync_dir(dir),
            Some(_) => Err(self.injected_error("sync_dir")),
        }
    }
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        // Store-open plumbing, not a per-operation fault site worth a
        // matrix slot: a failure here is indistinguishable from open_rw
        // failing on the WAL path.
        self.inner.create_dir_all(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fail_op_schedules_hit_exactly_once_and_recover() {
        let dir = std::env::temp_dir().join(format!("xdx-vfs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f");
        let vfs = FaultVfs::real(FaultPlan::fail_op(1));
        let mut f = vfs.create(&path).unwrap(); // op 0
        let err = f.write_all(b"abc").unwrap_err(); // op 1: injected
        assert!(err.to_string().contains("injected"));
        f.write_all(b"abc").unwrap(); // recovered (once)
        assert_eq!(vfs.injected(), 1);
        assert_eq!(vfs.ops(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_writes_leave_a_prefix() {
        let dir = std::env::temp_dir().join(format!("xdx-vfs-short-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f");
        let vfs = FaultVfs::real(FaultPlan::fail_op_with(1, FaultKind::ShortWrite));
        let mut f = vfs.create(&path).unwrap();
        assert!(f.write_all(b"abcdefgh").is_err());
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"abcd");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_only_schedules_skip_other_classes() {
        let dir = std::env::temp_dir().join(format!("xdx-vfs-sync-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f");
        let vfs = FaultVfs::real(FaultPlan::fail_sync(0));
        let mut f = vfs.create(&path).unwrap();
        f.write_all(b"abc").unwrap();
        assert!(f.sync_data().is_err(), "first sync-class op fails");
        f.write_all(b"def").unwrap();
        f.sync_data().unwrap();
        assert_eq!(vfs.injected(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        for seed in 0..64 {
            let a = FaultPlan::seeded(seed, 100);
            let b = FaultPlan::seeded(seed, 100);
            assert_eq!(a.fail_at, b.fail_at);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.sync_only, b.sync_only);
            assert_eq!(a.once, b.once);
            assert!(a.fail_at.unwrap() < 100);
        }
    }
}
