//! # xdx-server — async serving front-end for XML data exchange
//!
//! The network layer of the XML data exchange system reproducing
//! Arenas & Libkin, *"XML Data Exchange: Consistency and Query Answering"*
//! (PODS 2005 / JACM 2008): a dependency-free server exposing the four
//! long-running operations of the exchange pipeline —
//!
//! * **CheckConsistency** — is each source document a conforming instance
//!   with a solution?
//! * **CanonicalSolution** — the Section 6.1 chase result per document;
//! * **CertainAnswers** / **CertainAnswersBoolean** — certain answers of a
//!   conjunctive tree query (Section 7 semantics) per document;
//!
//! over both TCP and Unix-domain sockets, speaking a length-prefixed binary
//! protocol (see `PROTOCOL.md` and [`wire`]). Protocol v2 adds an opt-in
//! zero-copy serving path, negotiated per connection with a `Hello` frame:
//! documents travel as [`xdx_xmltree::binary`] preorder frames instead of
//! text ([`wire::FEATURE_BINARY_DOCS`]), and large responses stream as
//! bounded `STATUS_OK_PARTIAL` chunks ([`wire::FEATURE_CHUNKED_RESPONSES`])
//! serialized by the workers directly into the connection's write queue.
//! Connections that never send `Hello` speak v1 unchanged.
//!
//! When [`server::ServerConfig::store_dir`] is set the server also mounts a
//! resident [`xdx_store::DocStore`]: documents persist across restarts
//! (binary snapshot + write-ahead log), node-local edit batches re-validate
//! in time proportional to the touched region, and per-document answer
//! caches serve repeated queries without re-running the chase. The store
//! ops (`PutDoc`/`GetDoc`/`EditDoc`/`DeleteDoc` and the `*Stored` query
//! variants) answer byte-for-byte like their ship-the-document twins.
//!
//! The design (see [`server`] for details): a **single-threaded
//! non-blocking event loop** on raw `epoll` ([`sys`]) owns every socket and
//! enforces backpressure (bounded per-connection pipelining, a global
//! in-flight budget, `Busy` frames when saturated), while a **worker pool**
//! sharing one [`xdx_core::CompiledSetting`] — the same substrate
//! [`xdx_core::BatchEngine`] batches over — parses documents, runs the
//! exchange pipeline with per-worker scratch reuse, and hands encoded
//! frames back through a completion queue and a wake pipe.
//!
//! The container this workspace builds in has no crates.io access, so
//! there is no `tokio`/`mio`/`libc` here: [`sys`] declares the three
//! `epoll` entry points itself, `std` provides the sockets, and everything
//! else is hand-rolled — which also keeps the event loop honest about
//! every allocation and syscall on the hot path.
//!
//! [`client`] is a small blocking client used by the integration tests,
//! `examples/serve.rs` and the E14 serving benchmark.

#![warn(missing_docs)]
// `unsafe` is confined to the epoll FFI in `sys`; everything else in the
// crate (and the rest of the workspace) forbids it.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod client;
mod registry;
pub mod server;
pub mod sys;
mod transport;
pub mod wire;

pub use client::{Client, ClientError, RetryPolicy, StatsSnapshot, DEFAULT_TIMEOUT};
pub use server::{ConfigError, Server, ServerConfig, ServerControl, StatsHandle};
pub use wire::{
    Codec, DocResult, ErrorCode, OpCode, RequestBody, RequestFrame, ResponseBody, ResponseFrame,
    SettingEntry, StatsHistogram, WireDoc, WireError, FEATURE_BINARY_DOCS,
    FEATURE_CHUNKED_RESPONSES, FEATURE_SETTINGS, FEATURE_STATS_V2, SUPPORTED_FEATURES,
};
