//! The one stream type both ends of the protocol read and write: a TCP or
//! Unix-domain socket behind a uniform `Read`/`Write` face. Shared by the
//! event loop ([`crate::server`]) and the blocking client
//! ([`crate::client`]) so transport-level changes (vectored writes, read
//! timeouts, TLS once a crypto dependency exists) land in exactly one
//! place.

use std::io::{self, IoSlice, Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// A connected stream socket of either family.
pub(crate) enum Duplex {
    /// TCP.
    Tcp(TcpStream),
    /// Unix-domain.
    Unix(UnixStream),
}

impl Duplex {
    /// The raw fd, for epoll registration.
    pub(crate) fn raw_fd(&self) -> i32 {
        match self {
            Duplex::Tcp(s) => s.as_raw_fd(),
            Duplex::Unix(s) => s.as_raw_fd(),
        }
    }

    /// Switch the socket into non-blocking mode (the event loop's shape).
    pub(crate) fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Duplex::Tcp(s) => s.set_nonblocking(nonblocking),
            Duplex::Unix(s) => s.set_nonblocking(nonblocking),
        }
    }

    /// Bound every blocking `read` on the socket (the blocking client's
    /// stall guard). `None` restores "wait forever".
    pub(crate) fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Duplex::Tcp(s) => s.set_read_timeout(timeout),
            Duplex::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    /// Bound every blocking `write` on the socket.
    pub(crate) fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Duplex::Tcp(s) => s.set_write_timeout(timeout),
            Duplex::Unix(s) => s.set_write_timeout(timeout),
        }
    }
}

impl Read for Duplex {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Duplex::Tcp(s) => s.read(buf),
            Duplex::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Duplex {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Duplex::Tcp(s) => s.write(buf),
            Duplex::Unix(s) => s.write(buf),
        }
    }

    /// Gathered write: both socket families forward this to `writev(2)`,
    /// so the event loop flushes a queue of response segments (frame
    /// headers + body chunks) in one syscall instead of one per segment.
    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
        match self {
            Duplex::Tcp(s) => s.write_vectored(bufs),
            Duplex::Unix(s) => s.write_vectored(bufs),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Duplex::Tcp(s) => s.flush(),
            Duplex::Unix(s) => s.flush(),
        }
    }
}
