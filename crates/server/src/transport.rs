//! The one stream type both ends of the protocol read and write: a TCP or
//! Unix-domain socket behind a uniform `Read`/`Write` face. Shared by the
//! event loop ([`crate::server`]) and the blocking client
//! ([`crate::client`]) so transport-level changes (vectored writes, read
//! timeouts, TLS once a crypto dependency exists) land in exactly one
//! place.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;

/// A connected stream socket of either family.
pub(crate) enum Duplex {
    /// TCP.
    Tcp(TcpStream),
    /// Unix-domain.
    Unix(UnixStream),
}

impl Duplex {
    /// The raw fd, for epoll registration.
    pub(crate) fn raw_fd(&self) -> i32 {
        match self {
            Duplex::Tcp(s) => s.as_raw_fd(),
            Duplex::Unix(s) => s.as_raw_fd(),
        }
    }

    /// Switch the socket into non-blocking mode (the event loop's shape).
    pub(crate) fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Duplex::Tcp(s) => s.set_nonblocking(nonblocking),
            Duplex::Unix(s) => s.set_nonblocking(nonblocking),
        }
    }
}

impl Read for Duplex {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Duplex::Tcp(s) => s.read(buf),
            Duplex::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Duplex {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Duplex::Tcp(s) => s.write(buf),
            Duplex::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Duplex::Tcp(s) => s.flush(),
            Duplex::Unix(s) => s.flush(),
        }
    }
}
