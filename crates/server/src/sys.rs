//! Minimal `epoll` wrapper — the only `unsafe` in the crate.
//!
//! The build environment has no crates.io access, so instead of the `libc`
//! or `mio` crates this module declares the three `epoll` entry points as
//! `extern "C"` symbols (they live in the C library the Rust standard
//! library already links) and wraps them in a safe [`Epoll`] type, exactly
//! in the spirit of the workspace's `shims/` crates: the smallest API
//! subset the server needs, nothing more.
//!
//! Everything else the event loop touches (TCP/Unix sockets, the wake pipe)
//! goes through `std`'s safe non-blocking I/O; only registration and
//! readiness polling need raw syscalls.

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::os::raw::c_int;

/// The kernel's `struct epoll_event`. On x86-64 the kernel declares it
/// packed (no padding between the 32-bit mask and the 64-bit payload);
/// other architectures use natural alignment — mirroring glibc's
/// definition.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct RawEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut RawEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut RawEvent, maxevents: c_int, timeout: c_int) -> c_int;
}

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

/// Readiness: the fd has data to read.
pub const EPOLLIN: u32 = 0x001;
/// Readiness: the fd accepts writes without blocking.
pub const EPOLLOUT: u32 = 0x004;
/// Condition: error on the fd (always reported, no need to register).
pub const EPOLLERR: u32 = 0x008;
/// Condition: hang-up (always reported, no need to register).
pub const EPOLLHUP: u32 = 0x010;
/// Condition: peer closed its writing half (must be registered).
pub const EPOLLRDHUP: u32 = 0x2000;

/// One readiness notification: the registered token plus the event mask.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The `u64` token the fd was registered with.
    pub token: u64,
    /// The raw `EPOLL*` bit mask.
    pub events: u32,
}

impl Event {
    /// Is there data to read (or an accepted connection to take)?
    pub fn readable(&self) -> bool {
        self.events & EPOLLIN != 0
    }

    /// Can the fd be written without blocking?
    pub fn writable(&self) -> bool {
        self.events & EPOLLOUT != 0
    }

    /// Error or hang-up (either direction)?
    pub fn closed(&self) -> bool {
        self.events & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0
    }
}

/// A safe wrapper over an `epoll` instance. The fd is owned and closed on
/// drop.
#[derive(Debug)]
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// Create a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: plain syscall, no pointers; a negative return is an error.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: `fd` is a freshly created, otherwise unowned descriptor.
        Ok(Epoll {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = RawEvent {
            events,
            data: token,
        };
        let ev_ptr = if op == EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut ev
        };
        // SAFETY: `ev_ptr` is either null (DEL, where the kernel ignores it)
        // or points at a live, properly laid-out RawEvent for the duration
        // of the call.
        let rc = unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, ev_ptr) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    /// Register `fd` with the given interest mask and token.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Change the interest mask of a registered fd.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregister a fd (no-op error if it was never registered).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Wait for readiness, appending into `out` (cleared first).
    /// `timeout_ms < 0` blocks indefinitely; `EINTR` retries transparently.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        out.clear();
        const CAP: usize = 256;
        let mut raw = [RawEvent { events: 0, data: 0 }; CAP];
        loop {
            // SAFETY: the buffer pointer is valid for CAP entries for the
            // duration of the call; the kernel writes at most CAP of them.
            let n = unsafe {
                epoll_wait(
                    self.fd.as_raw_fd(),
                    raw.as_mut_ptr(),
                    CAP as c_int,
                    timeout_ms,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            for ev in raw.iter().take(n as usize) {
                // Copy out of the (possibly packed) struct field by value.
                let (events, data) = (ev.events, ev.data);
                out.push(Event {
                    token: data,
                    events,
                });
            }
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::net::UnixStream;

    #[test]
    fn epoll_reports_readability_and_writability() {
        let epoll = Epoll::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        epoll.add(b.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 7).unwrap();

        let mut events = Vec::new();
        epoll.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "nothing readable yet");

        a.write_all(b"x").unwrap();
        epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable());

        // Switch interest to writability: an idle socket is writable.
        epoll.modify(b.as_raw_fd(), EPOLLOUT, 8).unwrap();
        epoll.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 8 && e.writable()));

        // Peer hang-up surfaces as closed().
        epoll
            .modify(b.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 9)
            .unwrap();
        drop(a);
        epoll.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 9 && e.closed()));

        epoll.delete(b.as_raw_fd()).unwrap();
        epoll.wait(&mut events, 0).unwrap();
        assert!(events.is_empty());
    }
}
