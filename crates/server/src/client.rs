//! A blocking client for the wire protocol, used by integration tests,
//! `examples/serve.rs` and the serving benchmark.
//!
//! One [`Client`] owns one connection. The high-level methods send one
//! request and wait for its response; [`Client::send`] / [`Client::recv`]
//! expose the raw pipelined form (multiple requests in flight, responses
//! correlated by id) for backpressure tests and throughput measurements.
//!
//! A fresh connection speaks protocol v1 (text documents, whole-frame
//! responses). [`Client::negotiate`] sends a `Hello` to switch on v2
//! features — [`Client::use_binary`] is the common shorthand for "binary
//! document codec + chunked responses". Chunked (`STATUS_OK_PARTIAL`)
//! response frames are reassembled transparently inside [`Client::recv`],
//! so callers always see whole logical responses; chunks of *different*
//! ids may interleave on the wire when requests are pipelined.

use crate::transport::Duplex;
use crate::wire::{
    self, Codec, DocResult, RequestBody, RequestFrame, ResponseBody, ResponseFrame, SettingEntry,
    WireDoc, WireError,
};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;
use xdx_patterns::query::UnionQuery;
use xdx_xmltree::XmlTree;

/// Upper bound on (reassembled) response payloads the client will accept
/// (a server response can legitimately exceed the request cap — canonical
/// solutions grow — but a corrupt length field must not trigger a huge
/// allocation).
const MAX_RESPONSE_BYTES: usize = 256 * 1024 * 1024;

/// Default socket read/write timeout applied by [`Client::connect_tcp`]
/// and [`Client::connect_unix`] — a hung server surfaces as an error
/// instead of blocking the caller forever. Override (or disable with
/// `None`) via [`Client::set_timeout`].
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

/// A typed `Stats` response: flat counters, plus histogram rows when the
/// connection negotiated [`wire::FEATURE_STATS_V2`] (empty against a v4
/// server or without negotiation). Both lists are sorted ascending by
/// name. The [`std::fmt::Display`] impl renders the operator-facing form
/// `--client-smoke` prints.
#[derive(Debug, Clone, Default)]
pub struct StatsSnapshot {
    /// Counter rows (name, value).
    pub counters: Vec<(String, u64)>,
    /// Histogram rows in sparse wire form; rebuild with
    /// [`xdx_obs::HistogramSnapshot::from_sparse`] for percentiles.
    pub histograms: Vec<wire::StatsHistogram>,
}

impl StatsSnapshot {
    /// Look up one counter by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Look up one histogram row by exact name.
    pub fn histogram(&self, name: &str) -> Option<&wire::StatsHistogram> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.histograms.iter().map(|h| h.name.len()))
            .max()
            .unwrap_or(0);
        for (name, value) in &self.counters {
            writeln!(f, "{name:<width$}  {value}")?;
        }
        for h in &self.histograms {
            let snap = xdx_obs::HistogramSnapshot::from_sparse(
                h.count,
                h.sum,
                h.min,
                h.max,
                h.buckets.iter().copied(),
            );
            let unit = xdx_obs::Unit::from_tag(h.unit).suffix();
            writeln!(
                f,
                "{:<width$}  count={} p50={}{unit} p90={}{unit} p99={}{unit} max={}{unit}",
                h.name,
                snap.count,
                snap.p50(),
                snap.p90(),
                snap.p99(),
                snap.max,
            )?;
        }
        Ok(())
    }
}

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server sent something the client cannot decode.
    Protocol(String),
    /// The server rejected the whole request with a structured error frame.
    Remote(WireError),
    /// The server is saturated; retry later.
    Busy,
    /// The server is draining for shutdown; the request was not executed
    /// and the connection is about to close. Retry against another (or a
    /// restarted) server.
    GoAway,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Remote(e) => write!(f, "server error: {e}"),
            ClientError::Busy => write!(f, "server busy"),
            ClientError::GoAway => write!(f, "server draining for shutdown"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Capped exponential backoff with jitter, driving the [`Client`]'s
/// automatic retries (see [`Client::set_retry_policy`]).
///
/// What retries is decided by *safety*, not by the policy:
///
/// * `Busy` and `GoAway` responses — the server answered without starting
///   the work, so **every** op retries (after a reconnect, for `GoAway`);
/// * connection failures while *reconnecting* — nothing was sent;
/// * transport failures mid-request — the server may or may not have
///   executed the op, so only ops whose duplicate execution is harmless or
///   detectable retry: the pure-compute ops, all reads, and `EditDoc`
///   *with a compare-and-swap `base_version`* (a duplicate apply fails
///   loudly as `VersionConflict` instead of applying twice). `PutDoc`,
///   `DeleteDoc`, unguarded `EditDoc` and the registry mutations are never
///   blindly re-sent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 disables retrying).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per retry up to
    /// [`RetryPolicy::max_backoff`].
    pub initial_backoff: Duration,
    /// Backoff cap.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 5,
            initial_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_secs(1),
        }
    }
}

/// How this client was connected, retained so a broken connection can be
/// re-established transparently under a [`RetryPolicy`].
#[derive(Debug, Clone)]
enum ConnectTarget {
    Tcp(String),
    Unix(PathBuf),
}

/// May `body` be re-sent when the client cannot know whether the server
/// executed the first attempt?
fn safe_to_resend(body: &RequestBody) -> bool {
    match body {
        RequestBody::Ping
        | RequestBody::Hello { .. }
        | RequestBody::CheckConsistency { .. }
        | RequestBody::CanonicalSolution { .. }
        | RequestBody::CertainAnswers { .. }
        | RequestBody::CertainAnswersBoolean { .. }
        | RequestBody::GetDoc { .. }
        | RequestBody::CheckConsistencyStored { .. }
        | RequestBody::CanonicalSolutionStored { .. }
        | RequestBody::CertainAnswersStored { .. }
        | RequestBody::CertainAnswersBooleanStored { .. }
        | RequestBody::ListSettings
        | RequestBody::Stats => true,
        // The CAS guard turns a duplicate apply into a VersionConflict
        // error; an unguarded edit would silently apply twice.
        RequestBody::EditDoc { base_version, .. } => *base_version != 0,
        RequestBody::PutDoc { .. }
        | RequestBody::DeleteDoc { .. }
        | RequestBody::PutSetting { .. }
        | RequestBody::EvictSetting { .. } => false,
    }
}

/// A blocking connection to an `xdx-server`.
pub struct Client {
    transport: Duplex,
    next_id: u64,
    /// Negotiated document codec (see [`Client::negotiate`]).
    codec: Codec,
    /// Did the server accept [`wire::FEATURE_SETTINGS`]? Only then do
    /// request frames carry a setting id.
    settings: bool,
    /// The setting id stamped on every request ([`Client::set_setting`]).
    setting_id: u64,
    /// Request encode buffer, reused across pipelined sends: 4 reserved
    /// framing bytes + the payload, patched and written in one `write_all`.
    ebuf: Vec<u8>,
    /// In-progress chunked responses: id → (accumulated body, chunk count).
    partials: HashMap<u64, (Vec<u8>, usize)>,
    /// Wire frames the last logical response arrived in (1 = unchunked).
    last_chunks: usize,
    /// Where this client dialed, retained for [`Client::reconnect`].
    target: Option<ConnectTarget>,
    /// The socket timeout in force, re-applied after a reconnect.
    timeout: Option<Duration>,
    /// Features last passed to [`Client::negotiate`], re-negotiated after
    /// a reconnect.
    requested_features: Option<u32>,
    /// The connection is known dead (transport error or `GoAway`); the
    /// next retried request reconnects first.
    broken: bool,
    /// Automatic retry policy; `None` surfaces every failure to the caller.
    retry: Option<RetryPolicy>,
    /// xorshift64 state for backoff jitter (always nonzero).
    jitter: u64,
}

impl Client {
    fn new(transport: Duplex, target: Option<ConnectTarget>) -> Client {
        let jitter = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15)
            | 1;
        Client {
            transport,
            next_id: 1,
            codec: Codec::Text,
            settings: false,
            setting_id: 0,
            ebuf: Vec::new(),
            partials: HashMap::new(),
            last_chunks: 1,
            target,
            timeout: None,
            requested_features: None,
            broken: false,
            retry: None,
            jitter,
        }
    }

    /// Connect over TCP, with [`DEFAULT_TIMEOUT`] on socket reads and
    /// writes (override via [`Client::set_timeout`]).
    pub fn connect_tcp(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut client = Client::new(
            Duplex::Tcp(stream),
            Some(ConnectTarget::Tcp(addr.to_string())),
        );
        client.set_timeout(Some(DEFAULT_TIMEOUT))?;
        Ok(client)
    }

    /// Connect over a Unix-domain socket, with [`DEFAULT_TIMEOUT`] on
    /// socket reads and writes (override via [`Client::set_timeout`]).
    pub fn connect_unix(path: impl AsRef<Path>) -> io::Result<Client> {
        let path = path.as_ref();
        let mut client = Client::new(
            Duplex::Unix(UnixStream::connect(path)?),
            Some(ConnectTarget::Unix(path.to_path_buf())),
        );
        client.set_timeout(Some(DEFAULT_TIMEOUT))?;
        Ok(client)
    }

    /// Bound every blocking read *and* write on the socket, so a stalled
    /// or wedged server surfaces as [`ClientError::Io`]
    /// (`TimedOut`/`WouldBlock`) instead of hanging the caller forever.
    /// `None` restores "wait forever". Survives reconnects.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.transport.set_read_timeout(timeout)?;
        self.transport.set_write_timeout(timeout)?;
        self.timeout = timeout;
        Ok(())
    }

    /// Install (or clear) the automatic retry policy. With a policy set,
    /// `Busy`/`GoAway` responses back off and retry, a dead connection is
    /// re-dialed and re-negotiated, and requests that are safe to re-send
    /// are retried across the new connection; see [`RetryPolicy`] for
    /// which failures qualify.
    pub fn set_retry_policy(&mut self, policy: Option<RetryPolicy>) {
        self.retry = policy;
    }

    /// Record the accepted feature set on this connection.
    fn apply_accepted(&mut self, accepted: u32) {
        self.codec = if accepted & wire::FEATURE_BINARY_DOCS != 0 {
            Codec::Binary
        } else {
            Codec::Text
        };
        self.settings = accepted & wire::FEATURE_SETTINGS != 0;
    }

    /// Negotiate v2 features: sends `Hello` with `features`, returns the
    /// subset the server accepted, and switches this connection's document
    /// codec accordingly. Requests already answered are unaffected. The
    /// feature set is remembered and re-negotiated automatically when a
    /// [`RetryPolicy`] reconnects.
    pub fn negotiate(&mut self, features: u32) -> Result<u32, ClientError> {
        self.requested_features = Some(features);
        match self.round_trip(RequestBody::Hello { features })? {
            ResponseBody::HelloOk { features: accepted } => {
                self.apply_accepted(accepted);
                Ok(accepted)
            }
            other => Err(unexpected("HelloOk", &other)),
        }
    }

    /// Re-dial the recorded target, re-apply the socket timeout, and
    /// re-negotiate the last requested feature set. All per-connection
    /// state (partial responses, codec) is reset first.
    fn reconnect(&mut self) -> Result<(), ClientError> {
        self.broken = true; // stays set on any early return below
        let target = self.target.clone().ok_or_else(|| {
            ClientError::Protocol("connection broken and no reconnect target recorded".into())
        })?;
        self.transport = match &target {
            ConnectTarget::Tcp(addr) => {
                let stream = TcpStream::connect(addr)?;
                let _ = stream.set_nodelay(true);
                Duplex::Tcp(stream)
            }
            ConnectTarget::Unix(path) => Duplex::Unix(UnixStream::connect(path)?),
        };
        self.partials.clear();
        self.codec = Codec::Text;
        self.settings = false;
        self.transport.set_read_timeout(self.timeout)?;
        self.transport.set_write_timeout(self.timeout)?;
        if let Some(features) = self.requested_features {
            // Not via `negotiate`: that retries, and retrying reconnects.
            match self.round_trip_once(RequestBody::Hello { features })? {
                ResponseBody::HelloOk { features: accepted } => self.apply_accepted(accepted),
                other => return Err(unexpected("HelloOk", &other)),
            }
        }
        self.broken = false;
        Ok(())
    }

    /// Negotiate the full v2 fast path (binary documents + chunked
    /// responses); errors if the server does not accept the binary codec.
    pub fn use_binary(&mut self) -> Result<(), ClientError> {
        let accepted = self.negotiate(wire::SUPPORTED_FEATURES)?;
        if accepted & wire::FEATURE_BINARY_DOCS == 0 {
            return Err(ClientError::Protocol(format!(
                "server did not accept the binary document codec (accepted features {accepted:#x})"
            )));
        }
        Ok(())
    }

    /// The negotiated document codec.
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// Wire frames the most recent logical response arrived in (1 when it
    /// was not chunked). Tests use this to assert streaming actually split
    /// a large response.
    pub fn last_response_chunk_count(&self) -> usize {
        self.last_chunks
    }

    /// Send a request without waiting; returns the id to correlate the
    /// response with. Pipelining beyond the server's per-connection cap
    /// yields `Busy` responses — by design.
    pub fn send(&mut self, body: RequestBody) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        self.ebuf.clear();
        self.ebuf.extend_from_slice(&[0u8; 4]); // framing, patched below
        wire::encode_request_into(
            &RequestFrame {
                id,
                setting_id: self.setting_id,
                body,
            },
            self.settings,
            &mut self.ebuf,
        );
        let len = u32::try_from(self.ebuf.len() - 4).expect("request exceeds u32::MAX bytes");
        self.ebuf[0..4].copy_from_slice(&len.to_be_bytes());
        self.transport.write_all(&self.ebuf)?;
        Ok(id)
    }

    /// Read one wire frame's payload.
    fn read_frame(&mut self) -> Result<Vec<u8>, ClientError> {
        let mut header = [0u8; 4];
        self.transport.read_exact(&mut header)?;
        let len = u32::from_be_bytes(header) as usize;
        if len == 0 || len > MAX_RESPONSE_BYTES {
            return Err(ClientError::Protocol(format!(
                "response frame length {len} outside 1..={MAX_RESPONSE_BYTES}"
            )));
        }
        let mut payload = vec![0u8; len];
        self.transport.read_exact(&mut payload)?;
        Ok(payload)
    }

    /// Read the next *logical* response (any id), reassembling
    /// `STATUS_OK_PARTIAL` chunks until their final `STATUS_OK` frame
    /// arrives.
    pub fn recv(&mut self) -> Result<ResponseFrame, ClientError> {
        loop {
            let payload = self.read_frame()?;
            if payload.first() == Some(&wire::STATUS_OK_PARTIAL) {
                if payload.len() < 9 {
                    return Err(ClientError::Protocol(
                        "partial chunk frame shorter than its status + id header".into(),
                    ));
                }
                let id = u64::from_be_bytes(payload[1..9].try_into().expect("sliced 8 bytes"));
                let (body, count) = self.partials.entry(id).or_insert_with(|| (Vec::new(), 0));
                body.extend_from_slice(&payload[9..]);
                *count += 1;
                if body.len() > MAX_RESPONSE_BYTES {
                    return Err(ClientError::Protocol(format!(
                        "reassembled response for id {id} exceeds {MAX_RESPONSE_BYTES} bytes"
                    )));
                }
                continue; // not a complete logical response yet
            }
            let (payload, chunks) = match payload.first() {
                Some(&wire::STATUS_OK) if payload.len() >= 9 => {
                    let id = u64::from_be_bytes(payload[1..9].try_into().expect("sliced 8 bytes"));
                    match self.partials.remove(&id) {
                        Some((chunked, count)) => {
                            let mut logical = Vec::with_capacity(payload.len() + chunked.len());
                            logical.extend_from_slice(&payload[..9]);
                            logical.extend_from_slice(&chunked);
                            logical.extend_from_slice(&payload[9..]);
                            if logical.len() > MAX_RESPONSE_BYTES {
                                return Err(ClientError::Protocol(format!(
                                    "reassembled response for id {id} exceeds {MAX_RESPONSE_BYTES} bytes"
                                )));
                            }
                            (logical, count + 1)
                        }
                        None => (payload, 1),
                    }
                }
                _ => (payload, 1),
            };
            self.last_chunks = chunks;
            return wire::decode_response(&payload, self.codec)
                .map_err(|e| ClientError::Protocol(format!("undecodable response: {}", e.error)));
        }
    }

    /// One attempt: send one request and wait for its response (ids must
    /// match — the high-level methods never pipeline).
    fn round_trip_once(&mut self, body: RequestBody) -> Result<ResponseBody, ClientError> {
        let id = self.send(body)?;
        let resp = self.recv()?;
        if resp.id != id {
            return Err(ClientError::Protocol(format!(
                "response id {} does not match request id {id}",
                resp.id
            )));
        }
        match resp.body {
            ResponseBody::Busy => Err(ClientError::Busy),
            ResponseBody::GoAway => Err(ClientError::GoAway),
            ResponseBody::Error(e) => Err(ClientError::Remote(e)),
            body => Ok(body),
        }
    }

    /// The next backoff delay: capped exponential with jitter in
    /// [base/2, base], so a thundering herd of reconnecting clients
    /// spreads out.
    fn backoff_delay(&mut self, policy: &RetryPolicy, attempt: u32) -> Duration {
        let base = policy
            .initial_backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(20))
            .min(policy.max_backoff);
        self.jitter ^= self.jitter << 13;
        self.jitter ^= self.jitter >> 7;
        self.jitter ^= self.jitter << 17;
        let nanos = base.as_nanos().min(u64::MAX as u128) as u64;
        let half = nanos / 2;
        Duration::from_nanos(
            half + if half == 0 {
                0
            } else {
                self.jitter % (half + 1)
            },
        )
    }

    /// Send one request and wait for its response, retrying per the
    /// installed [`RetryPolicy`] (none by default). `Busy` and `GoAway`
    /// retry unconditionally — the server never executed the request;
    /// transport failures reconnect and retry only requests that are
    /// [safe to re-send](RetryPolicy). Remote errors and protocol errors
    /// surface immediately.
    fn round_trip(&mut self, body: RequestBody) -> Result<ResponseBody, ClientError> {
        let policy = match &self.retry {
            Some(p) if p.max_retries > 0 => p.clone(),
            _ => {
                if self.broken {
                    self.reconnect()?;
                }
                return self.round_trip_once(body);
            }
        };
        let mut attempt = 0u32;
        loop {
            let err = if self.broken {
                // Connect-phase failure: nothing was sent, always retryable.
                self.reconnect().err()
            } else {
                None
            };
            let err = match err {
                Some(e) => e,
                None => match self.round_trip_once(body.clone()) {
                    Ok(resp) => return Ok(resp),
                    // Answered without starting the work — always safe.
                    Err(e @ ClientError::Busy) => e,
                    Err(e @ ClientError::GoAway) => {
                        self.broken = true;
                        e
                    }
                    Err(ClientError::Io(e)) => {
                        // The server may or may not have executed the op.
                        self.broken = true;
                        let e = ClientError::Io(e);
                        if !safe_to_resend(&body) {
                            return Err(e);
                        }
                        e
                    }
                    // Remote errors are authoritative; protocol errors mean
                    // the stream is in an undefined state — give up (the
                    // *next* call will reconnect).
                    Err(e @ ClientError::Protocol(_)) => {
                        self.broken = true;
                        return Err(e);
                    }
                    Err(e) => return Err(e),
                },
            };
            if attempt >= policy.max_retries {
                return Err(err);
            }
            attempt += 1;
            std::thread::sleep(self.backoff_delay(&policy, attempt));
        }
    }

    /// Encode a micro-batch of documents in the negotiated codec.
    fn encode_docs(&self, docs: &[XmlTree]) -> Vec<WireDoc> {
        docs.iter()
            .map(|t| WireDoc::from_tree(t, self.codec))
            .collect()
    }

    /// Health check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.round_trip(RequestBody::Ping)? {
            ResponseBody::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Fetch the server's operational counters (v4) — and, when the
    /// connection negotiated [`wire::FEATURE_STATS_V2`], its histogram
    /// rows — as a typed [`StatsSnapshot`]. Unknown names must be ignored —
    /// servers grow counters.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.round_trip(RequestBody::Stats)? {
            ResponseBody::StatsOk {
                counters,
                histograms,
            } => Ok(StatsSnapshot {
                counters,
                histograms,
            }),
            other => Err(unexpected("StatsOk", &other)),
        }
    }

    /// Per-document consistency of a micro-batch.
    pub fn check_consistency(&mut self, docs: &[XmlTree]) -> Result<Vec<bool>, ClientError> {
        let body = RequestBody::CheckConsistency {
            docs: self.encode_docs(docs),
        };
        match self.round_trip(body)? {
            ResponseBody::Consistency(flags) => Ok(flags),
            other => Err(unexpected("Consistency", &other)),
        }
    }

    /// Canonical solutions of a micro-batch, still in wire form — no
    /// client-side decoding (the serving benchmark uses this so codec
    /// comparisons measure the wire path, not the client's parser).
    pub fn canonical_solution_docs(
        &mut self,
        docs: &[XmlTree],
    ) -> Result<Vec<DocResult<WireDoc>>, ClientError> {
        let body = RequestBody::CanonicalSolution {
            docs: self.encode_docs(docs),
        };
        match self.round_trip(body)? {
            ResponseBody::Solutions(results) => Ok(results),
            other => Err(unexpected("Solutions", &other)),
        }
    }

    /// Canonical solutions of a micro-batch, as canonical wire *text*
    /// (useful for byte-for-byte comparisons against local results;
    /// binary-codec solutions are decoded and re-serialized as text).
    pub fn canonical_solution_texts(
        &mut self,
        docs: &[XmlTree],
    ) -> Result<Vec<DocResult<String>>, ClientError> {
        self.canonical_solution_docs(docs)?
            .into_iter()
            .map(|result| match result {
                Ok(WireDoc::Text(text)) => Ok(Ok(text)),
                Ok(doc @ WireDoc::Binary(_)) => doc
                    .to_tree()
                    .map(|tree| Ok(xdx_xmltree::tree_to_text(&tree)))
                    .map_err(|e| ClientError::Protocol(format!("undecodable solution: {e}"))),
                Err(e) => Ok(Err(e)),
            })
            .collect()
    }

    /// Canonical solutions of a micro-batch, parsed back into trees.
    pub fn canonical_solutions(
        &mut self,
        docs: &[XmlTree],
    ) -> Result<Vec<DocResult<XmlTree>>, ClientError> {
        self.canonical_solution_docs(docs)?
            .into_iter()
            .map(|result| match result {
                Ok(doc) => doc
                    .to_tree()
                    .map(Ok)
                    .map_err(|e| ClientError::Protocol(format!("undecodable solution tree: {e}"))),
                Err(e) => Ok(Err(e)),
            })
            .collect()
    }

    /// Certain answers of `query` for each document (tuples in the
    /// deterministic set order the server computes).
    pub fn certain_answers(
        &mut self,
        query: &UnionQuery,
        docs: &[XmlTree],
    ) -> Result<Vec<DocResult<Vec<Vec<String>>>>, ClientError> {
        let body = RequestBody::CertainAnswers {
            query: query.to_string(),
            docs: self.encode_docs(docs),
        };
        match self.round_trip(body)? {
            ResponseBody::Answers(results) => Ok(results),
            other => Err(unexpected("Answers", &other)),
        }
    }

    /// Boolean certain answer of `query` for each document.
    pub fn certain_answers_boolean(
        &mut self,
        query: &UnionQuery,
        docs: &[XmlTree],
    ) -> Result<Vec<DocResult<bool>>, ClientError> {
        let body = RequestBody::CertainAnswersBoolean {
            query: query.to_string(),
            docs: self.encode_docs(docs),
        };
        match self.round_trip(body)? {
            ResponseBody::Booleans(results) => Ok(results),
            other => Err(unexpected("Booleans", &other)),
        }
    }

    /// Store a document under `doc_id` in the server's resident store
    /// (insert or full replace). Returns the document's new version.
    pub fn put_doc(&mut self, doc_id: u64, doc: &XmlTree) -> Result<u64, ClientError> {
        let body = RequestBody::PutDoc {
            doc_id,
            doc: WireDoc::from_tree(doc, self.codec),
        };
        match self.round_trip(body)? {
            ResponseBody::PutDocOk { version } => Ok(version),
            other => Err(unexpected("PutDocOk", &other)),
        }
    }

    /// Fetch a stored document and its current version.
    pub fn get_doc(&mut self, doc_id: u64) -> Result<(XmlTree, u64), ClientError> {
        match self.round_trip(RequestBody::GetDoc { doc_id })? {
            ResponseBody::GetDocOk { version, doc } => {
                let tree = doc
                    .to_tree()
                    .map_err(|e| ClientError::Protocol(format!("undecodable stored doc: {e}")))?;
                Ok((tree, version))
            }
            other => Err(unexpected("GetDocOk", &other)),
        }
    }

    /// Apply a batch of node-local edits to a stored document. With
    /// `base_version != 0` the edit is compare-and-swap: the server rejects
    /// it with `VersionConflict` unless the document is still at that
    /// version. `base_version == 0` skips the check. Returns the new
    /// version.
    pub fn edit_doc(
        &mut self,
        doc_id: u64,
        base_version: u64,
        edits: &[xdx_store::DocEdit],
    ) -> Result<u64, ClientError> {
        let mut blob = Vec::new();
        xdx_store::encode_edits(edits, &mut blob);
        let body = RequestBody::EditDoc {
            doc_id,
            base_version,
            edits: blob,
        };
        match self.round_trip(body)? {
            ResponseBody::EditDocOk { version } => Ok(version),
            other => Err(unexpected("EditDocOk", &other)),
        }
    }

    /// Remove a stored document.
    pub fn delete_doc(&mut self, doc_id: u64) -> Result<(), ClientError> {
        match self.round_trip(RequestBody::DeleteDoc { doc_id })? {
            ResponseBody::DeleteDocOk => Ok(()),
            other => Err(unexpected("DeleteDocOk", &other)),
        }
    }

    /// Consistency of a stored document — same response as
    /// [`Client::check_consistency`] on the identical document.
    pub fn check_consistency_stored(&mut self, doc_id: u64) -> Result<bool, ClientError> {
        match self.round_trip(RequestBody::CheckConsistencyStored { doc_id })? {
            ResponseBody::Consistency(flags) if flags.len() == 1 => Ok(flags[0]),
            other => Err(unexpected("Consistency", &other)),
        }
    }

    /// Canonical solution of a stored document, still in wire form.
    pub fn canonical_solution_stored(
        &mut self,
        doc_id: u64,
    ) -> Result<DocResult<WireDoc>, ClientError> {
        match self.round_trip(RequestBody::CanonicalSolutionStored { doc_id })? {
            ResponseBody::Solutions(mut results) if results.len() == 1 => {
                Ok(results.pop().expect("checked length"))
            }
            other => Err(unexpected("Solutions", &other)),
        }
    }

    /// Certain answers of `query` for a stored document.
    pub fn certain_answers_stored(
        &mut self,
        query: &UnionQuery,
        doc_id: u64,
    ) -> Result<DocResult<Vec<Vec<String>>>, ClientError> {
        let body = RequestBody::CertainAnswersStored {
            query: query.to_string(),
            doc_id,
        };
        match self.round_trip(body)? {
            ResponseBody::Answers(mut results) if results.len() == 1 => {
                Ok(results.pop().expect("checked length"))
            }
            other => Err(unexpected("Answers", &other)),
        }
    }

    /// Boolean certain answer of `query` for a stored document.
    pub fn certain_answers_boolean_stored(
        &mut self,
        query: &UnionQuery,
        doc_id: u64,
    ) -> Result<DocResult<bool>, ClientError> {
        let body = RequestBody::CertainAnswersBooleanStored {
            query: query.to_string(),
            doc_id,
        };
        match self.round_trip(body)? {
            ResponseBody::Booleans(mut results) if results.len() == 1 => {
                Ok(results.pop().expect("checked length"))
            }
            other => Err(unexpected("Booleans", &other)),
        }
    }

    /// Address every subsequent request to setting `id` (v3). Takes
    /// effect on the wire only after [`wire::FEATURE_SETTINGS`] was
    /// negotiated; before that, requests implicitly address setting 0.
    pub fn set_setting(&mut self, id: u64) {
        self.setting_id = id;
    }

    /// The setting id subsequent requests address.
    pub fn setting(&self) -> u64 {
        self.setting_id
    }

    /// Upload a setting (the `settext` syntax) and bind it to `bind_id`
    /// (v3). Returns the server's content hash of the canonical text and
    /// whether an identical-text compilation was reused.
    pub fn put_setting(&mut self, bind_id: u64, text: &str) -> Result<(u64, bool), ClientError> {
        let body = RequestBody::PutSetting {
            bind_id,
            text: text.to_string(),
        };
        match self.round_trip(body)? {
            ResponseBody::PutSettingOk {
                content_hash,
                reused,
            } => Ok((content_hash, reused)),
            other => Err(unexpected("PutSettingOk", &other)),
        }
    }

    /// List the server's setting bindings (v3).
    pub fn list_settings(&mut self) -> Result<Vec<SettingEntry>, ClientError> {
        match self.round_trip(RequestBody::ListSettings)? {
            ResponseBody::SettingList { entries } => Ok(entries),
            other => Err(unexpected("SettingList", &other)),
        }
    }

    /// Drop `bind_id`'s compiled artifact (v3); the binding, its text and
    /// its stored documents survive. Returns whether an artifact was
    /// resident.
    pub fn evict_setting(&mut self, bind_id: u64) -> Result<bool, ClientError> {
        match self.round_trip(RequestBody::EvictSetting { bind_id })? {
            ResponseBody::EvictSettingOk { dropped } => Ok(dropped),
            other => Err(unexpected("EvictSettingOk", &other)),
        }
    }

    /// Write raw bytes on the connection (tests use this to send garbage
    /// and truncated frames).
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.transport.write_all(bytes)
    }
}

fn unexpected(wanted: &str, got: &ResponseBody) -> ClientError {
    ClientError::Protocol(format!("expected a {wanted} response, got {got:?}"))
}
