//! A blocking client for the wire protocol, used by integration tests,
//! `examples/serve.rs` and the serving benchmark.
//!
//! One [`Client`] owns one connection. The high-level methods send one
//! request and wait for its response; [`Client::send`] / [`Client::recv`]
//! expose the raw pipelined form (multiple requests in flight, responses
//! correlated by id) for backpressure tests and throughput measurements.

use crate::transport::Duplex;
use crate::wire::{
    self, DocResult, RequestBody, RequestFrame, ResponseBody, ResponseFrame, WireError,
};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;
use xdx_patterns::query::UnionQuery;
use xdx_xmltree::{parse_tree, tree_to_text, XmlTree};

/// Upper bound on response payloads the client will accept (a server
/// response can legitimately exceed the request cap — canonical solutions
/// grow — but a corrupt length field must not trigger a huge allocation).
const MAX_RESPONSE_BYTES: usize = 256 * 1024 * 1024;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server sent something the client cannot decode.
    Protocol(String),
    /// The server rejected the whole request with a structured error frame.
    Remote(WireError),
    /// The server is saturated; retry later.
    Busy,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Remote(e) => write!(f, "server error: {e}"),
            ClientError::Busy => write!(f, "server busy"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking connection to an `xdx-server`.
pub struct Client {
    transport: Duplex,
    next_id: u64,
}

impl Client {
    /// Connect over TCP.
    pub fn connect_tcp(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            transport: Duplex::Tcp(stream),
            next_id: 1,
        })
    }

    /// Connect over a Unix-domain socket.
    pub fn connect_unix(path: impl AsRef<Path>) -> io::Result<Client> {
        Ok(Client {
            transport: Duplex::Unix(UnixStream::connect(path)?),
            next_id: 1,
        })
    }

    /// Send a request without waiting; returns the id to correlate the
    /// response with. Pipelining beyond the server's per-connection cap
    /// yields `Busy` responses — by design.
    pub fn send(&mut self, body: RequestBody) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let bytes = wire::frame(wire::encode_request(&RequestFrame { id, body }));
        self.transport.write_all(&bytes)?;
        Ok(id)
    }

    /// Read the next response frame (any id).
    pub fn recv(&mut self) -> Result<ResponseFrame, ClientError> {
        let mut header = [0u8; 4];
        self.transport.read_exact(&mut header)?;
        let len = u32::from_be_bytes(header) as usize;
        if len == 0 || len > MAX_RESPONSE_BYTES {
            return Err(ClientError::Protocol(format!(
                "response frame length {len} outside 1..={MAX_RESPONSE_BYTES}"
            )));
        }
        let mut payload = vec![0u8; len];
        self.transport.read_exact(&mut payload)?;
        wire::decode_response(&payload)
            .map_err(|e| ClientError::Protocol(format!("undecodable response: {}", e.error)))
    }

    /// Send one request and wait for its response (ids must match — the
    /// high-level methods never pipeline).
    fn round_trip(&mut self, body: RequestBody) -> Result<ResponseBody, ClientError> {
        let id = self.send(body)?;
        let resp = self.recv()?;
        if resp.id != id {
            return Err(ClientError::Protocol(format!(
                "response id {} does not match request id {id}",
                resp.id
            )));
        }
        match resp.body {
            ResponseBody::Busy => Err(ClientError::Busy),
            ResponseBody::Error(e) => Err(ClientError::Remote(e)),
            body => Ok(body),
        }
    }

    /// Health check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.round_trip(RequestBody::Ping)? {
            ResponseBody::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Per-document consistency of a micro-batch.
    pub fn check_consistency(&mut self, docs: &[XmlTree]) -> Result<Vec<bool>, ClientError> {
        let body = RequestBody::CheckConsistency {
            docs: docs.iter().map(tree_to_text).collect(),
        };
        match self.round_trip(body)? {
            ResponseBody::Consistency(flags) => Ok(flags),
            other => Err(unexpected("Consistency", &other)),
        }
    }

    /// Canonical solutions of a micro-batch, still in wire text form
    /// (useful for byte-for-byte comparisons against local results).
    pub fn canonical_solution_texts(
        &mut self,
        docs: &[XmlTree],
    ) -> Result<Vec<DocResult<String>>, ClientError> {
        let body = RequestBody::CanonicalSolution {
            docs: docs.iter().map(tree_to_text).collect(),
        };
        match self.round_trip(body)? {
            ResponseBody::Solutions(results) => Ok(results),
            other => Err(unexpected("Solutions", &other)),
        }
    }

    /// Canonical solutions of a micro-batch, parsed back into trees.
    pub fn canonical_solutions(
        &mut self,
        docs: &[XmlTree],
    ) -> Result<Vec<DocResult<XmlTree>>, ClientError> {
        let texts = self.canonical_solution_texts(docs)?;
        texts
            .into_iter()
            .map(|result| match result {
                Ok(text) => parse_tree(&text)
                    .map(Ok)
                    .map_err(|e| ClientError::Protocol(format!("undecodable solution tree: {e}"))),
                Err(e) => Ok(Err(e)),
            })
            .collect()
    }

    /// Certain answers of `query` for each document (tuples in the
    /// deterministic set order the server computes).
    pub fn certain_answers(
        &mut self,
        query: &UnionQuery,
        docs: &[XmlTree],
    ) -> Result<Vec<DocResult<Vec<Vec<String>>>>, ClientError> {
        let body = RequestBody::CertainAnswers {
            query: query.to_string(),
            docs: docs.iter().map(tree_to_text).collect(),
        };
        match self.round_trip(body)? {
            ResponseBody::Answers(results) => Ok(results),
            other => Err(unexpected("Answers", &other)),
        }
    }

    /// Boolean certain answer of `query` for each document.
    pub fn certain_answers_boolean(
        &mut self,
        query: &UnionQuery,
        docs: &[XmlTree],
    ) -> Result<Vec<DocResult<bool>>, ClientError> {
        let body = RequestBody::CertainAnswersBoolean {
            query: query.to_string(),
            docs: docs.iter().map(tree_to_text).collect(),
        };
        match self.round_trip(body)? {
            ResponseBody::Booleans(results) => Ok(results),
            other => Err(unexpected("Booleans", &other)),
        }
    }

    /// Write raw bytes on the connection (tests use this to send garbage
    /// and truncated frames).
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.transport.write_all(bytes)
    }
}

fn unexpected(wanted: &str, got: &ResponseBody) -> ClientError {
    ClientError::Protocol(format!("expected a {wanted} response, got {got:?}"))
}
