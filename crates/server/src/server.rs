//! The serving front-end: a single-threaded epoll event loop feeding a
//! worker pool that shares one compiled setting.
//!
//! ## Architecture
//!
//! ```text
//!                    ┌───────────── event-loop thread ─────────────┐
//!  TCP listener ──▶  │ accept / non-blocking read / frame parse /  │
//!  Unix listener ──▶ │ backpressure / non-blocking write           │
//!                    └───────┬───────────────────────▲─────────────┘
//!                       jobs │ (bounded queue)       │ completions + wake pipe
//!                    ┌───────▼───────────────────────┴─────────────┐
//!                    │ worker pool: N threads ×                    │
//!                    │   (&BatchEngine's CompiledSetting,          │
//!                    │    one ExchangeScratch each)                │
//!                    └─────────────────────────────────────────────┘
//! ```
//!
//! * The **event loop** owns every socket. It never parses documents or
//!   chases anything — it only moves bytes, frames, and verdicts.
//! * **Workers** decode documents/queries (the expensive text parsing stays
//!   off the loop), run the exchange pipeline on the shared
//!   [`CompiledSetting`] (per-setting caches warm up once for all
//!   connections), and hand fully encoded response frames back.
//! * The **wake pipe** (a non-blocking Unix socketpair) lets workers and
//!   [`ServerControl::shutdown`] interrupt `epoll_wait`.
//!
//! ## Backpressure
//!
//! Admission control is enforced *before* work is queued, in the loop
//! thread, so saturation costs one branch, not a thread handoff:
//!
//! * **per-connection pipelining cap** ([`ServerConfig::max_inflight_per_conn`]):
//!   a connection may pipeline at most this many unanswered requests;
//! * **global in-flight budget** ([`ServerConfig::max_inflight_total`]):
//!   across all connections at most this many requests may sit in the job
//!   queue + workers.
//!
//! A request over either limit is answered immediately with a `Busy` frame
//! (its id echoed) and is **not** queued — the queue is bounded by
//! construction and memory stays flat under overload. On the write side,
//! a connection whose peer stops reading may buffer at most
//! [`ServerConfig::max_buffered_response_bytes`] of pending responses
//! before it is closed, so un-drained output is bounded too. Frames whose
//! announced length exceeds [`ServerConfig::max_frame_bytes`] poison the
//! connection (error frame, flush, close), since the stream can no longer
//! be framed safely; merely malformed payloads only fail their own request.

use crate::sys::{Epoll, Event, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::transport::Duplex;
use crate::wire::{
    self, DecodeError, RequestBody, RequestFrame, ResponseBody, ResponseFrame, WireError,
};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::os::fd::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use xdx_core::compiled::{CompiledSetting, ExchangeScratch};
use xdx_core::engine::BatchEngine;
use xdx_core::setting::DataExchangeSetting;
use xdx_patterns::parser::parse_query;
use xdx_patterns::plan::QueryPlan;
use xdx_xmltree::{parse_tree, tree_to_text, XmlTree};

/// Server tuning knobs; the defaults suit tests and small deployments.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads computing responses (0 = available parallelism).
    pub workers: usize,
    /// Maximum request-frame payload size; larger announced lengths poison
    /// the connection.
    pub max_frame_bytes: usize,
    /// Maximum documents in one request (micro-batch size cap; the
    /// protocol's own cap [`wire::MAX_DOCS_PER_REQUEST`] applies on top).
    pub max_docs_per_request: usize,
    /// Per-connection pipelining cap: unanswered requests beyond this get
    /// `Busy`.
    pub max_inflight_per_conn: usize,
    /// Global in-flight budget across all connections: requests beyond this
    /// get `Busy`.
    pub max_inflight_total: usize,
    /// Maximum simultaneous connections; beyond it, new sockets are
    /// accepted and immediately closed.
    pub max_connections: usize,
    /// Per-connection cap on *buffered* (computed but unwritable) response
    /// bytes. A client that pipelines requests without ever reading its
    /// responses would otherwise grow the write buffer without bound —
    /// responses can legitimately exceed the request-frame cap. Crossing
    /// the cap closes the connection: the peer has stopped cooperating.
    pub max_buffered_response_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            max_frame_bytes: wire::DEFAULT_MAX_FRAME_BYTES,
            max_docs_per_request: 64,
            max_inflight_per_conn: 32,
            max_inflight_total: 256,
            max_connections: 1024,
            max_buffered_response_bytes: 64 * 1024 * 1024,
        }
    }
}

/// Handle for stopping a running server from another thread.
#[derive(Debug)]
pub struct ServerControl {
    stop: AtomicBool,
    wake: Mutex<UnixStream>,
}

impl ServerControl {
    /// Ask the event loop to exit. Idempotent; safe from any thread.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.nudge();
    }

    /// Wake the event loop without stopping it (used by workers after
    /// pushing a completion).
    fn nudge(&self) {
        if let Ok(mut wake) = self.wake.lock() {
            // A full pipe already guarantees a pending wake-up.
            let _ = wake.write(&[1]);
        }
    }
}

/// One unit of work: a decoded request owned by a connection generation.
struct Job {
    slot: usize,
    generation: u64,
    frame: RequestFrame,
}

/// A finished response, already encoded (length prefix included).
struct Done {
    slot: usize,
    generation: u64,
    bytes: Vec<u8>,
}

/// State shared between the loop and the workers.
struct Shared {
    jobs: Mutex<VecDeque<Job>>,
    jobs_ready: Condvar,
    done: Mutex<Vec<Done>>,
    workers_stop: AtomicBool,
}

impl Shared {
    fn new() -> Shared {
        Shared {
            jobs: Mutex::new(VecDeque::new()),
            jobs_ready: Condvar::new(),
            done: Mutex::new(Vec::new()),
            workers_stop: AtomicBool::new(false),
        }
    }
}

struct Conn {
    stream: Duplex,
    generation: u64,
    /// Unparsed input; `rpos` is the consumed prefix.
    rbuf: Vec<u8>,
    rpos: usize,
    /// Pending output; `wpos` is the written prefix.
    wbuf: Vec<u8>,
    wpos: usize,
    inflight: usize,
    /// Poisoned: flush remaining output, then close. No more reads parsed.
    closing: bool,
    /// Is `EPOLLOUT` currently part of the registration?
    want_write: bool,
    /// The peer closed its write half (no more requests will arrive).
    peer_eof: bool,
}

const TOK_TCP: u64 = 0;
const TOK_UNIX: u64 = 1;
const TOK_WAKE: u64 = 2;
const TOK_CONN_BASE: u64 = 3;

/// The serving front-end, bound but not yet running. Construct with
/// [`Server::bind`], then call [`Server::run`] (typically on a dedicated
/// thread, with the [`ServerControl`] from [`Server::control`] kept for
/// shutdown).
pub struct Server<'s> {
    engine: BatchEngine<'s>,
    config: ServerConfig,
    tcp: Option<TcpListener>,
    unix: Option<UnixListener>,
    unix_path: Option<PathBuf>,
    control: Arc<ServerControl>,
    wake_rx: UnixStream,
}

impl<'s> Server<'s> {
    /// Bind listeners for `setting`. At least one of `tcp_addr` (e.g.
    /// `"127.0.0.1:0"`) and `unix_path` must be given; both may be. The
    /// Unix socket file must not exist yet and is removed again when
    /// [`Server::run`] returns.
    pub fn bind(
        setting: &'s DataExchangeSetting,
        tcp_addr: Option<&str>,
        unix_path: Option<&Path>,
        config: ServerConfig,
    ) -> io::Result<Server<'s>> {
        if tcp_addr.is_none() && unix_path.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "bind at least one of a TCP address and a Unix socket path",
            ));
        }
        let tcp = tcp_addr
            .map(|addr| {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Ok::<_, io::Error>(l)
            })
            .transpose()?;
        let unix = unix_path
            .map(|path| {
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Ok::<_, io::Error>(l)
            })
            .transpose()?;
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        let workers = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            config.workers
        };
        let engine = BatchEngine::new(setting).parallelism(workers);
        Ok(Server {
            engine,
            config: ServerConfig { workers, ..config },
            tcp,
            unix,
            unix_path: unix_path.map(Path::to_path_buf),
            control: Arc::new(ServerControl {
                stop: AtomicBool::new(false),
                wake: Mutex::new(wake_tx),
            }),
            wake_rx,
        })
    }

    /// The shutdown handle.
    pub fn control(&self) -> Arc<ServerControl> {
        Arc::clone(&self.control)
    }

    /// The bound TCP address (useful after binding port 0).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// Run the event loop until [`ServerControl::shutdown`]. Spawns the
    /// worker pool as scoped threads; joins everything before returning.
    pub fn run(self) -> io::Result<()> {
        let Server {
            engine,
            config,
            tcp,
            unix,
            unix_path,
            control,
            wake_rx,
        } = self;
        let shared = Arc::new(Shared::new());
        let compiled = engine.compiled();
        let result = std::thread::scope(|scope| {
            // The epoll instance is created *before* any worker spawns, so
            // an early `?` cannot leave workers waiting forever.
            let epoll = Epoll::new()?;
            for _ in 0..config.workers {
                let shared = Arc::clone(&shared);
                let control = Arc::clone(&control);
                scope.spawn(move || worker_loop(compiled, &shared, &control));
            }
            let mut event_loop = EventLoop {
                config: &config,
                tcp,
                unix,
                wake_rx,
                control: &control,
                shared: &shared,
                epoll,
                conns: Vec::new(),
                free_slots: Vec::new(),
                live_conns: 0,
                total_inflight: 0,
                next_generation: 0,
            };
            let result = event_loop.run();
            // Stop the pool: workers drain the remaining queue, then exit.
            shared.workers_stop.store(true, Ordering::SeqCst);
            shared.jobs_ready.notify_all();
            result
        });
        if let Some(path) = unix_path {
            let _ = std::fs::remove_file(path);
        }
        result
    }
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn worker_loop(compiled: &CompiledSetting<'_>, shared: &Shared, control: &ServerControl) {
    let mut scratch = ExchangeScratch::new();
    loop {
        let job = {
            let mut jobs = shared.jobs.lock().expect("job queue poisoned");
            loop {
                if let Some(job) = jobs.pop_front() {
                    break job;
                }
                if shared.workers_stop.load(Ordering::SeqCst) {
                    return;
                }
                jobs = shared.jobs_ready.wait(jobs).expect("job queue poisoned");
            }
        };
        let body = process(compiled, &mut scratch, job.frame.body);
        let bytes = wire::frame(wire::encode_response(&ResponseFrame {
            id: job.frame.id,
            body,
        }));
        shared
            .done
            .lock()
            .expect("completion queue poisoned")
            .push(Done {
                slot: job.slot,
                generation: job.generation,
                bytes,
            });
        control.nudge();
    }
}

/// Parse every document of a request, or fail the whole request with the
/// index of the offending document.
fn parse_docs(docs: &[String]) -> Result<Vec<XmlTree>, WireError> {
    docs.iter()
        .enumerate()
        .map(|(i, text)| parse_tree(text).map_err(|e| WireError::of_tree_error(i, &e)))
        .collect()
}

/// Compute one request's response body. Runs entirely on a worker thread:
/// text parsing, query planning (once per request), and the per-document
/// exchange pipeline on the shared compiled setting with this worker's
/// scratch. Every per-document computation is exactly the one
/// [`BatchEngine`]'s `*_batch` methods run, so responses are byte-for-byte
/// what a local batch call would produce.
fn process(
    compiled: &CompiledSetting<'_>,
    scratch: &mut ExchangeScratch,
    body: RequestBody,
) -> ResponseBody {
    match body {
        RequestBody::Ping => ResponseBody::Pong,
        RequestBody::CheckConsistency { docs } => match parse_docs(&docs) {
            Err(e) => ResponseBody::Error(e),
            Ok(trees) => ResponseBody::Consistency(
                trees
                    .iter()
                    .map(|t| compiled.check_instance_consistency_with(t, scratch))
                    .collect(),
            ),
        },
        RequestBody::CanonicalSolution { docs } => match parse_docs(&docs) {
            Err(e) => ResponseBody::Error(e),
            Ok(trees) => ResponseBody::Solutions(
                trees
                    .iter()
                    .map(|t| {
                        compiled
                            .canonical_solution_with(t, scratch)
                            .map(|solution| tree_to_text(&solution))
                            .map_err(|e| WireError::of_solution_error(&e))
                    })
                    .collect(),
            ),
        },
        RequestBody::CertainAnswers { query, docs } => {
            let query = match parse_query(&query) {
                Ok(q) => q,
                Err(e) => return ResponseBody::Error(WireError::of_query_error(&e)),
            };
            let trees = match parse_docs(&docs) {
                Ok(t) => t,
                Err(e) => return ResponseBody::Error(e),
            };
            let plan = QueryPlan::new(&query, compiled.target_dtd());
            ResponseBody::Answers(
                trees
                    .iter()
                    .map(|t| {
                        compiled
                            .certain_answers_planned_with(t, &plan, scratch)
                            .map(|answers| answers.tuples.into_iter().collect())
                            .map_err(|e| WireError::of_solution_error(&e))
                    })
                    .collect(),
            )
        }
        RequestBody::CertainAnswersBoolean { query, docs } => {
            let query = match parse_query(&query) {
                Ok(q) => q,
                Err(e) => return ResponseBody::Error(WireError::of_query_error(&e)),
            };
            let trees = match parse_docs(&docs) {
                Ok(t) => t,
                Err(e) => return ResponseBody::Error(e),
            };
            let plan = QueryPlan::new(&query, compiled.target_dtd());
            ResponseBody::Booleans(
                trees
                    .iter()
                    .map(|t| {
                        compiled
                            .certain_boolean_planned_with(t, &plan, scratch)
                            .map_err(|e| WireError::of_solution_error(&e))
                    })
                    .collect(),
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

struct EventLoop<'e> {
    config: &'e ServerConfig,
    tcp: Option<TcpListener>,
    unix: Option<UnixListener>,
    wake_rx: UnixStream,
    control: &'e ServerControl,
    shared: &'e Shared,
    epoll: Epoll,
    conns: Vec<Option<Conn>>,
    free_slots: Vec<usize>,
    live_conns: usize,
    total_inflight: usize,
    next_generation: u64,
}

impl EventLoop<'_> {
    fn run(&mut self) -> io::Result<()> {
        if let Some(l) = &self.tcp {
            self.epoll.add(l.as_raw_fd(), EPOLLIN, TOK_TCP)?;
        }
        if let Some(l) = &self.unix {
            self.epoll.add(l.as_raw_fd(), EPOLLIN, TOK_UNIX)?;
        }
        self.epoll
            .add(self.wake_rx.as_raw_fd(), EPOLLIN, TOK_WAKE)?;
        let mut events: Vec<Event> = Vec::new();
        while !self.control.stop.load(Ordering::SeqCst) {
            self.epoll.wait(&mut events, -1)?;
            for &event in &events {
                match event.token {
                    TOK_TCP => self.accept_tcp(),
                    TOK_UNIX => self.accept_unix(),
                    TOK_WAKE => self.drain_wake(),
                    token => self.handle_conn_event(token, event),
                }
            }
            self.drain_completions();
        }
        Ok(())
    }

    fn drain_wake(&mut self) {
        let mut buf = [0u8; 256];
        loop {
            match self.wake_rx.read(&mut buf) {
                Ok(0) => return,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn accept_tcp(&mut self) {
        loop {
            match self
                .tcp
                .as_ref()
                .expect("TCP event without listener")
                .accept()
            {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    self.register(Duplex::Tcp(stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn accept_unix(&mut self) {
        loop {
            match self
                .unix
                .as_ref()
                .expect("Unix event without listener")
                .accept()
            {
                Ok((stream, _)) => self.register(Duplex::Unix(stream)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn register(&mut self, stream: Duplex) {
        if self.live_conns >= self.config.max_connections {
            return; // drop the socket: accept-and-close sheds load
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        self.next_generation += 1;
        let conn = Conn {
            stream,
            generation: self.next_generation,
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: Vec::new(),
            wpos: 0,
            inflight: 0,
            closing: false,
            want_write: false,
            peer_eof: false,
        };
        let slot = match self.free_slots.pop() {
            Some(slot) => {
                self.conns[slot] = Some(conn);
                slot
            }
            None => {
                self.conns.push(Some(conn));
                self.conns.len() - 1
            }
        };
        let conn = self.conns[slot].as_ref().expect("just inserted");
        if self
            .epoll
            .add(
                conn.stream.raw_fd(),
                EPOLLIN | EPOLLRDHUP,
                TOK_CONN_BASE + slot as u64,
            )
            .is_err()
        {
            self.conns[slot] = None;
            self.free_slots.push(slot);
            return;
        }
        self.live_conns += 1;
    }

    fn handle_conn_event(&mut self, token: u64, event: Event) {
        let slot = (token - TOK_CONN_BASE) as usize;
        if self.conns.get(slot).map(Option::is_none).unwrap_or(true) {
            return; // stale event for a slot already closed this batch
        }
        if event.writable() && !self.flush(slot) {
            return;
        }
        if event.readable() || event.closed() {
            self.read_and_dispatch(slot, event.closed());
        }
    }

    /// Read all available bytes, parse complete frames, dispatch them.
    fn read_and_dispatch(&mut self, slot: usize, hangup: bool) {
        let mut chunk = [0u8; 64 * 1024];
        let mut eof = hangup;
        loop {
            let conn = match &mut self.conns[slot] {
                Some(c) => c,
                None => return,
            };
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    if !conn.closing {
                        conn.rbuf.extend_from_slice(&chunk[..n]);
                    }
                    // A poisoned connection drains and discards input so the
                    // peer's pending writes cannot stall the close.
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot);
                    return;
                }
            }
        }
        self.parse_frames(slot);
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if eof {
            conn.peer_eof = true;
        }
        // A finished peer with nothing pending can be dropped now;
        // otherwise pending responses flush first (drain_completions /
        // writable events call `close` when everything settles).
        if conn.peer_eof && conn.inflight == 0 && conn.wbuf.len() == conn.wpos {
            self.close(slot);
        }
    }

    /// Extract complete frames from the read buffer and dispatch each.
    fn parse_frames(&mut self, slot: usize) {
        loop {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            if conn.closing {
                conn.rbuf.clear();
                conn.rpos = 0;
                return;
            }
            let unread = conn.rbuf.len() - conn.rpos;
            if unread < 4 {
                break;
            }
            let header = &conn.rbuf[conn.rpos..conn.rpos + 4];
            let len = u32::from_be_bytes([header[0], header[1], header[2], header[3]]) as usize;
            if len == 0 || len > self.config.max_frame_bytes {
                // The stream cannot be re-synchronised: poison it.
                let code = if len == 0 {
                    wire::ErrorCode::MalformedFrame
                } else {
                    wire::ErrorCode::FrameTooLarge
                };
                let frame = ResponseFrame {
                    id: 0,
                    body: ResponseBody::Error(WireError::new(
                        code,
                        format!(
                            "frame length {len} outside 1..={}; closing",
                            self.config.max_frame_bytes
                        ),
                    )),
                };
                // Poison *before* queueing the error frame: the flush inside
                // `enqueue_response` tears the connection down as soon as the
                // frame is fully written.
                conn.closing = true;
                conn.rbuf.clear();
                conn.rpos = 0;
                self.enqueue_response(slot, &frame);
                return;
            }
            if unread < 4 + len {
                break; // partial frame: wait for more bytes
            }
            let start = conn.rpos + 4;
            let payload: Vec<u8> = conn.rbuf[start..start + len].to_vec();
            conn.rpos += 4 + len;
            self.dispatch_payload(slot, &payload);
        }
        // Compact the consumed prefix.
        if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
            if conn.rpos > 0 {
                conn.rbuf.drain(..conn.rpos);
                conn.rpos = 0;
            }
        }
    }

    /// Decode one request payload and either answer inline (errors, `Ping`,
    /// `Busy`) or queue a job for the worker pool.
    fn dispatch_payload(&mut self, slot: usize, payload: &[u8]) {
        let request = match wire::decode_request(payload, self.config.max_docs_per_request) {
            Ok(request) => request,
            Err(DecodeError { id, error }) => {
                // The framing is intact — only this request fails.
                self.enqueue_response(
                    slot,
                    &ResponseFrame {
                        id,
                        body: ResponseBody::Error(error),
                    },
                );
                return;
            }
        };
        if matches!(request.body, RequestBody::Ping) {
            // Health checks bypass the pool (and the budget): they must
            // answer even when the server is saturated.
            self.enqueue_response(
                slot,
                &ResponseFrame {
                    id: request.id,
                    body: ResponseBody::Pong,
                },
            );
            return;
        }
        let over_conn_cap = self
            .conns
            .get(slot)
            .and_then(Option::as_ref)
            .map(|c| c.inflight >= self.config.max_inflight_per_conn)
            .unwrap_or(true);
        if over_conn_cap || self.total_inflight >= self.config.max_inflight_total {
            self.enqueue_response(
                slot,
                &ResponseFrame {
                    id: request.id,
                    body: ResponseBody::Busy,
                },
            );
            return;
        }
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        conn.inflight += 1;
        self.total_inflight += 1;
        let job = Job {
            slot,
            generation: conn.generation,
            frame: request,
        };
        self.shared
            .jobs
            .lock()
            .expect("job queue poisoned")
            .push_back(job);
        self.shared.jobs_ready.notify_one();
    }

    /// Move worker completions into their connections' write buffers.
    fn drain_completions(&mut self) {
        let done: Vec<Done> =
            std::mem::take(&mut *self.shared.done.lock().expect("completion queue poisoned"));
        for completion in done {
            self.total_inflight -= 1;
            let Some(conn) = self.conns.get_mut(completion.slot).and_then(Option::as_mut) else {
                continue; // connection died while the job ran
            };
            if conn.generation != completion.generation {
                continue; // slot was recycled: the response has no taker
            }
            conn.inflight -= 1;
            conn.wbuf.extend_from_slice(&completion.bytes);
            self.flush(completion.slot);
        }
    }

    /// Encode a loop-generated response and queue it for writing.
    fn enqueue_response(&mut self, slot: usize, frame: &ResponseFrame) {
        let bytes = wire::frame(wire::encode_response(frame));
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        conn.wbuf.extend_from_slice(&bytes);
        self.flush(slot);
    }

    /// Write as much pending output as the socket accepts. Returns `false`
    /// when the connection was closed. Keeps the `EPOLLOUT` registration in
    /// sync with whether output is pending.
    fn flush(&mut self, slot: usize) -> bool {
        let epoll = &self.epoll;
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return false;
        };
        let mut dead = false;
        loop {
            if conn.wpos >= conn.wbuf.len() {
                break;
            }
            match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                Ok(0) => {
                    dead = true;
                    break;
                }
                Ok(n) => conn.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        // Write-path backpressure: a peer that does not read its responses
        // cannot be allowed to pin unbounded buffered output (the in-flight
        // budget is released when a response is *buffered*, so this cap is
        // what bounds per-connection memory end to end).
        if !dead && conn.wbuf.len() - conn.wpos > self.config.max_buffered_response_bytes {
            dead = true;
        }
        if !dead {
            if conn.wpos == conn.wbuf.len() {
                conn.wbuf.clear();
                conn.wpos = 0;
                if conn.closing || (conn.peer_eof && conn.inflight == 0) {
                    dead = true;
                } else if conn.want_write {
                    conn.want_write = false;
                    let _ = epoll.modify(
                        conn.stream.raw_fd(),
                        EPOLLIN | EPOLLRDHUP,
                        TOK_CONN_BASE + slot as u64,
                    );
                }
            } else if !conn.want_write {
                conn.want_write = true;
                let _ = epoll.modify(
                    conn.stream.raw_fd(),
                    EPOLLIN | EPOLLOUT | EPOLLRDHUP,
                    TOK_CONN_BASE + slot as u64,
                );
            }
        }
        if dead {
            self.close(slot);
            return false;
        }
        true
    }

    /// Tear a connection down. In-flight jobs keep running; their
    /// completions are dropped by the generation check.
    fn close(&mut self, slot: usize) {
        if let Some(conn) = self.conns.get_mut(slot).and_then(Option::take) {
            let _ = self.epoll.delete(conn.stream.raw_fd());
            self.live_conns -= 1;
            self.free_slots.push(slot);
        }
    }
}
