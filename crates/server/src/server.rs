//! The serving front-end: a single-threaded epoll event loop feeding a
//! worker pool that shares one compiled setting.
//!
//! ## Architecture
//!
//! ```text
//!                    ┌───────────── event-loop thread ─────────────┐
//!  TCP listener ──▶  │ accept / non-blocking read / frame parse /  │
//!  Unix listener ──▶ │ backpressure / non-blocking write           │
//!                    └───────┬───────────────────────▲─────────────┘
//!                       jobs │ (bounded queue)       │ completions + wake pipe
//!                    ┌───────▼───────────────────────┴─────────────┐
//!                    │ worker pool: N threads ×                    │
//!                    │   (&BatchEngine's CompiledSetting,          │
//!                    │    one ExchangeScratch each)                │
//!                    └─────────────────────────────────────────────┘
//! ```
//!
//! * The **event loop** owns every socket. It never parses documents or
//!   chases anything — it only moves bytes, frames, and verdicts.
//! * **Workers** decode documents/queries (the expensive parsing stays off
//!   the loop), run the exchange pipeline on the shared [`CompiledSetting`]
//!   (per-setting caches warm up once for all connections), and serialize
//!   responses *directly into the connection's write queue* in bounded
//!   segments ([`ResponseWriter`]): each sealed segment is handed to the
//!   loop as a ready-to-send frame, moved (never re-copied) into a
//!   per-connection segment queue and flushed with `writev`. Connections
//!   that negotiated [`wire::FEATURE_CHUNKED_RESPONSES`] receive large
//!   responses as `STATUS_OK_PARTIAL` chunks of at most
//!   [`ServerConfig::chunk_bytes`] body bytes each, so a huge solution
//!   neither pins its full size in worker memory nor head-of-line-blocks
//!   other connections' flushes.
//! * The **wake pipe** (a non-blocking Unix socketpair) lets workers and
//!   [`ServerControl::shutdown`] interrupt `epoll_wait`.
//!
//! ## Backpressure
//!
//! Admission control is enforced *before* work is queued, in the loop
//! thread, so saturation costs one branch, not a thread handoff:
//!
//! * **per-connection pipelining cap** ([`ServerConfig::max_inflight_per_conn`]):
//!   a connection may pipeline at most this many unanswered requests;
//! * **global in-flight budget** ([`ServerConfig::max_inflight_total`]):
//!   across all connections at most this many requests may sit in the job
//!   queue + workers.
//!
//! A request over either limit is answered immediately with a `Busy` frame
//! (its id echoed) and is **not** queued — the queue is bounded by
//! construction and memory stays flat under overload. On the write side,
//! a connection whose peer stops reading may buffer at most
//! [`ServerConfig::max_buffered_response_bytes`] of pending responses
//! before it is closed, so un-drained output is bounded too. Frames whose
//! announced length exceeds [`ServerConfig::max_frame_bytes`] poison the
//! connection (error frame, flush, close), since the stream can no longer
//! be framed safely; merely malformed payloads only fail their own request.

use crate::registry::Registry;
use crate::sys::{Epoll, Event, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::transport::Duplex;
use crate::wire::{
    self, Codec, DecodeError, OpCode, RequestBody, RequestFrame, ResponseBody, ResponseFrame,
    WireDoc, WireError,
};
use std::collections::{HashMap, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::os::fd::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};
use xdx_core::cache::CacheKey;
use xdx_core::compiled::ExchangeScratch;
use xdx_core::engine::BatchEngine;
use xdx_core::settext::setting_to_text;
use xdx_core::setting::DataExchangeSetting;
use xdx_core::solution::SolutionError;
use xdx_obs::{Histogram, HistogramSnapshot, MetricRegistry, Trace, Unit};
use xdx_patterns::parser::parse_query;
use xdx_patterns::plan::QueryPlan;
use xdx_store::{decode_edits_exact, DocKey, DocStore, StoreConfig, StoreError};
use xdx_xmltree::binary::ByteSink;
use xdx_xmltree::{tree_to_text, XmlTree};

/// What the per-document result cache holds: the *semantic* result of each
/// op, so a hit streams through exactly the serialization path a fresh
/// computation would — cached and uncached responses are byte-for-byte
/// identical under every codec.
#[derive(Debug, Clone)]
enum CachedAnswer {
    /// `CheckConsistencyStored` verdict.
    Consistency(bool),
    /// `CanonicalSolutionStored` result.
    Solution(Result<XmlTree, SolutionError>),
    /// `CertainAnswersStored` tuples (already in deterministic set order).
    Answers(Result<Vec<Vec<String>>, SolutionError>),
    /// `CertainAnswersBooleanStored` result.
    Boolean(Result<bool, SolutionError>),
}

/// The server's resident store: documents plus version-tagged cached
/// answers, serialized behind one mutex (ops hold it only for O(doc)
/// copies and bookkeeping — the chase itself runs unlocked).
type ServerStore = Mutex<DocStore<CachedAnswer>>;

/// Server tuning knobs; the defaults suit tests and small deployments.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads computing responses (0 = available parallelism).
    pub workers: usize,
    /// Maximum request-frame payload size; larger announced lengths poison
    /// the connection.
    pub max_frame_bytes: usize,
    /// Maximum documents in one request (micro-batch size cap; the
    /// protocol's own cap [`wire::MAX_DOCS_PER_REQUEST`] applies on top).
    pub max_docs_per_request: usize,
    /// Per-connection pipelining cap: unanswered requests beyond this get
    /// `Busy`.
    pub max_inflight_per_conn: usize,
    /// Global in-flight budget across all connections: requests beyond this
    /// get `Busy`.
    pub max_inflight_total: usize,
    /// Maximum simultaneous connections; beyond it, new sockets are
    /// accepted and immediately closed.
    pub max_connections: usize,
    /// Per-connection cap on *buffered* (computed but unwritable) response
    /// bytes. A client that pipelines requests without ever reading its
    /// responses would otherwise grow the write buffer without bound —
    /// responses can legitimately exceed the request-frame cap. Crossing
    /// the cap closes the connection: the peer has stopped cooperating.
    pub max_buffered_response_bytes: usize,
    /// Segment size for chunked responses (v2, per-connection negotiated):
    /// a worker seals and hands off a response segment every time this many
    /// body bytes accumulate, so its peak serialization buffer — and the
    /// granularity at which other responses can interleave on the socket —
    /// is this, not the full response size. Ignored for connections that
    /// did not negotiate [`wire::FEATURE_CHUNKED_RESPONSES`].
    pub chunk_bytes: usize,
    /// Directory of the resident document store (snapshot + WAL). `None`
    /// disables the store: every store op answers
    /// [`wire::ErrorCode::StoreDisabled`].
    pub store_dir: Option<PathBuf>,
    /// Admission cap on resident documents — `PutDoc` of a *new* id beyond
    /// it answers [`wire::ErrorCode::StoreFull`] (existing ids can always
    /// be overwritten). Ignored when the store is disabled.
    pub max_resident_docs: usize,
    /// Opportunistic checkpoint threshold: after a store mutation, the
    /// worker that still holds the store lock checkpoints (snapshot + WAL
    /// reset) if the WAL has grown past this many bytes — so a long-running
    /// server's WAL stays bounded by roughly this plus one record, instead
    /// of growing until clean shutdown. Ignored when the store is disabled.
    pub wal_checkpoint_bytes: u64,
    /// Cap on setting *bindings* (v3 registry), counting the pinned
    /// default binding 0. `PutSetting` of a new id beyond it answers
    /// [`wire::ErrorCode::SettingLimit`].
    pub max_settings: usize,
    /// Cost budget of the compiled-setting LRU cache, in canonical
    /// setting-text bytes. Past it, least-recently-used artifacts are
    /// evicted (bindings, their text, and their stored documents survive;
    /// the next request recompiles).
    pub max_compiled_cost: u64,
    /// Per-setting in-flight admission budget: across all connections, at
    /// most this many unanswered requests may address one setting id, so a
    /// flood against one tenant cannot starve the rest. The default equals
    /// [`ServerConfig::max_inflight_total`], which makes the check
    /// unobservable for v1/v2 traffic (it all addresses setting 0).
    pub max_inflight_per_setting: usize,
    /// Close a connection with no unanswered requests, no pending output
    /// and no partial frame after this long without activity, so abandoned
    /// sockets cannot pin `max_connections` slots forever. `None` disables
    /// the check.
    pub idle_timeout: Option<Duration>,
    /// A started request frame must *complete* within this long of its
    /// first byte (the clock restarts whenever a whole frame is parsed,
    /// not on every byte) — a slow-loris peer dribbling one byte per
    /// second holds a connection slot for at most this, while a healthy
    /// pipelining client at any pace never has a partial frame older than
    /// one frame's transmission. `None` disables the check.
    pub read_progress_timeout: Option<Duration>,
    /// Per-request phase tracing: when `true` (the default) every
    /// worker-path request carries an [`xdx_obs::Trace`] from frame decode
    /// to final flush, feeding the per-`(op, setting)` phase histograms of
    /// the Stats-v2 export and the slow-request log. Off, requests carry
    /// no trace and only the plain counters remain (bench `E18` measures
    /// the difference).
    pub instrumentation: bool,
    /// Log a rate-limited one-line phase breakdown (to stderr) for every
    /// fully flushed request whose wall time reaches this threshold, and
    /// count it in `server.slow_requests`. `None` (the default) disables
    /// the log; the counter still counts nothing.
    pub slow_request_threshold: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            max_frame_bytes: wire::DEFAULT_MAX_FRAME_BYTES,
            max_docs_per_request: 64,
            max_inflight_per_conn: 32,
            max_inflight_total: 256,
            max_connections: 1024,
            max_buffered_response_bytes: 64 * 1024 * 1024,
            chunk_bytes: 256 * 1024,
            store_dir: None,
            max_resident_docs: 1024,
            wal_checkpoint_bytes: xdx_xmltree::limits::DEFAULT_FRAME_BYTES as u64,
            max_settings: 64,
            max_compiled_cost: 64 * xdx_core::settext::MAX_SETTING_TEXT_BYTES as u64,
            max_inflight_per_setting: 256,
            idle_timeout: Some(Duration::from_secs(60)),
            read_progress_timeout: Some(Duration::from_secs(10)),
            instrumentation: true,
            slow_request_threshold: None,
        }
    }
}

/// Why a [`ServerConfig`] was rejected at construction
/// ([`ServerConfig::validate`], called by [`Server::bind`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A limit that must be positive was zero.
    Zero {
        /// The offending field.
        field: &'static str,
    },
    /// A limit beyond any sane deployment — almost certainly a typo
    /// (bytes where kilobytes were meant, etc.).
    TooLarge {
        /// The offending field.
        field: &'static str,
        /// The configured value.
        value: usize,
        /// The largest accepted value.
        max: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Zero { field } => write!(f, "config: {field} must be positive"),
            ConfigError::TooLarge { field, value, max } => {
                write!(f, "config: {field} = {value} exceeds the maximum {max}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl ServerConfig {
    /// Reject zero and absurd limits before any socket is bound. A zero
    /// budget would deadlock admission (every request answered `Busy`
    /// forever); an absurd one is a typo that would defeat the memory
    /// bounds the budgets exist to enforce.
    pub fn validate(&self) -> Result<(), ConfigError> {
        use xdx_xmltree::limits::MAX_DOCUMENT_BYTES;
        let positive: [(&'static str, usize); 9] = [
            ("max_frame_bytes", self.max_frame_bytes),
            ("max_docs_per_request", self.max_docs_per_request),
            ("max_inflight_per_conn", self.max_inflight_per_conn),
            ("max_inflight_total", self.max_inflight_total),
            ("max_inflight_per_setting", self.max_inflight_per_setting),
            ("max_connections", self.max_connections),
            ("chunk_bytes", self.chunk_bytes),
            ("max_settings", self.max_settings),
            (
                "max_compiled_cost",
                self.max_compiled_cost.min(usize::MAX as u64) as usize,
            ),
        ];
        for (field, value) in positive {
            if value == 0 {
                return Err(ConfigError::Zero { field });
            }
        }
        if self.max_buffered_response_bytes == 0 {
            return Err(ConfigError::Zero {
                field: "max_buffered_response_bytes",
            });
        }
        let capped: [(&'static str, usize, usize); 9] = [
            ("workers", self.workers, 4096),
            ("max_frame_bytes", self.max_frame_bytes, MAX_DOCUMENT_BYTES),
            (
                "max_docs_per_request",
                self.max_docs_per_request,
                wire::MAX_DOCS_PER_REQUEST,
            ),
            ("max_inflight_per_conn", self.max_inflight_per_conn, 1 << 20),
            ("max_inflight_total", self.max_inflight_total, 1 << 20),
            (
                "max_inflight_per_setting",
                self.max_inflight_per_setting,
                1 << 20,
            ),
            ("max_connections", self.max_connections, 1 << 20),
            ("max_settings", self.max_settings, 1 << 20),
            ("chunk_bytes", self.chunk_bytes, MAX_DOCUMENT_BYTES),
        ];
        for (field, value, max) in capped {
            if value > max {
                return Err(ConfigError::TooLarge { field, value, max });
            }
        }
        if self.store_dir.is_some() && self.max_resident_docs == 0 {
            return Err(ConfigError::Zero {
                field: "max_resident_docs",
            });
        }
        if self.store_dir.is_some() && self.wal_checkpoint_bytes == 0 {
            return Err(ConfigError::Zero {
                field: "wal_checkpoint_bytes",
            });
        }
        // A zero deadline would reap every connection on its first tick;
        // "no deadline" is spelled `None`.
        if self.idle_timeout.is_some_and(|t| t.is_zero()) {
            return Err(ConfigError::Zero {
                field: "idle_timeout",
            });
        }
        if self.read_progress_timeout.is_some_and(|t| t.is_zero()) {
            return Err(ConfigError::Zero {
                field: "read_progress_timeout",
            });
        }
        // A zero threshold would log (and count) every request; "log
        // everything" is not a sane production setting and is almost
        // certainly a milliseconds-vs-nanoseconds typo.
        if self.slow_request_threshold.is_some_and(|t| t.is_zero()) {
            return Err(ConfigError::Zero {
                field: "slow_request_threshold",
            });
        }
        Ok(())
    }
}

/// Handle for stopping a running server from another thread.
#[derive(Debug)]
pub struct ServerControl {
    stop: AtomicBool,
    draining: AtomicBool,
    drain_deadline: Mutex<Option<Instant>>,
    wake: Mutex<UnixStream>,
}

impl ServerControl {
    /// Ask the event loop to exit. Idempotent; safe from any thread.
    /// In-flight work is abandoned (connections close without their
    /// responses); prefer [`ServerControl::drain`] for a graceful exit.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.nudge();
    }

    /// Ask the server to drain and exit gracefully: stop accepting, answer
    /// every *new* request with [`wire::STATUS_GOAWAY`] (never starting
    /// work on it), flush the responses already in flight, and close each
    /// connection as it settles. Connections still unsettled `grace` from
    /// now are force-closed; then [`Server::run`] returns (checkpointing
    /// the store on the way out, as on any clean exit). Idempotent — the
    /// first call's deadline wins; safe from any thread.
    pub fn drain(&self, grace: Duration) {
        {
            let mut deadline = self.drain_deadline.lock().expect("drain deadline poisoned");
            if deadline.is_none() {
                *deadline = Some(Instant::now() + grace);
            }
        }
        self.draining.store(true, Ordering::SeqCst);
        self.nudge();
    }

    /// Has [`ServerControl::drain`] been called?
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn drain_deadline(&self) -> Option<Instant> {
        if !self.is_draining() {
            return None;
        }
        *self.drain_deadline.lock().expect("drain deadline poisoned")
    }

    /// Wake the event loop without stopping it (used by workers after
    /// pushing a completion).
    fn nudge(&self) {
        if let Ok(mut wake) = self.wake.lock() {
            // A full pipe already guarantees a pending wake-up.
            let _ = wake.write(&[1]);
        }
    }
}

/// Operational counters behind the `Stats` wire op (v4). Everything is a
/// monotonically increasing `u64` (or a level read at request time), so a
/// scraper can diff consecutive snapshots without special cases.
#[derive(Debug)]
struct ServerStats {
    started: Instant,
    /// Connections accepted and registered (shed ones excluded).
    accepted_conns: AtomicU64,
    /// Requests answered `Busy` by admission control.
    busy_rejected: AtomicU64,
    /// Requests answered `GoAway` while draining.
    goaway_rejected: AtomicU64,
    /// Connections reaped by the idle deadline.
    reaped_idle: AtomicU64,
    /// Connections reaped by the read-progress (slow-loris) deadline.
    reaped_slow: AtomicU64,
    /// Highest simultaneous in-flight request count ever observed.
    inflight_highwater: AtomicU64,
    /// Highest in-flight count any single setting ever reached.
    setting_inflight_highwater: AtomicU64,
    /// Stored-query answers served from the per-document result cache.
    store_cache_hits: AtomicU64,
    /// Stored-query answers that had to be computed.
    store_cache_misses: AtomicU64,
    /// Requests whose wall time reached
    /// [`ServerConfig::slow_request_threshold`].
    slow_requests: AtomicU64,
    /// Highest live-assignment count any worker's evaluation scratch ever
    /// reached ([`ExchangeScratch::assign_highwater`]) — the peak working
    /// set of pattern matching.
    assign_highwater: AtomicU64,
}

/// Counter names of every [`ServerStats`]-backed `Stats` row that exists
/// regardless of a store, ascending — the order [`collect_stats`] emits
/// and the wire contract requires. Kept as one table (rather than inline
/// strings) so ascending order is asserted **once at construction**
/// ([`ServerStats::new`]), not re-checked per `Stats` request.
const BASE_STAT_NAMES: [&str; 12] = [
    "engine.assign_highwater",
    "registry.artifact_hits",
    "registry.artifact_misses",
    "server.accepted_conns",
    "server.busy_rejected",
    "server.goaway_rejected",
    "server.inflight_highwater",
    "server.reaped_idle",
    "server.reaped_slow",
    "server.setting_inflight_highwater",
    "server.slow_requests",
    "server.uptime_secs",
];

/// Counter names appended when a store is mounted; ascending, and every
/// entry sorts after the whole base table (`store.` > `server.`).
const STORE_STAT_NAMES: [&str; 11] = [
    "store.cache_hits",
    "store.cache_misses",
    "store.degraded",
    "store.dirty_docs",
    "store.replay_ns",
    "store.replayed_records",
    "store.resident_docs",
    "store.resident_tree_bytes",
    "store.seq",
    "store.wal_bytes",
    "store.wal_rollbacks",
];

fn assert_stat_names_ascending() {
    let sorted = |names: &[&str]| names.windows(2).all(|w| w[0] < w[1]);
    assert!(
        sorted(&BASE_STAT_NAMES)
            && sorted(&STORE_STAT_NAMES)
            && BASE_STAT_NAMES.last() < STORE_STAT_NAMES.first(),
        "Stats counter name tables must be strictly ascending"
    );
}

impl ServerStats {
    fn new() -> ServerStats {
        // The ordering invariant the wire contract needs is established
        // here, once per server, instead of debug-asserted on every
        // `collect_stats` call.
        assert_stat_names_ascending();
        ServerStats {
            started: Instant::now(),
            accepted_conns: AtomicU64::new(0),
            busy_rejected: AtomicU64::new(0),
            goaway_rejected: AtomicU64::new(0),
            reaped_idle: AtomicU64::new(0),
            reaped_slow: AtomicU64::new(0),
            inflight_highwater: AtomicU64::new(0),
            setting_inflight_highwater: AtomicU64::new(0),
            store_cache_hits: AtomicU64::new(0),
            store_cache_misses: AtomicU64::new(0),
            slow_requests: AtomicU64::new(0),
            assign_highwater: AtomicU64::new(0),
        }
    }
}

/// Snapshot every counter for one `Stats` response: the loop-side and
/// worker-side atomics, the registry's compiled-cache counters, and — when
/// a store is mounted — the store's own health gauges, taken under its
/// lock. Rows ascend by name (the wire contract).
fn collect_stats(
    stats: &ServerStats,
    registry: &Registry,
    store: Option<&ServerStore>,
) -> Vec<(String, u64)> {
    let (hits, misses) = registry.artifact_counters();
    // Values in the same positional order as the name tables, whose
    // ascending order [`ServerStats::new`] asserted at construction.
    let base: [u64; BASE_STAT_NAMES.len()] = [
        stats.assign_highwater.load(Ordering::Relaxed),
        hits,
        misses,
        stats.accepted_conns.load(Ordering::Relaxed),
        stats.busy_rejected.load(Ordering::Relaxed),
        stats.goaway_rejected.load(Ordering::Relaxed),
        stats.inflight_highwater.load(Ordering::Relaxed),
        stats.reaped_idle.load(Ordering::Relaxed),
        stats.reaped_slow.load(Ordering::Relaxed),
        stats.setting_inflight_highwater.load(Ordering::Relaxed),
        stats.slow_requests.load(Ordering::Relaxed),
        stats.started.elapsed().as_secs(),
    ];
    let mut counters: Vec<(String, u64)> = BASE_STAT_NAMES
        .iter()
        .zip(base)
        .map(|(&n, v)| (n.to_string(), v))
        .collect();
    if let Some(store) = store {
        let s = store.lock().expect("store poisoned");
        let m = s.metrics();
        let store_vals: [u64; STORE_STAT_NAMES.len()] = [
            stats.store_cache_hits.load(Ordering::Relaxed),
            stats.store_cache_misses.load(Ordering::Relaxed),
            s.is_degraded() as u64,
            s.dirty_total() as u64,
            m.replay_ns,
            m.replayed_records,
            s.len() as u64,
            s.resident_tree_bytes(),
            s.seq(),
            s.wal_len(),
            s.wal_rollbacks(),
        ];
        counters.extend(
            STORE_STAT_NAMES
                .iter()
                .zip(store_vals)
                .map(|(&n, v)| (n.to_string(), v)),
        );
    }
    counters
}

// ---------------------------------------------------------------------------
// Per-request tracing and latency histograms
// ---------------------------------------------------------------------------

/// Phase indices of a request's [`Trace`] (slots of `Trace`'s fixed
/// array). The phases partition a request's wall time: every interval
/// from frame decode to final flush is charged to exactly one of them, so
/// the per-phase histogram sums reconstruct the total (the property
/// `tests/server_integration.rs` pins at ≥ 90%).
const PHASE_DECODE: usize = 0;
const PHASE_QUEUE: usize = 1;
const PHASE_RESOLVE: usize = 2;
const PHASE_PLAN: usize = 3;
const PHASE_EXEC: usize = 4;
const PHASE_STORE: usize = 5;
const PHASE_ENCODE: usize = 6;
const PHASE_FLUSH: usize = 7;

/// Wire/export names of the phases, indexed by the constants above.
const PHASE_NAMES: [&str; 8] = [
    "decode", "queue", "resolve", "plan", "exec", "store", "encode", "flush",
];

/// A request's trace plus the key it will be recorded under. Boxed on the
/// [`Job`]/[`Done`] handoffs so the untraced configuration pays one
/// pointer, not the trace array.
struct ReqTrace {
    /// The op byte (key half one; [`OpCode::name`] at export time).
    op: u8,
    /// The addressed setting (key half two).
    setting: u64,
    trace: Trace,
}

/// The latency histograms of one `(op, setting)` key.
struct PhaseSet {
    /// One histogram per [`PHASE_NAMES`] entry, nanoseconds.
    phases: [Histogram; PHASE_NAMES.len()],
    /// Wall time decode-start → fully-flushed, nanoseconds.
    total: Histogram,
}

impl PhaseSet {
    const fn new() -> PhaseSet {
        // Repeat-initializer idiom: each array element gets its own copy.
        #[allow(clippy::declare_interior_mutable_const)]
        const H: Histogram = Histogram::new();
        PhaseSet {
            phases: [H; PHASE_NAMES.len()],
            total: H,
        }
    }
}

/// Construction indices of [`GLOBAL_HISTOGRAMS`] (asserted by the
/// registry's own ordering check at startup).
const HIST_CHASE_REPAIRS: usize = 0;
const HIST_CHASE_STEPS: usize = 1;

/// The static-name global histograms (engine-side work distributions,
/// recorded once per engine-path request).
const GLOBAL_HISTOGRAMS: [(&str, Unit); 2] = [
    ("engine.chase_repairs", Unit::Count),
    ("engine.chase_steps", Unit::Count),
];

/// Server-side latency/work histograms, shared by workers (record), the
/// event loop (trace finalization) and exporters (Stats v2, Prometheus).
struct ServerMetrics {
    /// Static-name histograms ([`GLOBAL_HISTOGRAMS`]).
    global: MetricRegistry,
    /// Per-`(op, setting)` phase histograms. The map only ever grows (an
    /// entry per *op actually used* per live setting — bounded by 18 ×
    /// `max_settings`); reads take the lock briefly to clone the `Arc`,
    /// records then run lock-free on the histograms themselves.
    phases: RwLock<HashMap<(u8, u64), Arc<PhaseSet>>>,
    /// Last slow-request line's timestamp (the ~1/sec rate limit).
    slow_log_last: Mutex<Option<Instant>>,
}

impl ServerMetrics {
    fn new() -> ServerMetrics {
        ServerMetrics {
            global: MetricRegistry::new(&[], &[], &GLOBAL_HISTOGRAMS),
            phases: RwLock::new(HashMap::new()),
            slow_log_last: Mutex::new(None),
        }
    }

    /// The phase set of `(op, setting)`, creating it on first use.
    fn phase_set(&self, op: u8, setting: u64) -> Arc<PhaseSet> {
        if let Some(set) = self
            .phases
            .read()
            .expect("phase table poisoned")
            .get(&(op, setting))
        {
            return Arc::clone(set);
        }
        Arc::clone(
            self.phases
                .write()
                .expect("phase table poisoned")
                .entry((op, setting))
                .or_insert_with(|| Arc::new(PhaseSet::new())),
        )
    }

    /// May another slow-request line be emitted? Takes the token when yes.
    fn slow_log_permit(&self) -> bool {
        let mut last = self.slow_log_last.lock().expect("slow log clock poisoned");
        let now = Instant::now();
        match *last {
            Some(at) if now.duration_since(at) < Duration::from_secs(1) => false,
            _ => {
                *last = Some(now);
                true
            }
        }
    }
}

/// One [`wire::StatsHistogram`] row from a snapshot.
fn histogram_row(name: String, unit: Unit, snap: &HistogramSnapshot) -> wire::StatsHistogram {
    wire::StatsHistogram {
        name,
        unit: unit.tag(),
        count: snap.count,
        sum: snap.sum,
        min: snap.min,
        max: snap.max,
        buckets: snap.nonzero_buckets().collect(),
    }
}

/// Snapshot every histogram for a Stats-v2 response (or the Prometheus
/// rendering): the global engine rows, every non-empty per-`(op, setting)`
/// phase row, and — when a store is mounted — its fsync/checkpoint
/// latencies. Rows ascend by name, like the counters.
fn collect_histograms(
    metrics: &ServerMetrics,
    store: Option<&ServerStore>,
) -> Vec<wire::StatsHistogram> {
    let mut rows: Vec<wire::StatsHistogram> = Vec::new();
    for (name, unit, snap) in metrics.global.histogram_rows() {
        rows.push(histogram_row(name.to_string(), unit, &snap));
    }
    {
        let table = metrics.phases.read().expect("phase table poisoned");
        for (&(op, setting), set) in table.iter() {
            let op_name = OpCode::from_u8(op).map(OpCode::name).unwrap_or("unknown");
            for (i, phase) in PHASE_NAMES.iter().enumerate() {
                let snap = set.phases[i].snapshot();
                if snap.count == 0 {
                    continue;
                }
                rows.push(histogram_row(
                    format!("req.{op_name}.s{setting}.{phase}"),
                    Unit::Nanos,
                    &snap,
                ));
            }
            let total = set.total.snapshot();
            if total.count > 0 {
                rows.push(histogram_row(
                    format!("req.{op_name}.s{setting}.total"),
                    Unit::Nanos,
                    &total,
                ));
            }
        }
    }
    if let Some(store) = store {
        let s = store.lock().expect("store poisoned");
        let m = s.metrics();
        rows.push(histogram_row(
            "store.checkpoint".to_string(),
            Unit::Nanos,
            &m.checkpoint.snapshot(),
        ));
        rows.push(histogram_row(
            "store.fsync".to_string(),
            Unit::Nanos,
            &m.fsync.snapshot(),
        ));
    }
    rows.sort_by(|a, b| a.name.cmp(&b.name));
    rows
}

/// One unit of work: a decoded request owned by a connection generation.
/// Carries a snapshot of the connection's negotiated codec and chunk limit
/// at dispatch time, so a mid-pipeline `Hello` cannot change the shape of
/// responses already in flight.
struct Job {
    slot: usize,
    generation: u64,
    frame: RequestFrame,
    codec: Codec,
    /// Maximum response-body bytes per segment; `usize::MAX` disables
    /// chunking (the whole response is one `STATUS_OK` frame).
    chunk_bytes: usize,
    /// Did the connection negotiate [`wire::FEATURE_STATS_V2`] (snapshot
    /// at dispatch, like `codec`)? Shapes `Stats` responses only.
    stats_v2: bool,
    /// The request's phase trace (instrumentation on), running since frame
    /// decode; rides to the worker and back so queue/handoff latencies
    /// stay inside measured phases.
    trace: Option<Box<ReqTrace>>,
}

/// One finished response *segment*, already framed (length prefix
/// included). An unchunked response is a single segment with `last =
/// true`; a chunked response is any number of `STATUS_OK_PARTIAL` segments
/// followed by the final `STATUS_OK` one. Only the last segment releases
/// the in-flight budget.
struct Done {
    slot: usize,
    generation: u64,
    /// The setting the request addressed — releases its per-setting
    /// admission budget when `last`.
    setting_id: u64,
    bytes: Vec<u8>,
    last: bool,
    /// The request's trace, handed back with the *final* segment (its
    /// encode phase already stamped); the event loop finishes the flush
    /// phase when the segment leaves the socket.
    trace: Option<Box<ReqTrace>>,
}

/// State shared between the loop and the workers.
struct Shared {
    jobs: Mutex<VecDeque<Job>>,
    jobs_ready: Condvar,
    done: Mutex<Vec<Done>>,
    workers_stop: AtomicBool,
}

impl Shared {
    fn new() -> Shared {
        Shared {
            jobs: Mutex::new(VecDeque::new()),
            jobs_ready: Condvar::new(),
            done: Mutex::new(Vec::new()),
            workers_stop: AtomicBool::new(false),
        }
    }
}

struct Conn {
    stream: Duplex,
    generation: u64,
    /// Unparsed input; `rpos` is the consumed prefix.
    rbuf: Vec<u8>,
    rpos: usize,
    /// Pending output as a queue of framed segments, moved (not copied)
    /// from worker completions; flushed with gathered writes. `wfront` is
    /// the written prefix of the front segment, `wq_bytes` the total bytes
    /// queued (including that prefix).
    wq: VecDeque<WqSeg>,
    wfront: usize,
    wq_bytes: usize,
    inflight: usize,
    /// Negotiated document codec (v2 `Hello`); text until negotiated.
    codec: Codec,
    /// Did the peer negotiate chunked responses?
    chunked: bool,
    /// Did the peer negotiate the v3 settings frame layout?
    settings: bool,
    /// Did the peer negotiate Stats-v2 histogram rows?
    stats_v2: bool,
    /// Poisoned: flush remaining output, then close. No more reads parsed.
    closing: bool,
    /// Is `EPOLLOUT` currently part of the registration?
    want_write: bool,
    /// The peer closed its write half (no more requests will arrive).
    peer_eof: bool,
    /// Last observed progress (bytes read, response queued, bytes
    /// written) — the idle deadline measures from here.
    last_activity: Instant,
    /// When the partial frame at the head of `rbuf` started. Restarted
    /// each time a whole frame completes, *not* on every arriving byte, so
    /// a drip-feeding peer cannot keep resetting the read-progress clock.
    partial_since: Option<Instant>,
}

/// One queued output segment: the framed bytes, plus — on a response's
/// final segment — the request's trace, finalized when the segment's last
/// byte leaves the socket (so the flush phase covers real sink latency,
/// not just queueing).
struct WqSeg {
    bytes: Vec<u8>,
    trace: Option<Box<ReqTrace>>,
}

const TOK_TCP: u64 = 0;
const TOK_UNIX: u64 = 1;
const TOK_WAKE: u64 = 2;
const TOK_CONN_BASE: u64 = 3;

/// Segments gathered into one `writev` call. Linux caps an iovec array at
/// `IOV_MAX` (1024); 32 covers deep response queues while keeping the
/// per-flush stack small.
const MAX_FLUSH_IOV: usize = 32;

/// The serving front-end, bound but not yet running. Construct with
/// [`Server::bind`], then call [`Server::run`] (typically on a dedicated
/// thread, with the [`ServerControl`] from [`Server::control`] kept for
/// shutdown).
pub struct Server {
    registry: Arc<Registry>,
    config: ServerConfig,
    tcp: Option<TcpListener>,
    unix: Option<UnixListener>,
    unix_path: Option<PathBuf>,
    control: Arc<ServerControl>,
    wake_rx: UnixStream,
    store: Option<Arc<ServerStore>>,
    stats: Arc<ServerStats>,
    metrics: Arc<ServerMetrics>,
}

/// A read-only observability handle onto a (possibly running) server:
/// counters, latency histograms, and a Prometheus-style text rendering.
/// Cheap to clone; obtained from [`Server::stats_handle`] before `run`
/// consumes the server, and usable from any thread while it runs.
#[derive(Clone)]
pub struct StatsHandle {
    stats: Arc<ServerStats>,
    metrics: Arc<ServerMetrics>,
    registry: Arc<Registry>,
    store: Option<Arc<ServerStore>>,
}

impl StatsHandle {
    /// The counter rows a `Stats` wire response would carry, ascending by
    /// name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        collect_stats(&self.stats, &self.registry, self.store.as_deref())
    }

    /// Render every counter and histogram in the Prometheus text format
    /// (`examples/serve.rs` prints this for the `stats` stdin command and
    /// the periodic dump).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.counters() {
            // Every row is rendered as a gauge: several (uptime, levels,
            // highwaters) genuinely are, and a scraper can rate() either.
            xdx_obs::prom::scalar(&mut out, &name, value, true);
        }
        for row in collect_histograms(&self.metrics, self.store.as_deref()) {
            let snap = HistogramSnapshot::from_sparse(
                row.count,
                row.sum,
                row.min,
                row.max,
                row.buckets.iter().copied(),
            );
            xdx_obs::prom::histogram(&mut out, &row.name, Unit::from_tag(row.unit), &snap);
        }
        out
    }

    /// How many requests crossed the slow threshold so far.
    pub fn slow_requests(&self) -> u64 {
        self.stats.slow_requests.load(Ordering::Relaxed)
    }
}

impl Server {
    /// Bind listeners for `setting`. At least one of `tcp_addr` (e.g.
    /// `"127.0.0.1:0"`) and `unix_path` must be given; both may be. The
    /// Unix socket file must not exist yet and is removed again when
    /// [`Server::run`] returns.
    pub fn bind(
        setting: &DataExchangeSetting,
        tcp_addr: Option<&str>,
        unix_path: Option<&Path>,
        config: ServerConfig,
    ) -> io::Result<Server> {
        if tcp_addr.is_none() && unix_path.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "bind at least one of a TCP address and a Unix socket path",
            ));
        }
        config
            .validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let store = config
            .store_dir
            .as_ref()
            .map(|dir| {
                let store_config = StoreConfig {
                    max_resident_docs: config.max_resident_docs,
                    ..StoreConfig::new(dir.clone())
                };
                DocStore::open(store_config)
                    .map(|s| Arc::new(Mutex::new(s)))
                    .map_err(|e| {
                        let message = e.to_string();
                        match e {
                            StoreError::Io(io) => io,
                            _ => io::Error::new(io::ErrorKind::InvalidData, message),
                        }
                    })
            })
            .transpose()?;
        let tcp = tcp_addr
            .map(|addr| {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Ok::<_, io::Error>(l)
            })
            .transpose()?;
        let unix = unix_path
            .map(|path| {
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Ok::<_, io::Error>(l)
            })
            .transpose()?;
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        let workers = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            config.workers
        };
        // The startup setting becomes the registry's pinned binding 0 —
        // every v1/v2 request (and any v3 request that does not name a
        // setting) runs against it, so pre-registry deployments behave
        // identically.
        let engine = BatchEngine::new_owned(Arc::new(setting.clone())).parallelism(workers);
        let registry = Arc::new(Registry::new(
            engine,
            setting_to_text(setting),
            workers,
            config.max_settings,
            config.max_compiled_cost,
        ));
        Ok(Server {
            registry,
            config: ServerConfig { workers, ..config },
            tcp,
            unix,
            unix_path: unix_path.map(Path::to_path_buf),
            control: Arc::new(ServerControl {
                stop: AtomicBool::new(false),
                draining: AtomicBool::new(false),
                drain_deadline: Mutex::new(None),
                wake: Mutex::new(wake_tx),
            }),
            wake_rx,
            store,
            stats: Arc::new(ServerStats::new()),
            metrics: Arc::new(ServerMetrics::new()),
        })
    }

    /// The shutdown handle.
    pub fn control(&self) -> Arc<ServerControl> {
        Arc::clone(&self.control)
    }

    /// An observability handle that outlives [`Server::run`] (counters,
    /// histograms, Prometheus rendering).
    pub fn stats_handle(&self) -> StatsHandle {
        StatsHandle {
            stats: Arc::clone(&self.stats),
            metrics: Arc::clone(&self.metrics),
            registry: Arc::clone(&self.registry),
            store: self.store.clone(),
        }
    }

    /// The bound TCP address (useful after binding port 0).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// Run the event loop until [`ServerControl::shutdown`]. Spawns the
    /// worker pool as scoped threads; joins everything before returning.
    pub fn run(self) -> io::Result<()> {
        let Server {
            registry,
            config,
            tcp,
            unix,
            unix_path,
            control,
            wake_rx,
            store,
            stats,
            metrics,
        } = self;
        let shared = Arc::new(Shared::new());
        let registry = &registry;
        let store = &store;
        let stats = &stats;
        let metrics = &metrics;
        let result = std::thread::scope(|scope| {
            // The epoll instance is created *before* any worker spawns, so
            // an early `?` cannot leave workers waiting forever.
            let epoll = Epoll::new()?;
            let wal_checkpoint_bytes = config.wal_checkpoint_bytes;
            for _ in 0..config.workers {
                let shared = Arc::clone(&shared);
                let control = Arc::clone(&control);
                scope.spawn(move || {
                    worker_loop(
                        registry,
                        store.as_deref(),
                        stats,
                        metrics,
                        wal_checkpoint_bytes,
                        &shared,
                        &control,
                    )
                });
            }
            let mut event_loop = EventLoop {
                config: &config,
                tcp,
                unix,
                wake_rx,
                control: &control,
                shared: &shared,
                stats,
                metrics,
                epoll,
                conns: Vec::new(),
                free_slots: Vec::new(),
                live_conns: 0,
                total_inflight: 0,
                inflight_per_setting: HashMap::new(),
                next_generation: 0,
            };
            let result = event_loop.run();
            // Stop the pool: workers drain the remaining queue, then exit.
            shared.workers_stop.store(true, Ordering::SeqCst);
            shared.jobs_ready.notify_all();
            result
        });
        if let Some(path) = unix_path {
            let _ = std::fs::remove_file(path);
        }
        // Best-effort checkpoint on clean shutdown: compacts the WAL so the
        // next open replays a snapshot instead of the whole edit history.
        if let Some(store) = store {
            if let Ok(mut guard) = store.lock() {
                let _ = guard.checkpoint();
            }
        }
        result
    }
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn worker_loop(
    registry: &Registry,
    store: Option<&ServerStore>,
    stats: &ServerStats,
    metrics: &ServerMetrics,
    wal_checkpoint_bytes: u64,
    shared: &Shared,
    control: &ServerControl,
) {
    let mut scratch = ExchangeScratch::new();
    loop {
        let mut job = {
            let mut jobs = shared.jobs.lock().expect("job queue poisoned");
            loop {
                if let Some(job) = jobs.pop_front() {
                    break job;
                }
                if shared.workers_stop.load(Ordering::SeqCst) {
                    return;
                }
                jobs = shared.jobs_ready.wait(jobs).expect("job queue poisoned");
            }
        };
        // Taking the writer stamps the queue phase: everything between
        // frame decode and this pop — enqueue, wake, contention — was
        // queue wait.
        let mut writer = ResponseWriter::new(shared, control, &mut job);
        let setting_id = job.frame.setting_id;
        match job.frame.body {
            // Registry ops run here so compilation (potentially long)
            // stays off the event loop, like every other expensive path.
            body @ (RequestBody::PutSetting { .. }
            | RequestBody::ListSettings
            | RequestBody::EvictSetting { .. }) => {
                registry_op(registry, store, body, writer);
            }
            // `Stats` aggregates server-wide counters — it addresses no
            // setting, so it never resolves (or compiles) an engine.
            RequestBody::Stats => {
                let histograms = if job.stats_v2 {
                    collect_histograms(metrics, store)
                } else {
                    Vec::new()
                };
                writer.whole(ResponseBody::StatsOk {
                    counters: collect_stats(stats, registry, store),
                    histograms,
                });
            }
            body => {
                // Resolve the addressed setting's engine: an LRU/cache
                // hit is an `Arc` clone; a cold binding recompiles from
                // its retained text right here, on this worker.
                let engine = match registry.resolve(setting_id) {
                    Ok(engine) => engine,
                    Err(e) => {
                        writer.whole(ResponseBody::Error(e));
                        continue;
                    }
                };
                // The resolve phase covers the registry lookup including
                // a recompile-on-miss (potentially milliseconds).
                writer.step(PHASE_RESOLVE);
                scratch.reset_counters();
                respond(
                    &engine,
                    store,
                    stats,
                    wal_checkpoint_bytes,
                    &mut scratch,
                    setting_id,
                    body,
                    job.codec,
                    writer,
                );
                // Chase work the request just did, as per-request
                // distributions (how many pops/repairs a request costs),
                // plus the assignment-store highwater. Requests that never
                // chased (store mutations, gets) record nothing.
                let c = scratch.counters;
                if c.chase_steps > 0 {
                    metrics
                        .global
                        .histogram(HIST_CHASE_STEPS)
                        .record(c.chase_steps);
                    metrics
                        .global
                        .histogram(HIST_CHASE_REPAIRS)
                        .record(c.chase_repairs);
                }
                stats
                    .assign_highwater
                    .fetch_max(scratch.assign_highwater() as u64, Ordering::Relaxed);
            }
        }
    }
}

/// Answer one registry op (v3). A rebind that changes a setting's text
/// invalidates that setting's derived store state — cached answers and
/// validation baselines — while stored documents and versions survive
/// untouched (they belong to the setting id, not the compiled artifact).
fn registry_op(
    registry: &Registry,
    store: Option<&ServerStore>,
    body: RequestBody,
    w: ResponseWriter<'_>,
) {
    match body {
        RequestBody::PutSetting { bind_id, text } => match registry.put(bind_id, &text) {
            Ok(outcome) => {
                if outcome.rebound {
                    if let Some(store) = store {
                        store
                            .lock()
                            .expect("store poisoned")
                            .invalidate_setting(bind_id);
                    }
                }
                w.whole(ResponseBody::PutSettingOk {
                    content_hash: outcome.content_hash,
                    reused: outcome.reused,
                });
            }
            Err(e) => w.whole(ResponseBody::Error(e)),
        },
        RequestBody::ListSettings => w.whole(ResponseBody::SettingList {
            entries: registry.list(),
        }),
        RequestBody::EvictSetting { bind_id } => match registry.evict(bind_id) {
            Ok(dropped) => w.whole(ResponseBody::EvictSettingOk { dropped }),
            Err(e) => w.whole(ResponseBody::Error(e)),
        },
        _ => unreachable!("caller matched a registry op"),
    }
}

/// Opportunistic WAL compaction, called by the mutating worker while it
/// still holds the store lock: once the WAL outgrows the configured
/// threshold, checkpoint (snapshot + WAL reset) so a long-running server's
/// log — and the replay the next open pays — stays bounded. Best-effort: a
/// failed checkpoint leaves the WAL (and thus durability) intact, and the
/// next mutation simply tries again.
fn maybe_checkpoint(store: &mut DocStore<CachedAnswer>, wal_checkpoint_bytes: u64) {
    if store.wal_len() >= wal_checkpoint_bytes {
        let _ = store.checkpoint();
    }
}

/// Length prefix (4) + status (1) + request id (8): the bytes every
/// response segment starts with. The length and status are placeholders
/// until the segment is sealed.
const SEG_HEADER: usize = 4 + 1 + 8;

/// Serializes one response *directly into the connection's write queue*,
/// in bounded segments, from the worker thread.
///
/// The writer appends body bytes to the current segment; when the
/// negotiated chunk limit fills, the segment is sealed as
/// [`wire::STATUS_OK_PARTIAL`] and handed to the event loop immediately
/// (a [`Done`] push + wake), so a huge solution streams out while the
/// worker is still serializing its tail — peak buffering per response is
/// one chunk, not the whole response, and the loop can interleave other
/// connections' flushes between chunks. [`ResponseWriter::finish`] seals
/// the final [`wire::STATUS_OK`] segment.
///
/// For an unchunked connection (`chunk_bytes == usize::MAX`) the single
/// final segment is byte-for-byte `wire::frame(wire::encode_response(..))`
/// — v1 clients cannot tell the difference.
struct ResponseWriter<'w> {
    shared: &'w Shared,
    control: &'w ServerControl,
    slot: usize,
    generation: u64,
    id: u64,
    setting_id: u64,
    chunk_bytes: usize,
    seg: Vec<u8>,
    /// The request's phase trace, carried from the event loop through this
    /// worker and handed back (on the final segment's [`Done`]) so the event
    /// loop can charge the flush phase and finalize it.
    trace: Option<Box<ReqTrace>>,
}

impl<'w> ResponseWriter<'w> {
    fn new(shared: &'w Shared, control: &'w ServerControl, job: &mut Job) -> ResponseWriter<'w> {
        let mut writer = ResponseWriter {
            shared,
            control,
            slot: job.slot,
            generation: job.generation,
            id: job.frame.id,
            setting_id: job.frame.setting_id,
            chunk_bytes: job.chunk_bytes.max(1),
            seg: Vec::new(),
            trace: job.trace.take(),
        };
        // Everything since the decode step — completion-queue enqueue, the
        // wake, lock contention, sitting behind other jobs — was queue wait.
        writer.step(PHASE_QUEUE);
        writer.start_segment();
        writer
    }

    /// Charge the elapsed-since-last-mark to `phase`. No-op when the
    /// request is untraced (instrumentation off).
    fn step(&mut self, phase: usize) {
        if let Some(t) = &mut self.trace {
            t.trace.step(phase);
        }
    }

    fn start_segment(&mut self) {
        let cap = SEG_HEADER + self.chunk_bytes.min(64 * 1024);
        self.seg = Vec::with_capacity(cap);
        self.seg.extend_from_slice(&[0u8; 4]); // length, patched on seal
        self.seg.push(wire::STATUS_OK); // status, patched on seal
        self.seg.extend_from_slice(&self.id.to_be_bytes());
    }

    /// Body bytes already in the open segment.
    fn body_len(&self) -> usize {
        self.seg.len() - SEG_HEADER
    }

    /// Seal the open segment (patch length + status) and hand it to the
    /// event loop. `last` decides `STATUS_OK` vs `STATUS_OK_PARTIAL` and
    /// whether the completion releases the in-flight budget.
    fn seal(&mut self, last: bool) {
        let payload_len = u32::try_from(self.seg.len() - 4).expect("segment exceeds u32::MAX");
        self.seg[0..4].copy_from_slice(&payload_len.to_be_bytes());
        self.seg[4] = if last {
            wire::STATUS_OK
        } else {
            wire::STATUS_OK_PARTIAL
        };
        if last {
            // Body bytes were streamed (encoded) between the last compute
            // step and this seal.
            self.step(PHASE_ENCODE);
        }
        let bytes = std::mem::take(&mut self.seg);
        // Only the final segment carries the trace back: the event loop
        // finalizes it when that segment is fully written to the socket,
        // so the flush phase spans the whole response, not one chunk.
        let trace = if last { self.trace.take() } else { None };
        self.shared
            .done
            .lock()
            .expect("completion queue poisoned")
            .push(Done {
                slot: self.slot,
                generation: self.generation,
                setting_id: self.setting_id,
                bytes,
                last,
                trace,
            });
        self.control.nudge();
        if !last {
            self.start_segment();
        }
    }

    /// Append body bytes, cutting segments at the chunk limit.
    fn put_bytes(&mut self, mut bytes: &[u8]) {
        while !bytes.is_empty() {
            let room = self.chunk_bytes - self.body_len();
            if room == 0 {
                self.seal(false);
                continue;
            }
            let n = room.min(bytes.len());
            self.seg.extend_from_slice(&bytes[..n]);
            bytes = &bytes[n..];
        }
    }

    fn put_u8(&mut self, v: u8) {
        self.put_bytes(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_bytes(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_bytes(&v.to_be_bytes());
    }

    fn put_string(&mut self, s: &str) {
        self.put_u32(u32::try_from(s.len()).expect("string exceeds u32::MAX bytes"));
        self.put_bytes(s.as_bytes());
    }

    fn put_wire_error(&mut self, e: &WireError) {
        self.put_u16(e.code as u16);
        self.put_string(&e.message);
    }

    /// `[status][id][op]` — the prefix of every streamed OK response.
    fn put_ok_header(&mut self, op: OpCode, doc_count: usize) {
        self.put_u8(op as u8);
        self.put_u16(u16::try_from(doc_count).expect("doc count exceeds u16"));
    }

    /// Seal the final segment; the logical response is complete.
    fn finish(mut self) {
        self.seal(true);
    }

    /// Replace the (still body-less) response with one whole pre-encoded
    /// frame — the path for request-level errors, which are always small
    /// and never chunked.
    fn whole(mut self, body: ResponseBody) {
        debug_assert_eq!(self.body_len(), 0, "whole() after body bytes were streamed");
        self.seg = wire::frame(wire::encode_response(&ResponseFrame { id: self.id, body }));
        self.step(PHASE_ENCODE);
        let bytes = std::mem::take(&mut self.seg);
        let trace = self.trace.take();
        self.shared
            .done
            .lock()
            .expect("completion queue poisoned")
            .push(Done {
                slot: self.slot,
                generation: self.generation,
                setting_id: self.setting_id,
                bytes,
                last: true,
                trace,
            });
        self.control.nudge();
    }
}

impl ByteSink for ResponseWriter<'_> {
    fn put(&mut self, bytes: &[u8]) {
        self.put_bytes(bytes);
    }
}

/// Parse every document of a request, or fail the whole request with the
/// index of the offending document.
fn parse_docs(docs: &[WireDoc]) -> Result<Vec<XmlTree>, WireError> {
    docs.iter()
        .enumerate()
        .map(|(i, doc)| {
            doc.to_tree()
                .map_err(|e| WireError::new(e.code, format!("document {i}: {}", e.message)))
        })
        .collect()
}

/// Stream one per-document solution result into the response body: the
/// ok/err tag, then the document under the connection's codec. Under
/// [`Codec::Binary`] the two-pass encoder knows the exact length before a
/// single byte is written, so the document streams straight into the
/// segment queue un-buffered.
fn put_solution(w: &mut ResponseWriter<'_>, codec: Codec, result: Result<XmlTree, SolutionError>) {
    match result {
        Ok(solution) => {
            w.put_u8(0);
            match codec {
                Codec::Text => {
                    let text = tree_to_text(&solution);
                    w.put_string(&text);
                }
                Codec::Binary => {
                    let enc = xdx_xmltree::binary::Encoder::new(&solution);
                    let len =
                        u32::try_from(enc.encoded_len()).expect("document exceeds u32::MAX bytes");
                    w.put_u32(len);
                    enc.write_to(w);
                }
            }
        }
        Err(e) => {
            w.put_u8(1);
            w.put_wire_error(&WireError::of_solution_error(&e));
        }
    }
}

/// Stream one per-document certain-answers result (tuples already in the
/// deterministic set order). Shared by the ship-the-document and stored-doc
/// paths so both produce identical bytes.
fn put_answers(w: &mut ResponseWriter<'_>, result: Result<Vec<Vec<String>>, SolutionError>) {
    match result {
        Ok(tuples) => {
            w.put_u8(0);
            w.put_u32(u32::try_from(tuples.len()).expect("tuple count exceeds u32"));
            for tuple in &tuples {
                w.put_u16(u16::try_from(tuple.len()).expect("arity exceeds u16"));
                for v in tuple {
                    w.put_string(v);
                }
            }
        }
        Err(e) => {
            w.put_u8(1);
            w.put_wire_error(&WireError::of_solution_error(&e));
        }
    }
}

/// Stream one per-document Boolean certain-answer result.
fn put_boolean(w: &mut ResponseWriter<'_>, result: Result<bool, SolutionError>) {
    match result {
        Ok(b) => {
            w.put_u8(0);
            w.put_u8(b as u8);
        }
        Err(e) => {
            w.put_u8(1);
            w.put_wire_error(&WireError::of_solution_error(&e));
        }
    }
}

/// A store op arrived but the server mounts no store.
fn store_disabled() -> WireError {
    WireError::new(
        wire::ErrorCode::StoreDisabled,
        "this server mounts no document store",
    )
}

/// Answer a stored-document query through the per-document result cache:
/// under the lock, return a hit computed at the current version, or clone
/// the tree out; compute *unlocked* (the chase can be long); re-lock and
/// insert tagged with the version the computation actually saw — if an edit
/// landed meanwhile the insert is discarded and the response still reflects
/// the version it announced to no one (stored queries carry no version, so
/// serving the version that was current at dispatch is linearizable).
fn stored_answer(
    store: &ServerStore,
    stats: &ServerStats,
    w: &mut ResponseWriter<'_>,
    doc: DocKey,
    key: CacheKey,
    compute: impl FnOnce(&XmlTree) -> CachedAnswer,
) -> Result<CachedAnswer, WireError> {
    let (tree, version) = {
        let mut s = store.lock().expect("store poisoned");
        if let Some(hit) = s.result_cache(doc).and_then(|c| c.get(&key).cloned()) {
            stats.store_cache_hits.fetch_add(1, Ordering::Relaxed);
            drop(s);
            // A cache hit is pure store time: lock + lookup + clone.
            w.step(PHASE_STORE);
            return Ok(hit);
        }
        match s.get(doc) {
            Ok((tree, version)) => (tree.clone(), version),
            Err(e) => return Err(WireError::of_store_error(&e)),
        }
    };
    w.step(PHASE_STORE);
    stats.store_cache_misses.fetch_add(1, Ordering::Relaxed);
    let value = compute(&tree);
    w.step(PHASE_EXEC);
    let mut s = store.lock().expect("store poisoned");
    if let Some(cache) = s.result_cache(doc) {
        cache.insert(key, version, value.clone());
    }
    drop(s);
    w.step(PHASE_STORE);
    Ok(value)
}

/// Compute one request's response and stream it through `writer`. Runs
/// entirely on a worker thread: document decoding, query planning (once
/// per request), and the per-document exchange pipeline on the shared
/// compiled setting with this worker's scratch. Every per-document
/// computation is exactly the one [`BatchEngine`]'s `*_batch` methods run,
/// so responses are byte-for-byte what a local batch call would produce.
///
/// Request-level validation (document parsing, query parsing) happens
/// *before* the first body byte is streamed, so a logical response is
/// either one whole error frame or a complete OK stream — never a
/// half-written success.
#[allow(clippy::too_many_arguments)]
fn respond(
    engine: &BatchEngine<'_>,
    store: Option<&ServerStore>,
    stats: &ServerStats,
    wal_checkpoint_bytes: u64,
    scratch: &mut ExchangeScratch,
    setting: u64,
    body: RequestBody,
    codec: Codec,
    mut w: ResponseWriter<'_>,
) {
    let compiled = engine.compiled();
    match body {
        // `Ping` and `Hello` are answered inline by the event loop; a job
        // carrying one would be a dispatch bug, but answer it anyway.
        RequestBody::Ping => w.whole(ResponseBody::Pong),
        RequestBody::Hello { features } => w.whole(ResponseBody::HelloOk {
            features: features & wire::SUPPORTED_FEATURES,
        }),
        RequestBody::CheckConsistency { docs } => match parse_docs(&docs) {
            Err(e) => w.whole(ResponseBody::Error(e)),
            Ok(trees) => {
                w.step(PHASE_DECODE);
                w.put_ok_header(OpCode::CheckConsistency, trees.len());
                for t in &trees {
                    let consistent = compiled.check_instance_consistency_with(t, scratch);
                    w.put_u8(consistent as u8);
                }
                w.step(PHASE_EXEC);
                w.finish();
            }
        },
        RequestBody::CanonicalSolution { docs } => match parse_docs(&docs) {
            Err(e) => w.whole(ResponseBody::Error(e)),
            Ok(trees) => {
                w.step(PHASE_DECODE);
                w.put_ok_header(OpCode::CanonicalSolution, trees.len());
                // Fan out on the engine's *configured* parallelism alone.
                // Consulting live `available_parallelism()` here made the
                // branch untestable (a 1-core CI box could never exercise
                // the reorder buffer below) and second-guessed an explicit
                // `workers` configuration; whoever builds the engine owns
                // the single-core-pool-is-a-loss call.
                if trees.len() > 1 && engine.configured_parallelism() > 1 {
                    // Multi-document request: fan the per-document chase out
                    // across the engine's pool ([`BatchEngine::canonical_solutions_for_each`]),
                    // exactly what a local batch call runs. Results arrive in
                    // completion order; the stream must be in document order,
                    // so out-of-order solutions wait in a reorder buffer and
                    // each is serialized and dropped as soon as its turn
                    // comes — peak extra memory is the in-flight skew, not
                    // the batch.
                    let mut pending: Vec<Option<Result<XmlTree, SolutionError>>> =
                        (0..trees.len()).map(|_| None).collect();
                    let mut cursor = 0usize;
                    engine.canonical_solutions_for_each(&trees, |i, result| {
                        pending[i] = Some(result);
                        while let Some(slot) = pending.get_mut(cursor) {
                            let Some(ready) = slot.take() else { break };
                            put_solution(&mut w, codec, ready);
                            cursor += 1;
                        }
                    });
                } else {
                    // Single document (or no pool): the worker's own warm
                    // scratch beats spawning compute threads.
                    for t in &trees {
                        put_solution(&mut w, codec, compiled.canonical_solution_with(t, scratch));
                    }
                }
                // Streaming paths interleave compute and serialization, so
                // the exec phase deliberately includes per-document
                // encoding; the encode phase then covers only the residue
                // after the last document.
                w.step(PHASE_EXEC);
                w.finish();
            }
        },
        RequestBody::CertainAnswers { query, docs } => {
            let query = match parse_query(&query) {
                Ok(q) => q,
                Err(e) => return w.whole(ResponseBody::Error(WireError::of_query_error(&e))),
            };
            let trees = match parse_docs(&docs) {
                Ok(t) => t,
                Err(e) => return w.whole(ResponseBody::Error(e)),
            };
            w.step(PHASE_DECODE);
            let plan = QueryPlan::new(&query, compiled.target_dtd());
            w.step(PHASE_PLAN);
            w.put_ok_header(OpCode::CertainAnswers, trees.len());
            for t in &trees {
                let result = compiled
                    .certain_answers_planned_with(t, &plan, scratch)
                    .map(|answers| answers.tuples.into_iter().collect());
                put_answers(&mut w, result);
            }
            w.step(PHASE_EXEC);
            w.finish();
        }
        RequestBody::CertainAnswersBoolean { query, docs } => {
            let query = match parse_query(&query) {
                Ok(q) => q,
                Err(e) => return w.whole(ResponseBody::Error(WireError::of_query_error(&e))),
            };
            let trees = match parse_docs(&docs) {
                Ok(t) => t,
                Err(e) => return w.whole(ResponseBody::Error(e)),
            };
            w.step(PHASE_DECODE);
            let plan = QueryPlan::new(&query, compiled.target_dtd());
            w.step(PHASE_PLAN);
            w.put_ok_header(OpCode::CertainAnswersBoolean, trees.len());
            for t in &trees {
                put_boolean(
                    &mut w,
                    compiled.certain_boolean_planned_with(t, &plan, scratch),
                );
            }
            w.step(PHASE_EXEC);
            w.finish();
        }
        RequestBody::PutDoc { doc_id, doc } => {
            let Some(store) = store else {
                return w.whole(ResponseBody::Error(store_disabled()));
            };
            let tree = match doc.to_tree() {
                Ok(tree) => tree,
                Err(e) => return w.whole(ResponseBody::Error(e)),
            };
            w.step(PHASE_DECODE);
            let result = {
                let mut s = store.lock().expect("store poisoned");
                let result = s.put(DocKey::new(setting, doc_id), tree);
                if result.is_ok() {
                    maybe_checkpoint(&mut s, wal_checkpoint_bytes);
                }
                result
            };
            w.step(PHASE_STORE);
            match result {
                Ok(version) => w.whole(ResponseBody::PutDocOk { version }),
                Err(e) => w.whole(ResponseBody::Error(WireError::of_store_error(&e))),
            }
        }
        RequestBody::GetDoc { doc_id } => {
            let Some(store) = store else {
                return w.whole(ResponseBody::Error(store_disabled()));
            };
            // Encode under the lock: the returned frame must be one
            // consistent (version, bytes) pair even if an edit races in.
            let mut s = store.lock().expect("store poisoned");
            match s.get(DocKey::new(setting, doc_id)) {
                Ok((tree, version)) => {
                    let doc = WireDoc::from_tree(tree, codec);
                    drop(s);
                    w.step(PHASE_STORE);
                    w.whole(ResponseBody::GetDocOk { version, doc });
                }
                Err(e) => {
                    drop(s);
                    w.step(PHASE_STORE);
                    w.whole(ResponseBody::Error(WireError::of_store_error(&e)));
                }
            }
        }
        RequestBody::EditDoc {
            doc_id,
            base_version,
            edits,
        } => {
            let Some(store) = store else {
                return w.whole(ResponseBody::Error(store_disabled()));
            };
            let batch = match decode_edits_exact(&edits) {
                Ok(batch) => batch,
                Err(e) => {
                    return w.whole(ResponseBody::Error(WireError::new(
                        wire::ErrorCode::BadEdit,
                        format!("malformed edit batch: {e}"),
                    )))
                }
            };
            w.step(PHASE_DECODE);
            let result = {
                let mut s = store.lock().expect("store poisoned");
                let result = s.edit(DocKey::new(setting, doc_id), base_version, &batch);
                if result.is_ok() {
                    maybe_checkpoint(&mut s, wal_checkpoint_bytes);
                }
                result
            };
            w.step(PHASE_STORE);
            match result {
                Ok(receipt) => w.whole(ResponseBody::EditDocOk {
                    version: receipt.version,
                }),
                Err(e) => w.whole(ResponseBody::Error(WireError::of_store_error(&e))),
            }
        }
        RequestBody::DeleteDoc { doc_id } => {
            let Some(store) = store else {
                return w.whole(ResponseBody::Error(store_disabled()));
            };
            let result = {
                let mut s = store.lock().expect("store poisoned");
                let result = s.delete(DocKey::new(setting, doc_id));
                if result.is_ok() {
                    maybe_checkpoint(&mut s, wal_checkpoint_bytes);
                }
                result
            };
            w.step(PHASE_STORE);
            match result {
                Ok(()) => w.whole(ResponseBody::DeleteDocOk),
                Err(e) => w.whole(ResponseBody::Error(WireError::of_store_error(&e))),
            }
        }
        RequestBody::CheckConsistencyStored { doc_id } => {
            let Some(store) = store else {
                return w.whole(ResponseBody::Error(store_disabled()));
            };
            let answer = stored_answer(
                store,
                stats,
                &mut w,
                DocKey::new(setting, doc_id),
                CacheKey::Consistency,
                |tree| {
                    CachedAnswer::Consistency(
                        compiled.check_instance_consistency_with(tree, scratch),
                    )
                },
            );
            match answer {
                Ok(CachedAnswer::Consistency(consistent)) => {
                    w.put_ok_header(OpCode::CheckConsistency, 1);
                    w.put_u8(consistent as u8);
                    w.finish();
                }
                Ok(_) => w.whole(ResponseBody::Error(cache_shape_error(DocKey::new(
                    setting, doc_id,
                )))),
                Err(e) => w.whole(ResponseBody::Error(e)),
            }
        }
        RequestBody::CanonicalSolutionStored { doc_id } => {
            let Some(store) = store else {
                return w.whole(ResponseBody::Error(store_disabled()));
            };
            let answer = stored_answer(
                store,
                stats,
                &mut w,
                DocKey::new(setting, doc_id),
                CacheKey::CanonicalSolution,
                |tree| CachedAnswer::Solution(compiled.canonical_solution_with(tree, scratch)),
            );
            match answer {
                Ok(CachedAnswer::Solution(result)) => {
                    w.put_ok_header(OpCode::CanonicalSolution, 1);
                    put_solution(&mut w, codec, result);
                    w.finish();
                }
                Ok(_) => w.whole(ResponseBody::Error(cache_shape_error(DocKey::new(
                    setting, doc_id,
                )))),
                Err(e) => w.whole(ResponseBody::Error(e)),
            }
        }
        RequestBody::CertainAnswersStored { query, doc_id } => {
            let Some(store) = store else {
                return w.whole(ResponseBody::Error(store_disabled()));
            };
            // Parse before the cache lookup so a malformed query fails
            // identically whether or not an answer is cached.
            let parsed = match parse_query(&query) {
                Ok(q) => q,
                Err(e) => return w.whole(ResponseBody::Error(WireError::of_query_error(&e))),
            };
            let answer = stored_answer(
                store,
                stats,
                &mut w,
                DocKey::new(setting, doc_id),
                CacheKey::CertainAnswers(query),
                |tree| {
                    let plan = QueryPlan::new(&parsed, compiled.target_dtd());
                    CachedAnswer::Answers(
                        compiled
                            .certain_answers_planned_with(tree, &plan, scratch)
                            .map(|answers| answers.tuples.into_iter().collect()),
                    )
                },
            );
            match answer {
                Ok(CachedAnswer::Answers(result)) => {
                    w.put_ok_header(OpCode::CertainAnswers, 1);
                    put_answers(&mut w, result);
                    w.finish();
                }
                Ok(_) => w.whole(ResponseBody::Error(cache_shape_error(DocKey::new(
                    setting, doc_id,
                )))),
                Err(e) => w.whole(ResponseBody::Error(e)),
            }
        }
        RequestBody::CertainAnswersBooleanStored { query, doc_id } => {
            let Some(store) = store else {
                return w.whole(ResponseBody::Error(store_disabled()));
            };
            let parsed = match parse_query(&query) {
                Ok(q) => q,
                Err(e) => return w.whole(ResponseBody::Error(WireError::of_query_error(&e))),
            };
            let answer = stored_answer(
                store,
                stats,
                &mut w,
                DocKey::new(setting, doc_id),
                CacheKey::CertainBoolean(query),
                |tree| {
                    let plan = QueryPlan::new(&parsed, compiled.target_dtd());
                    CachedAnswer::Boolean(
                        compiled.certain_boolean_planned_with(tree, &plan, scratch),
                    )
                },
            );
            match answer {
                Ok(CachedAnswer::Boolean(result)) => {
                    w.put_ok_header(OpCode::CertainAnswersBoolean, 1);
                    put_boolean(&mut w, result);
                    w.finish();
                }
                Ok(_) => w.whole(ResponseBody::Error(cache_shape_error(DocKey::new(
                    setting, doc_id,
                )))),
                Err(e) => w.whole(ResponseBody::Error(e)),
            }
        }
        // Registry ops are answered by the registry path before `respond`
        // is reached; a job carrying one here is a dispatch bug, but
        // answer it with a structured error instead of poisoning the
        // worker.
        RequestBody::PutSetting { .. }
        | RequestBody::ListSettings
        | RequestBody::EvictSetting { .. }
        | RequestBody::Stats => {
            w.whole(ResponseBody::Error(WireError::new(
                wire::ErrorCode::UnknownOp,
                "registry op dispatched to the exchange path".to_string(),
            )));
        }
    }
}

/// A cached answer came back under the wrong [`CachedAnswer`] variant.
/// Unreachable as long as [`CacheKey`] → variant stays one-to-one; answer
/// with a structured error instead of poisoning the worker.
fn cache_shape_error(doc: DocKey) -> WireError {
    WireError::new(
        wire::ErrorCode::StoreIo,
        format!("cached answer for document {doc} has the wrong shape"),
    )
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

struct EventLoop<'e> {
    config: &'e ServerConfig,
    tcp: Option<TcpListener>,
    unix: Option<UnixListener>,
    wake_rx: UnixStream,
    control: &'e ServerControl,
    shared: &'e Shared,
    stats: &'e ServerStats,
    metrics: &'e ServerMetrics,
    epoll: Epoll,
    conns: Vec<Option<Conn>>,
    free_slots: Vec<usize>,
    live_conns: usize,
    total_inflight: usize,
    /// In-flight requests per addressed setting id (entries removed at
    /// zero, so the map stays as small as the set of *active* settings).
    inflight_per_setting: HashMap<u64, usize>,
    next_generation: u64,
}

impl EventLoop<'_> {
    fn run(&mut self) -> io::Result<()> {
        if let Some(l) = &self.tcp {
            self.epoll.add(l.as_raw_fd(), EPOLLIN, TOK_TCP)?;
        }
        if let Some(l) = &self.unix {
            self.epoll.add(l.as_raw_fd(), EPOLLIN, TOK_UNIX)?;
        }
        self.epoll
            .add(self.wake_rx.as_raw_fd(), EPOLLIN, TOK_WAKE)?;
        let mut events: Vec<Event> = Vec::new();
        while !self.control.stop.load(Ordering::SeqCst) {
            let timeout_ms = self.next_timeout_ms();
            self.epoll.wait(&mut events, timeout_ms)?;
            for &event in &events {
                match event.token {
                    TOK_TCP => self.accept_tcp(),
                    TOK_UNIX => self.accept_unix(),
                    TOK_WAKE => self.drain_wake(),
                    token => self.handle_conn_event(token, event),
                }
            }
            self.drain_completions();
            self.enforce_deadlines();
            // A draining server exits once every connection has settled
            // and closed (or the drain deadline force-closed it). Workers
            // may still be finishing jobs whose connections died; their
            // completions have no taker either way.
            if self.control.is_draining() && self.live_conns == 0 {
                break;
            }
        }
        Ok(())
    }

    /// How long `epoll_wait` may sleep: until the earliest live deadline —
    /// drain, read-progress or idle — or forever when none is armed.
    fn next_timeout_ms(&self) -> i32 {
        let mut next: Option<Instant> = self.control.drain_deadline();
        let mut consider = |candidate: Instant| {
            next = Some(match next {
                Some(current) => current.min(candidate),
                None => candidate,
            });
        };
        for conn in self.conns.iter().flatten() {
            if let (Some(limit), Some(since)) =
                (self.config.read_progress_timeout, conn.partial_since)
            {
                consider(since + limit);
            }
            if let Some(limit) = self.config.idle_timeout {
                if conn.inflight == 0 && conn.partial_since.is_none() {
                    consider(conn.last_activity + limit);
                }
            }
        }
        match next {
            None => -1,
            Some(deadline) => {
                // Round up so one wake-up does not land just *before* the
                // deadline and schedule a second, zero-length sleep.
                let millis = deadline
                    .saturating_duration_since(Instant::now())
                    .as_millis();
                millis.saturating_add(1).min(i32::MAX as u128) as i32
            }
        }
    }

    /// Close every connection past a deadline: drain-settled connections,
    /// anything still open at the drain deadline, slow-loris peers past
    /// the read-progress limit, and idle connections past the idle limit.
    fn enforce_deadlines(&mut self) {
        let now = Instant::now();
        let drain_deadline = self.control.drain_deadline();
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_ref() else {
                continue;
            };
            if drain_deadline.is_some_and(|deadline| now >= deadline) {
                self.close(slot); // grace expired: abandon what is left
                continue;
            }
            if drain_deadline.is_some() && conn.inflight == 0 && conn.wq.is_empty() {
                self.close(slot); // drained clean
                continue;
            }
            if self
                .config
                .read_progress_timeout
                .zip(conn.partial_since)
                .is_some_and(|(limit, since)| now.duration_since(since) >= limit)
            {
                self.stats.reaped_slow.fetch_add(1, Ordering::Relaxed);
                self.close(slot);
                continue;
            }
            if self.config.idle_timeout.is_some_and(|limit| {
                conn.inflight == 0
                    && conn.partial_since.is_none()
                    && now.duration_since(conn.last_activity) >= limit
            }) {
                self.stats.reaped_idle.fetch_add(1, Ordering::Relaxed);
                self.close(slot);
            }
        }
    }

    fn drain_wake(&mut self) {
        let mut buf = [0u8; 256];
        loop {
            match self.wake_rx.read(&mut buf) {
                Ok(0) => return,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn accept_tcp(&mut self) {
        loop {
            match self
                .tcp
                .as_ref()
                .expect("TCP event without listener")
                .accept()
            {
                Ok((stream, _)) => {
                    if self.control.is_draining() {
                        continue; // drop the socket: the server is leaving
                    }
                    let _ = stream.set_nodelay(true);
                    self.register(Duplex::Tcp(stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn accept_unix(&mut self) {
        loop {
            match self
                .unix
                .as_ref()
                .expect("Unix event without listener")
                .accept()
            {
                Ok((stream, _)) => {
                    if self.control.is_draining() {
                        continue; // drop the socket: the server is leaving
                    }
                    self.register(Duplex::Unix(stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn register(&mut self, stream: Duplex) {
        if self.live_conns >= self.config.max_connections {
            return; // drop the socket: accept-and-close sheds load
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        self.next_generation += 1;
        let conn = Conn {
            stream,
            generation: self.next_generation,
            rbuf: Vec::new(),
            rpos: 0,
            wq: VecDeque::new(),
            wfront: 0,
            wq_bytes: 0,
            inflight: 0,
            codec: Codec::Text,
            chunked: false,
            settings: false,
            stats_v2: false,
            closing: false,
            want_write: false,
            peer_eof: false,
            last_activity: Instant::now(),
            partial_since: None,
        };
        let slot = match self.free_slots.pop() {
            Some(slot) => {
                self.conns[slot] = Some(conn);
                slot
            }
            None => {
                self.conns.push(Some(conn));
                self.conns.len() - 1
            }
        };
        let conn = self.conns[slot].as_ref().expect("just inserted");
        if self
            .epoll
            .add(
                conn.stream.raw_fd(),
                EPOLLIN | EPOLLRDHUP,
                TOK_CONN_BASE + slot as u64,
            )
            .is_err()
        {
            self.conns[slot] = None;
            self.free_slots.push(slot);
            return;
        }
        self.live_conns += 1;
        self.stats.accepted_conns.fetch_add(1, Ordering::Relaxed);
    }

    fn handle_conn_event(&mut self, token: u64, event: Event) {
        let slot = (token - TOK_CONN_BASE) as usize;
        if self.conns.get(slot).map(Option::is_none).unwrap_or(true) {
            return; // stale event for a slot already closed this batch
        }
        if event.writable() && !self.flush(slot) {
            return;
        }
        if event.readable() || event.closed() {
            self.read_and_dispatch(slot, event.closed());
        }
    }

    /// Read all available bytes, parse complete frames, dispatch them.
    fn read_and_dispatch(&mut self, slot: usize, hangup: bool) {
        let mut chunk = [0u8; 64 * 1024];
        let mut eof = hangup;
        loop {
            let conn = match &mut self.conns[slot] {
                Some(c) => c,
                None => return,
            };
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    conn.last_activity = Instant::now();
                    if !conn.closing {
                        conn.rbuf.extend_from_slice(&chunk[..n]);
                    }
                    // A poisoned connection drains and discards input so the
                    // peer's pending writes cannot stall the close.
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot);
                    return;
                }
            }
        }
        self.parse_frames(slot);
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if eof {
            conn.peer_eof = true;
        }
        // A finished peer with nothing pending can be dropped now;
        // otherwise pending responses flush first (drain_completions /
        // writable events call `close` when everything settles).
        if conn.peer_eof && conn.inflight == 0 && conn.wq.is_empty() {
            self.close(slot);
        }
    }

    /// Extract complete frames from the read buffer and dispatch each.
    fn parse_frames(&mut self, slot: usize) {
        loop {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            if conn.closing {
                conn.rbuf.clear();
                conn.rpos = 0;
                conn.partial_since = None;
                return;
            }
            let unread = conn.rbuf.len() - conn.rpos;
            if unread < 4 {
                break;
            }
            let header = &conn.rbuf[conn.rpos..conn.rpos + 4];
            let len = u32::from_be_bytes([header[0], header[1], header[2], header[3]]) as usize;
            if len == 0 || len > self.config.max_frame_bytes {
                // The stream cannot be re-synchronised: poison it.
                let code = if len == 0 {
                    wire::ErrorCode::MalformedFrame
                } else {
                    wire::ErrorCode::FrameTooLarge
                };
                let frame = ResponseFrame {
                    id: 0,
                    body: ResponseBody::Error(WireError::new(
                        code,
                        format!(
                            "frame length {len} outside 1..={}; closing",
                            self.config.max_frame_bytes
                        ),
                    )),
                };
                // Poison *before* queueing the error frame: the flush inside
                // `enqueue_response` tears the connection down as soon as the
                // frame is fully written.
                conn.closing = true;
                conn.rbuf.clear();
                conn.rpos = 0;
                conn.partial_since = None;
                self.enqueue_response(slot, &frame);
                return;
            }
            if unread < 4 + len {
                break; // partial frame: wait for more bytes
            }
            let start = conn.rpos + 4;
            let payload: Vec<u8> = conn.rbuf[start..start + len].to_vec();
            conn.rpos += 4 + len;
            self.dispatch_payload(slot, &payload);
        }
        // Compact the consumed prefix, and keep the read-progress clock
        // honest: it restarts when a frame *completes* (progress was made)
        // or starts when a partial first appears — arriving bytes that
        // complete nothing leave it running, which is exactly what defeats
        // a drip-feed.
        if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
            let progressed = conn.rpos > 0;
            if progressed {
                conn.rbuf.drain(..conn.rpos);
                conn.rpos = 0;
            }
            conn.partial_since = if conn.rbuf.is_empty() {
                None
            } else if progressed || conn.partial_since.is_none() {
                Some(Instant::now())
            } else {
                conn.partial_since
            };
        }
    }

    /// Decode one request payload and either answer inline (errors, `Ping`,
    /// `Hello`, `Busy`) or queue a job for the worker pool.
    fn dispatch_payload(&mut self, slot: usize, payload: &[u8]) {
        // Start the clock before the frame decode so the decode phase
        // covers it; inline answers (Ping/Hello/errors) drop the trace —
        // only pool-dispatched requests are measured.
        let mut trace = if self.config.instrumentation {
            Some(Trace::new())
        } else {
            None
        };
        let codec = self
            .conns
            .get(slot)
            .and_then(Option::as_ref)
            .map(|c| c.codec)
            .unwrap_or_default();
        let settings = self
            .conns
            .get(slot)
            .and_then(Option::as_ref)
            .map(|c| c.settings)
            .unwrap_or(false);
        let request = match wire::decode_request(
            payload,
            self.config.max_docs_per_request,
            codec,
            settings,
        ) {
            Ok(request) => {
                if let Some(t) = &mut trace {
                    t.step(PHASE_DECODE);
                }
                request
            }
            Err(DecodeError { id, error }) => {
                // The framing is intact — only this request fails.
                self.enqueue_response(
                    slot,
                    &ResponseFrame {
                        id,
                        body: ResponseBody::Error(error),
                    },
                );
                return;
            }
        };
        if self.control.is_draining() {
            // The request was decoded but never started: GoAway is an
            // unconditional retry-elsewhere signal, for every op.
            self.stats.goaway_rejected.fetch_add(1, Ordering::Relaxed);
            self.enqueue_response(
                slot,
                &ResponseFrame {
                    id: request.id,
                    body: ResponseBody::GoAway,
                },
            );
            return;
        }
        if matches!(request.body, RequestBody::Ping) {
            // Health checks bypass the pool (and the budget): they must
            // answer even when the server is saturated.
            self.enqueue_response(
                slot,
                &ResponseFrame {
                    id: request.id,
                    body: ResponseBody::Pong,
                },
            );
            return;
        }
        if let RequestBody::Hello { features } = request.body {
            // Negotiation is loop-local state, so it is handled here (and,
            // like `Ping`, bypasses the budget). The accepted feature set
            // applies to every frame parsed *after* this one; responses to
            // earlier frames still in flight keep the codec they were
            // dispatched with.
            let accepted = features & wire::SUPPORTED_FEATURES;
            if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
                conn.codec = if accepted & wire::FEATURE_BINARY_DOCS != 0 {
                    Codec::Binary
                } else {
                    Codec::Text
                };
                conn.chunked = accepted & wire::FEATURE_CHUNKED_RESPONSES != 0;
                conn.settings = accepted & wire::FEATURE_SETTINGS != 0;
                conn.stats_v2 = accepted & wire::FEATURE_STATS_V2 != 0;
            }
            self.enqueue_response(
                slot,
                &ResponseFrame {
                    id: request.id,
                    body: ResponseBody::HelloOk { features: accepted },
                },
            );
            return;
        }
        if !settings
            && matches!(
                request.body,
                RequestBody::PutSetting { .. }
                    | RequestBody::ListSettings
                    | RequestBody::EvictSetting { .. }
            )
        {
            // To a v1/v2 peer these opcodes do not exist; rejecting them
            // before negotiation keeps pre-v3 behavior exact.
            self.enqueue_response(
                slot,
                &ResponseFrame {
                    id: request.id,
                    body: ResponseBody::Error(WireError::new(
                        wire::ErrorCode::UnknownOp,
                        "registry ops require negotiating FEATURE_SETTINGS",
                    )),
                },
            );
            return;
        }
        let over_conn_cap = self
            .conns
            .get(slot)
            .and_then(Option::as_ref)
            .map(|c| c.inflight >= self.config.max_inflight_per_conn)
            .unwrap_or(true);
        let over_setting_cap = self
            .inflight_per_setting
            .get(&request.setting_id)
            .is_some_and(|&n| n >= self.config.max_inflight_per_setting);
        if over_conn_cap
            || over_setting_cap
            || self.total_inflight >= self.config.max_inflight_total
        {
            self.stats.busy_rejected.fetch_add(1, Ordering::Relaxed);
            self.enqueue_response(
                slot,
                &ResponseFrame {
                    id: request.id,
                    body: ResponseBody::Busy,
                },
            );
            return;
        }
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        conn.inflight += 1;
        self.total_inflight += 1;
        self.stats
            .inflight_highwater
            .fetch_max(self.total_inflight as u64, Ordering::Relaxed);
        let setting_inflight = self
            .inflight_per_setting
            .entry(request.setting_id)
            .or_insert(0);
        *setting_inflight += 1;
        self.stats
            .setting_inflight_highwater
            .fetch_max(*setting_inflight as u64, Ordering::Relaxed);
        let job = Job {
            slot,
            generation: conn.generation,
            codec: conn.codec,
            chunk_bytes: if conn.chunked {
                self.config.chunk_bytes.max(1)
            } else {
                usize::MAX
            },
            stats_v2: conn.stats_v2,
            trace: trace.map(|t| {
                Box::new(ReqTrace {
                    op: request.body.op() as u8,
                    setting: request.setting_id,
                    trace: t,
                })
            }),
            frame: request,
        };
        self.shared
            .jobs
            .lock()
            .expect("job queue poisoned")
            .push_back(job);
        self.shared.jobs_ready.notify_one();
    }

    /// Move worker completions into their connections' write queues. The
    /// segment `Vec` is *moved*, not copied — the bytes a worker serialized
    /// are the bytes `writev` sends. Only a response's last segment
    /// releases the in-flight budget; partial segments of a streaming
    /// response keep their request counted until the stream completes.
    fn drain_completions(&mut self) {
        let done: Vec<Done> =
            std::mem::take(&mut *self.shared.done.lock().expect("completion queue poisoned"));
        for completion in done {
            if completion.last {
                self.total_inflight -= 1;
                if let Some(n) = self.inflight_per_setting.get_mut(&completion.setting_id) {
                    *n -= 1;
                    if *n == 0 {
                        self.inflight_per_setting.remove(&completion.setting_id);
                    }
                }
            }
            // Dead connection or recycled slot: the response has no taker,
            // but the work still happened — finalize the trace (its flush
            // phase collapses to the drop itself).
            let orphaned = match self.conns.get(completion.slot).and_then(Option::as_ref) {
                None => true,
                Some(conn) => conn.generation != completion.generation,
            };
            if orphaned {
                if let Some(t) = completion.trace {
                    self.finalize_trace(t);
                }
                continue;
            }
            let conn = self
                .conns
                .get_mut(completion.slot)
                .and_then(Option::as_mut)
                .expect("liveness checked above");
            if completion.last {
                conn.inflight -= 1;
            }
            conn.last_activity = Instant::now();
            conn.wq_bytes += completion.bytes.len();
            conn.wq.push_back(WqSeg {
                bytes: completion.bytes,
                trace: completion.trace,
            });
            self.flush(completion.slot);
        }
    }

    /// Encode a loop-generated response and queue it for writing.
    fn enqueue_response(&mut self, slot: usize, frame: &ResponseFrame) {
        let bytes = wire::frame(wire::encode_response(frame));
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        conn.wq_bytes += bytes.len();
        conn.wq.push_back(WqSeg { bytes, trace: None });
        self.flush(slot);
    }

    /// Write as much pending output as the socket accepts, gathering up to
    /// [`MAX_FLUSH_IOV`] queued segments per `writev`. Returns `false` when
    /// the connection was closed. Keeps the `EPOLLOUT` registration in sync
    /// with whether output is pending.
    fn flush(&mut self, slot: usize) -> bool {
        let epoll = &self.epoll;
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return false;
        };
        let mut dead = false;
        // Traces of segments fully written this flush; finalized after the
        // connection borrow ends.
        let mut finished: Vec<Box<ReqTrace>> = Vec::new();
        loop {
            if conn.wq.is_empty() {
                break;
            }
            let wrote = {
                let mut segs = conn.wq.iter();
                let front = segs.next().expect("queue checked non-empty");
                let mut slices: Vec<IoSlice<'_>> =
                    Vec::with_capacity(conn.wq.len().min(MAX_FLUSH_IOV));
                slices.push(IoSlice::new(&front.bytes[conn.wfront..]));
                slices.extend(segs.take(MAX_FLUSH_IOV - 1).map(|s| IoSlice::new(&s.bytes)));
                conn.stream.write_vectored(&slices)
            };
            match wrote {
                Ok(0) => {
                    dead = true;
                    break;
                }
                Ok(mut n) => {
                    conn.last_activity = Instant::now();
                    // Retire fully written segments, advance the front one.
                    while n > 0 {
                        let front_left = conn.wq[0].bytes.len() - conn.wfront;
                        if n >= front_left {
                            n -= front_left;
                            let seg = conn.wq.pop_front().expect("front exists");
                            conn.wq_bytes -= seg.bytes.len();
                            conn.wfront = 0;
                            if let Some(t) = seg.trace {
                                finished.push(t);
                            }
                        } else {
                            conn.wfront += n;
                            n = 0;
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        // Write-path backpressure: a peer that does not read its responses
        // cannot be allowed to pin unbounded buffered output (the in-flight
        // budget is released when a response is *buffered*, so this cap is
        // what bounds per-connection memory end to end).
        if !dead && conn.wq_bytes - conn.wfront > self.config.max_buffered_response_bytes {
            dead = true;
        }
        if !dead {
            if conn.wq.is_empty() {
                conn.wfront = 0;
                if conn.closing || (conn.peer_eof && conn.inflight == 0) {
                    dead = true;
                } else if conn.want_write {
                    conn.want_write = false;
                    let _ = epoll.modify(
                        conn.stream.raw_fd(),
                        EPOLLIN | EPOLLRDHUP,
                        TOK_CONN_BASE + slot as u64,
                    );
                }
            } else if !conn.want_write {
                conn.want_write = true;
                let _ = epoll.modify(
                    conn.stream.raw_fd(),
                    EPOLLIN | EPOLLOUT | EPOLLRDHUP,
                    TOK_CONN_BASE + slot as u64,
                );
            }
        }
        for t in finished {
            self.finalize_trace(t);
        }
        if dead {
            self.close(slot);
            return false;
        }
        true
    }

    /// Tear a connection down. In-flight jobs keep running; their
    /// completions are dropped by the generation check. Responses still
    /// queued (fully or partially unwritten) finalize their traces here —
    /// the work happened even if the peer never read it.
    fn close(&mut self, slot: usize) {
        if let Some(mut conn) = self.conns.get_mut(slot).and_then(Option::take) {
            let _ = self.epoll.delete(conn.stream.raw_fd());
            self.live_conns -= 1;
            self.free_slots.push(slot);
            for seg in conn.wq.drain(..) {
                if let Some(t) = seg.trace {
                    self.finalize_trace(t);
                }
            }
        }
    }

    /// Retire a finished request's trace: charge the flush phase (final
    /// seal → last byte handed to the socket), fold every phase plus the
    /// wall-clock total into the request's `(op, setting)` histogram set,
    /// and emit the rate-limited slow-request log line when the wall time
    /// crosses [`ServerConfig::slow_request_threshold`].
    // Traces travel boxed (an `Option<Box<_>>` on every job keeps the
    // uninstrumented path to one pointer); take the box whole here rather
    // than re-flatten it at the last hop.
    #[allow(clippy::boxed_local)]
    fn finalize_trace(&self, mut t: Box<ReqTrace>) {
        t.trace.step(PHASE_FLUSH);
        let wall = t.trace.wall_ns();
        let set = self.metrics.phase_set(t.op, t.setting);
        for i in 0..PHASE_NAMES.len() {
            let ns = t.trace.phase_ns(i);
            if ns > 0 {
                set.phases[i].record(ns);
            }
        }
        set.total.record(wall);
        let slow = self
            .config
            .slow_request_threshold
            .is_some_and(|th| wall >= th.as_nanos() as u64);
        if slow {
            self.stats.slow_requests.fetch_add(1, Ordering::Relaxed);
            if self.metrics.slow_log_permit() {
                let op = OpCode::from_u8(t.op).map(OpCode::name).unwrap_or("unknown");
                let mut phases = String::new();
                for (i, name) in PHASE_NAMES.iter().enumerate() {
                    let ns = t.trace.phase_ns(i);
                    if ns > 0 {
                        use std::fmt::Write as _;
                        let _ = write!(phases, " {name}_us={}", ns / 1_000);
                    }
                }
                eprintln!(
                    "slow-request op={op} setting={} wall_ms={:.3}{phases}",
                    t.setting,
                    wall as f64 / 1e6,
                );
            }
        }
    }
}
